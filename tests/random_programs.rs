//! Property test: *randomly generated* PRAM programs, executed under
//! random failure/restart churn by every engine, always match a
//! failure-free reference run. This probes the Theorem 4.1 machinery far
//! beyond the handful of named kernels: random data flow, random read
//! addresses, every register path.

use proptest::prelude::*;
use rfsp::adversary::RandomFaults;
use rfsp::pram::{RunLimits, Word};
use rfsp::sim::{reference_run, simulate, Engine, Regs, SimProgram, SimWrite, REG_MAX};

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A pseudo-random but deterministic PRAM program: each processor reads a
/// seed-determined cell each step, mangles it into its registers, and
/// writes a digest to its own cell (own-cell writes keep it COMMON-legal
/// by construction).
#[derive(Clone, Debug)]
struct RandomProgram {
    n: usize,
    steps: usize,
    seed: u64,
}

impl SimProgram for RandomProgram {
    fn processors(&self) -> usize {
        self.n
    }

    fn memory_size(&self) -> usize {
        self.n
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn init_memory(&self, mem: &mut [Word]) {
        for (i, cell) in mem.iter_mut().enumerate() {
            *cell = splitmix(self.seed ^ i as u64) & 0xFFFF;
        }
    }

    fn read_addr(&self, pid: usize, t: usize, regs: &Regs) -> usize {
        // Mix the register state in so addressing is data-dependent
        // (exercising the non-oblivious read path).
        (splitmix(self.seed ^ ((pid as u64) << 32) ^ (t as u64) ^ regs.a as u64) as usize) % self.n
    }

    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        let mixed = splitmix(value as u64 ^ ((regs.b as u64) << 20) ^ (t as u64));
        let a = (regs.a.wrapping_add(mixed as u32)) & REG_MAX;
        let b = (regs.b ^ (mixed >> 24) as u32) & REG_MAX;
        let write = if mixed.is_multiple_of(3) {
            SimWrite::Nop
        } else {
            SimWrite::Write { addr: pid, value: a ^ (t as u32) }
        };
        (Regs::new(a, b), write)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_simulate_exactly(
        n in 1usize..48,
        steps in 1usize..7,
        seed in any::<u64>(),
        p in 1usize..16,
        p_fail in 0.0f64..0.25,
    ) {
        let prog = RandomProgram { n, steps, seed };
        let expected = reference_run(&prog);
        for engine in [Engine::X, Engine::V, Engine::Interleaved] {
            let mut adv = RandomFaults::new(p_fail, 0.7, seed ^ 0xFA17);
            let report = simulate(
                prog.clone(), p, engine, &mut adv,
                RunLimits { max_cycles: 20_000_000 },
            ).expect("simulation must terminate");
            prop_assert_eq!(&report.memory, &expected, "engine {:?}", engine);
        }
    }
}

/// The register checkpoints also match the reference exactly: simulated
/// processor state survives real-processor failures bit for bit.
#[test]
fn register_checkpoints_survive_churn() {
    use rfsp::pram::LayoutBuilder;
    use rfsp::sim::SimTasks;

    let prog = RandomProgram { n: 24, steps: 5, seed: 0xABCD };

    // Reference register trace.
    let mut regs = vec![Regs::default(); prog.n];
    let mut mem: Vec<Word> = vec![0; prog.n];
    prog.init_memory(&mut mem);
    for t in 0..prog.steps {
        let reads: Vec<u32> =
            (0..prog.n).map(|i| mem[prog.read_addr(i, t, &regs[i])] as u32).collect();
        let mut writes = Vec::new();
        for i in 0..prog.n {
            let (r, w) = prog.step(i, t, &regs[i], reads[i]);
            regs[i] = r;
            if let SimWrite::Write { addr, value } = w {
                writes.push((addr, value));
            }
        }
        for (addr, value) in writes {
            mem[addr] = value as Word;
        }
    }

    // Faulty run, then extract the checkpointed registers.
    let mut layout = LayoutBuilder::new();
    let tasks = SimTasks::new(&mut layout, prog.clone());
    let algo = rfsp::core::AlgoX::new(&mut layout, tasks.clone(), 6, Default::default());
    let budget = algo.required_budget();
    let mut machine = rfsp::pram::Machine::new(&algo, 6, budget).unwrap();
    // Initialize the simulated input (normally done by the executor shim).
    let sim_tasks = algo.tasks();
    sim_tasks.init_memory(machine.memory_mut());
    let mut adv = RandomFaults::new(0.1, 0.7, 99);
    machine.run(&mut adv).unwrap();
    for (i, expected) in regs.iter().enumerate() {
        assert_eq!(
            &sim_tasks.extract_regs(machine.memory(), i),
            expected,
            "simulated processor {i} registers diverged"
        );
    }
}
