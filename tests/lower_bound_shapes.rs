//! Quantitative shape checks for the paper's bounds — the integration-test
//! versions of the experiment binaries, with hard assertions.

use rfsp::adversary::{Pigeonhole, Thrashing, XKiller};
use rfsp::core::{AlgoX, SnapshotBalance, WriteAllTasks, XOptions};
use rfsp::pram::snapshot::SnapshotMachine;
use rfsp::pram::{CycleBudget, LayoutBuilder, Machine};

/// Theorem 3.1 + 3.2: the snapshot model pins Write-All at Θ(N log N).
#[test]
fn snapshot_model_is_theta_n_log_n() {
    let mut ratios = Vec::new();
    for n in [128usize, 256, 512, 1024] {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = SnapshotBalance::new(tasks, n);
        let mut m = SnapshotMachine::new(&algo, n, 1).unwrap();
        let mut adv = Pigeonhole::new(tasks.x());
        let report = m.run(&mut adv).unwrap();
        assert!(tasks.all_written(m.memory()));
        let ratio = report.stats.completed_work() as f64 / (n as f64 * (n as f64).log2());
        ratios.push(ratio);
    }
    for &r in &ratios {
        assert!(r > 0.3, "lower bound: ratio {r} collapsed");
        assert!(r < 3.0, "upper bound: ratio {r} exploded");
    }
    // The ratios converge (Θ, not just O/Ω): spread under 2x.
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 2.0, "ratios diverge: {ratios:?}");
}

/// Example 2.2: thrashing makes S' quadratic while S stays linear-ish.
#[test]
fn thrashing_separates_s_from_s_prime() {
    let n = 256usize;
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
    let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
    let report = m.run(&mut Thrashing::new()).unwrap();
    let s = report.stats.completed_work();
    let s_prime = report.stats.s_prime();
    // S' within [2·P·N-ish, 10·P·N]; S within ~[N, 10N].
    assert!(s_prime as usize >= n * n, "S' = {s_prime} not quadratic for N = {n}");
    assert!((s as usize) < 10 * n, "S = {s} should stay near-linear");
}

/// Theorem 4.8: the X-killer's work grows with exponent well above 1
/// and the measured exponent brackets log2(3) ≈ 1.585.
#[test]
fn x_killer_exponent_brackets_log2_3() {
    let mut points = Vec::new();
    for n in [64usize, 128, 256, 512] {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
        let mut adv = XKiller::new(tasks.x(), *algo.layout(), algo.tree());
        let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut adv).unwrap();
        assert!(tasks.all_written(m.memory()));
        points.push(((n as f64).ln(), (report.stats.completed_work() as f64).ln()));
    }
    // Least-squares slope in log-log space.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    assert!(
        (1.4..=1.8).contains(&slope),
        "measured exponent {slope} should bracket log2(3) = 1.585"
    );
}

/// Lemma 4.5 flavor: PIDs beyond N behave modularly — P = 2N costs at most
/// ~2x the work of P = N with no failures.
#[test]
fn overlapping_pids_cost_at_most_double() {
    let n = 128usize;
    let work = |p: usize| {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        m.run(&mut rfsp::pram::NoFailures).unwrap().stats.completed_work()
    };
    let w_n = work(n);
    let w_2n = work(2 * n);
    assert!(w_2n <= 2 * w_n + 2 * n as u64, "P=2N work {w_2n} vs P=N work {w_n}");
}
