//! Cross-crate checks of the machine model itself: threaded-backend
//! equivalence, write-semantics enforcement, and the model's progress
//! condition, all exercised through the real algorithms.

use rfsp::adversary::RandomFaults;
use rfsp::core::{AlgoV, AlgoX, WriteAllTasks, XOptions};
use rfsp::pram::{CycleBudget, LayoutBuilder, Machine, RunLimits, ScheduledAdversary, WriteMode};

/// The threaded execution backend is bit-identical to the sequential one,
/// including under an adversarial schedule (replayed so both backends see
/// the same pattern).
#[test]
fn threaded_backend_matches_sequential_under_faults() {
    let n = 200usize;
    let p = 32usize;
    // First, record a pattern with a live random adversary.
    let pattern = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut adv = RandomFaults::new(0.2, 0.5, 7);
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        m.run(&mut adv).unwrap().pattern
    };
    // Sequential replay.
    let (seq_stats, seq_mem) = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut adv = ScheduledAdversary::new(pattern.clone());
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        let r = m.run(&mut adv).unwrap();
        (r.stats, m.memory().as_slice().to_vec())
    };
    // Threaded replay across several thread counts.
    for threads in [1usize, 2, 3, 8] {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut adv = ScheduledAdversary::new(pattern.clone());
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        let r = m.run_threaded(&mut adv, RunLimits::default(), threads).unwrap();
        assert_eq!(r.stats, seq_stats, "threads = {threads}");
        assert_eq!(m.memory().as_slice(), &seq_mem[..], "threads = {threads}");
    }
}

/// The COMMON checker would catch an algorithm whose concurrent writers
/// disagree; all shipped algorithms pass under COMMON across a fault storm.
#[test]
fn shipped_algorithms_are_common_legal() {
    for seed in 0..5u64 {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 150);
        let prog = AlgoV::new(&mut layout, tasks, 30);
        let mut adv = RandomFaults::new(0.25, 0.7, seed);
        let mut m = Machine::new(&prog, 30, CycleBudget::PAPER).unwrap();
        m.set_write_mode(WriteMode::Common);
        m.run(&mut adv).unwrap_or_else(|e| panic!("COMMON violation (seed {seed}): {e}"));
        assert!(tasks.all_written(m.memory()));
    }
}

/// ARBITRARY mode runs the same algorithms unchanged (COMMON ⊆ ARBITRARY).
#[test]
fn arbitrary_mode_subsumes_common_algorithms() {
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, 64);
    let prog = AlgoX::new(&mut layout, tasks, 16, XOptions::default());
    let mut adv = RandomFaults::new(0.1, 0.6, 3);
    let mut m = Machine::new(&prog, 16, CycleBudget::PAPER).unwrap();
    m.set_write_mode(WriteMode::Arbitrary);
    m.run(&mut adv).unwrap();
    assert!(tasks.all_written(m.memory()));
}

/// Restart storms at every legal fail point leave the accounting coherent.
#[test]
fn fail_points_inside_cycles_are_all_exercised() {
    use rfsp::pram::{FailPoint, FailureKind};
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, 120);
    let prog = AlgoV::new(&mut layout, tasks, 24);
    let mut adv = RandomFaults::new(0.3, 0.6, 0xFEED);
    let mut m = Machine::new(&prog, 24, CycleBudget::PAPER).unwrap();
    let report = m.run(&mut adv).unwrap();
    // The random adversary picks BeforeReads/BeforeWrites/AfterWrite(k)
    // uniformly; with hundreds of events all committed-write counts occur.
    let mut saw_partial = false;
    let mut saw_zero = false;
    for e in report.pattern.events() {
        if let FailureKind::Failure { point } = e.kind {
            match point {
                FailPoint::AfterWrite(_) => saw_partial = true,
                FailPoint::BeforeReads | FailPoint::BeforeWrites => saw_zero = true,
            }
        }
    }
    assert!(saw_partial, "no mid-cycle (between-writes) failure occurred");
    assert!(saw_zero, "no before-writes failure occurred");
    assert!(tasks.all_written(m.memory()));
}

/// The event stream independently witnesses the accounting: TraceLog
/// totals must equal WorkStats on an adversarial run.
#[test]
fn trace_log_matches_work_stats() {
    use rfsp::pram::{RunLimits, TraceEvent, TraceLog};
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, 100);
    let prog = AlgoX::new(&mut layout, tasks, 20, XOptions::default());
    let mut adv = RandomFaults::new(0.2, 0.6, 0xBEEF);
    let mut m = Machine::new(&prog, 20, CycleBudget::PAPER).unwrap();
    let mut log = TraceLog::new();
    let report = m.run_observed(&mut adv, RunLimits::default(), &mut log).unwrap();

    assert_eq!(log.completions, report.stats.completed_cycles);
    assert_eq!(log.interruptions, report.stats.interrupted_cycles);
    assert_eq!(log.failures, report.stats.failures);
    assert_eq!(log.restarts, report.stats.restarts);
    assert!(log.commits >= 100, "every array cell was committed at least once");
    // The stream ends with the completion event.
    assert!(matches!(log.events().last(), Some(TraceEvent::Completed { .. })));
    // Ticks are monotone.
    let mut last = 0;
    for e in log.events() {
        if let TraceEvent::TickStart { cycle } = e {
            assert!(*cycle >= last);
            last = *cycle;
        }
    }
}

/// The threaded backend is equivalent for every algorithm whose private
/// state is nontrivial (V carries cohort state; interleaved carries V's).
#[test]
fn threaded_backend_matches_for_v_and_interleaved() {
    use rfsp::core::Interleaved;
    let n = 150usize;
    let p = 16usize;
    // V.
    let pattern = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoV::new(&mut layout, tasks, p);
        let mut adv = RandomFaults::new(0.15, 0.6, 21);
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        m.run(&mut adv).unwrap().pattern
    };
    let seq = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoV::new(&mut layout, tasks, p);
        let mut adv = ScheduledAdversary::new(pattern.clone());
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        m.run(&mut adv).unwrap().stats
    };
    let par = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoV::new(&mut layout, tasks, p);
        let mut adv = ScheduledAdversary::new(pattern.clone());
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        m.run_threaded(&mut adv, RunLimits::default(), 4).unwrap().stats
    };
    assert_eq!(seq, par);
    // Interleaved.
    let (seq, par) = {
        let run = |threads: Option<usize>| {
            let mut layout = LayoutBuilder::new();
            let tasks = WriteAllTasks::new(&mut layout, n);
            let prog = Interleaved::new(&mut layout, tasks, p);
            let budget = prog.required_budget();
            let mut adv = RandomFaults::new(0.1, 0.7, 33);
            let mut m = Machine::new(&prog, p, budget).unwrap();
            match threads {
                None => m.run(&mut adv).unwrap().stats,
                Some(t) => m.run_threaded(&mut adv, RunLimits::default(), t).unwrap().stats,
            }
        };
        (run(None), run(Some(3)))
    };
    assert_eq!(seq, par);
}

/// The threaded backend emits the **identical event stream** as the
/// sequential engine, asserted down to the exported bytes: the same
/// recorded pattern is replayed through both backends with a
/// `TraceRecorder` attached, and the JSONL exports must match exactly.
#[test]
fn threaded_event_stream_is_byte_identical_to_sequential() {
    use rfsp::pram::{MetricsObserver, Tee, TraceRecorder};
    let n = 180usize;
    let p = 24usize;
    let pattern = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut adv = RandomFaults::new(0.2, 0.5, 0xA11CE);
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        m.run(&mut adv).unwrap().pattern
    };
    assert!(!pattern.is_empty(), "the adversary must actually interfere");
    let capture = |threads: Option<usize>| {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut adv = ScheduledAdversary::new(pattern.clone());
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        let mut rec = TraceRecorder::unbounded();
        let mut metrics = MetricsObserver::new(p);
        let mut tee = Tee(&mut rec, &mut metrics);
        let report = match threads {
            None => m.run_observed(&mut adv, RunLimits::default(), &mut tee).unwrap(),
            Some(t) => {
                m.run_threaded_observed(&mut adv, RunLimits::default(), t, &mut tee).unwrap()
            }
        };
        (rec.to_jsonl(), metrics.finish(), report.stats)
    };
    let (seq_jsonl, seq_series, seq_stats) = capture(None);
    for threads in [1usize, 2, 5] {
        let (par_jsonl, par_series, par_stats) = capture(Some(threads));
        assert_eq!(par_jsonl, seq_jsonl, "event stream diverged at {threads} threads");
        assert_eq!(par_series, seq_series, "metrics diverged at {threads} threads");
        assert_eq!(par_stats, seq_stats);
    }
    // The folded series is itself consistent with the accounting.
    let last = *seq_series.last().expect("run has ticks");
    assert_eq!(last.s, seq_stats.completed_cycles);
    assert_eq!(last.s_prime, seq_stats.s_prime());
    assert_eq!(last.pattern_size, seq_stats.pattern_size());
    assert_eq!(seq_series.completed_cycle, Some(seq_stats.parallel_time));
}

/// The per-processor decomposition of S witnesses V's balanced allocation
/// (Theorem 3.2's rule): with no failures and P ≪ N the busiest processor
/// does at most ~2x the average work.
#[test]
fn v_allocation_is_balanced() {
    use rfsp::pram::NoFailures;
    let n = 2048usize;
    let p = 32usize;
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let prog = AlgoV::new(&mut layout, tasks, p);
    let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
    let report = m.run(&mut NoFailures).unwrap();
    assert_eq!(report.per_processor.iter().sum::<u64>(), report.completed_work());
    let imbalance = report.load_imbalance();
    assert!(imbalance < 2.0, "V imbalance {imbalance} should be near 1");
}

/// X's PID-bit descent is also balanced failure-free, but the X-killer
/// skews the distribution heavily toward processor 0 (the lone worker).
#[test]
fn x_killer_skews_per_processor_work() {
    use rfsp::adversary::XKiller;
    let n = 128usize;
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let prog = AlgoX::new(&mut layout, tasks, n, XOptions::default());
    let mut adv = XKiller::new(tasks.x(), *prog.layout(), prog.tree());
    let mut m = Machine::new(&prog, n, CycleBudget::PAPER).unwrap();
    let report = m.run(&mut adv).unwrap();
    let p0 = report.per_processor[0];
    let mean = report.completed_work() / n as u64;
    assert!(p0 > 3 * mean, "processor 0 ({p0}) should dominate the mean ({mean})");
}
