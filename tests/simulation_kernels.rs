//! End-to-end: every shipped PRAM kernel, simulated under heavy
//! failure/restart churn by every engine, produces exactly the output of a
//! failure-free reference run (Theorem 4.1's correctness half).

use rfsp::adversary::RandomFaults;
use rfsp::pram::{RunLimits, Word};
use rfsp::sim::programs::{ListRanking, MaxFind, OddEvenSort, ParallelSum, PrefixSums};
use rfsp::sim::{reference_run, simulate, Engine, SimProgram};

fn check<P: SimProgram + Sync + Clone>(name: &str, prog: P, p: usize, seed: u64) {
    let expected: Vec<Word> = reference_run(&prog);
    for engine in [Engine::X, Engine::V, Engine::Interleaved] {
        let mut adv = RandomFaults::new(0.08, 0.6, seed);
        let report =
            simulate(prog.clone(), p, engine, &mut adv, RunLimits { max_cycles: 20_000_000 })
                .unwrap_or_else(|e| panic!("{name}/{engine:?} failed: {e}"));
        assert_eq!(report.memory, expected, "{name}/{engine:?} wrong output");
        assert!(
            report.run.stats.pattern_size() > 0,
            "{name}/{engine:?}: the adversary was supposed to interfere"
        );
    }
}

#[test]
fn reduction_under_churn() {
    check("sum", ParallelSum::new((0..64).map(|i| i % 9).collect()), 8, 0xA);
}

#[test]
fn prefix_sums_under_churn() {
    check("prefix", PrefixSums::new((0..100).map(|i| i % 7 + 1).collect()), 12, 0xB);
}

#[test]
fn maximum_under_churn() {
    let mut values: Vec<u32> = (0..77).map(|i| (i * 37) % 1000).collect();
    values[33] = 1_000_000;
    check("max", MaxFind::new(values), 8, 0xC);
}

#[test]
fn sorting_under_churn() {
    check("sort", OddEvenSort::new((0..48).rev().map(|i| i * 3 % 31).collect()), 8, 0xD);
}

#[test]
fn list_ranking_under_churn() {
    // A scrambled list over 40 nodes.
    let n = 40usize;
    let mut succ: Vec<usize> = (1..n).collect();
    succ.push(n - 1); // tail
                      // Interleave the chain deterministically to scramble addresses.
    let perm: Vec<usize> = (0..n).map(|i| (i * 17) % n).collect();
    let mut scrambled = vec![0usize; n];
    for i in 0..n {
        let here = perm[i];
        let next = if i + 1 < n { perm[i + 1] } else { here };
        scrambled[here] = next;
    }
    check("listrank", ListRanking::new(scrambled), 8, 0xE);
}

#[test]
fn single_simulated_processor_edge_case() {
    check("sum-1", ParallelSum::new(vec![7]), 3, 0xF);
}

#[test]
fn more_real_processors_than_simulated() {
    check("prefix-overprovisioned", PrefixSums::new(vec![1, 2, 3, 4]), 16, 0x10);
}

#[test]
fn connected_components_under_churn() {
    use rfsp::sim::programs::Components;
    // Two rings and a pendant chain.
    let mut edges: Vec<(usize, usize)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
    edges.extend((8..13).map(|i| (i, (i + 1 - 8) % 5 + 8)));
    edges.push((13, 14));
    check("components", Components::new(15, &edges), 6, 0x11);
}

#[test]
fn matvec_under_churn() {
    use rfsp::sim::programs::MatVec;
    let a: Vec<Vec<u32>> =
        (0..20).map(|i| (0..6).map(|j| ((i * j + 1) % 9) as u32).collect()).collect();
    let x: Vec<u32> = (1..=6).collect();
    check("matvec", MatVec::new(a, x), 6, 0x12);
}
