//! Failure patterns are first-class (Definition 2.1): every run records
//! the pattern it suffered, and replaying that pattern through
//! [`ScheduledAdversary`] reproduces the run exactly — the foundation for
//! debugging adversarial executions.

use rfsp::adversary::RandomFaults;
use rfsp::core::{AlgoV, AlgoX, WriteAllTasks, XOptions};
use rfsp::pram::{CycleBudget, LayoutBuilder, Machine, ScheduledAdversary, Word};

fn run_x(n: usize, p: usize) -> (rfsp::pram::RunReport, Vec<Word>) {
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let prog = AlgoX::new(&mut layout, tasks, p, XOptions::default());
    let mut adv = RandomFaults::new(0.15, 0.6, 0xDECAF);
    let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
    let report = m.run(&mut adv).unwrap();
    (report, m.memory().as_slice().to_vec())
}

#[test]
fn recorded_pattern_replays_identically_x() {
    let (original, mem) = run_x(96, 24);
    assert!(original.stats.pattern_size() > 0, "need a nontrivial pattern");

    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, 96);
    let prog = AlgoX::new(&mut layout, tasks, 24, XOptions::default());
    let mut replay_adv = ScheduledAdversary::new(original.pattern.clone());
    let mut m = Machine::new(&prog, 24, CycleBudget::PAPER).unwrap();
    let replayed = m.run(&mut replay_adv).unwrap();

    assert_eq!(replayed.stats, original.stats);
    assert_eq!(replayed.pattern, original.pattern);
    assert_eq!(m.memory().as_slice(), &mem[..]);
    assert_eq!(replay_adv.remaining(), 0, "every recorded event was replayed");
}

#[test]
fn recorded_pattern_replays_identically_v() {
    let n = 128;
    let p = 16;
    let original = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoV::new(&mut layout, tasks, p);
        let mut adv = RandomFaults::new(0.1, 0.8, 42);
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        m.run(&mut adv).unwrap()
    };
    let replayed = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let prog = AlgoV::new(&mut layout, tasks, p);
        let mut adv = ScheduledAdversary::new(original.pattern.clone());
        let mut m = Machine::new(&prog, p, CycleBudget::PAPER).unwrap();
        m.run(&mut adv).unwrap()
    };
    assert_eq!(replayed.stats, original.stats);
}

#[test]
fn patterns_serialize_and_roundtrip() {
    let (original, _) = run_x(64, 16);
    let json = serde_encode(&original.pattern);
    let back = serde_decode(&json);
    assert_eq!(back, original.pattern);
}

// Minimal JSON plumbing via serde's data model would need a format crate;
// the offline set has none, so the roundtrip uses the debug-stable
// serde-independent encoding below (exercising Serialize/Deserialize is
// covered by the format-agnostic serde_test-style token pass in
// rfsp-pram's own unit tests; here we check value-level equality).
fn serde_encode(p: &rfsp::pram::FailurePattern) -> Vec<rfsp::pram::FailureEvent> {
    p.events().to_vec()
}

fn serde_decode(events: &[rfsp::pram::FailureEvent]) -> rfsp::pram::FailurePattern {
    events.iter().copied().collect()
}
