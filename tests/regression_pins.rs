//! Regression pins: exact completed-work values for the flagship
//! deterministic runs, locking the whole stack (machine semantics,
//! algorithm implementations, adversary strategies) against accidental
//! behavioural drift. These are the numbers EXPERIMENTS.md reports; if a
//! legitimate algorithm change moves them, update both together.

use rfsp::adversary::{Pigeonhole, Thrashing, XKiller};
use rfsp::core::{AlgoV, AlgoX, SnapshotBalance, WriteAllTasks, XOptions};
use rfsp::pram::snapshot::SnapshotMachine;
use rfsp::pram::{CycleBudget, LayoutBuilder, Machine, NoFailures};

#[test]
fn x_killer_pin() {
    let n = 512usize;
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
    let mut adv = XKiller::new(tasks.x(), *algo.layout(), algo.tree());
    let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
    let report = m.run(&mut adv).unwrap();
    assert_eq!(report.completed_work(), 178_285, "Theorem 4.8 flagship run drifted");
    assert_eq!(report.stats.pattern_size(), 19_682);
}

#[test]
fn thrashing_pin() {
    let n = 256usize;
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
    let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
    let report = m.run(&mut Thrashing::new()).unwrap();
    assert_eq!(report.completed_work(), 1_779, "Example 2.2 flagship run drifted");
    assert_eq!(report.stats.s_prime(), 455_424);
}

#[test]
fn snapshot_pigeonhole_pin() {
    let n = 1024usize;
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let algo = SnapshotBalance::new(tasks, n);
    let mut m = SnapshotMachine::new(&algo, n, 1).unwrap();
    let mut adv = Pigeonhole::new(tasks.x());
    let report = m.run(&mut adv).unwrap();
    assert_eq!(report.completed_work(), 6_144, "Theorem 3.1/3.2 flagship run drifted");
}

#[test]
fn failure_free_pins() {
    // X, V at a standard configuration with no failures.
    let n = 2048usize;
    let p = 128usize;
    let x = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        m.run(&mut NoFailures).unwrap().completed_work()
    };
    let v = {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoV::new(&mut layout, tasks, p);
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        m.run(&mut NoFailures).unwrap().completed_work()
    };
    assert_eq!(x, 55_296, "algorithm X failure-free work drifted");
    assert_eq!(v, 7_040, "algorithm V failure-free work drifted");
}
