//! Property tests: every Write-All algorithm is correct under arbitrary
//! random failure/restart patterns, and the accounting invariants of §2
//! hold on every run.

use proptest::prelude::*;
use rfsp::adversary::RandomFaults;
use rfsp::core::{AlgoV, AlgoW, AlgoX, AlgoXInPlace, Interleaved, WriteAllTasks, XOptions};
use rfsp::pram::{CycleBudget, LayoutBuilder, Machine, RunLimits, RunReport};

#[derive(Clone, Copy, Debug)]
enum Which {
    X,
    XCounting,
    XInPlace,
    V,
    W,
    Combined,
}

fn run(which: Which, n: usize, p: usize, p_fail: f64, p_restart: f64, seed: u64) -> RunReport {
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let mut adv = RandomFaults::new(p_fail, p_restart, seed);
    let limits = RunLimits { max_cycles: 5_000_000 };
    let report = match which {
        Which::X => {
            let prog = AlgoX::new(&mut layout, tasks, p, XOptions::default());
            let mut m = Machine::new(&prog, p, CycleBudget::PAPER).expect("machine");
            let r = m.run_with_limits(&mut adv, limits).expect("X must terminate");
            assert!(tasks.all_written(m.memory()), "X left unwritten cells");
            r
        }
        Which::XCounting => {
            let prog = AlgoX::new(
                &mut layout,
                tasks,
                p,
                XOptions { counting: true, spread_initial: true },
            );
            let mut m = Machine::new(&prog, p, CycleBudget::PAPER).expect("machine");
            let r = m.run_with_limits(&mut adv, limits).expect("X-counting must terminate");
            assert!(tasks.all_written(m.memory()), "X-counting left unwritten cells");
            r
        }
        Which::XInPlace => {
            let prog = AlgoXInPlace::new(&mut layout, tasks, p);
            let mut m = Machine::new(&prog, p, CycleBudget::PAPER).expect("machine");
            let r = m.run_with_limits(&mut adv, limits).expect("in-place X must terminate");
            assert!(tasks.all_written(m.memory()), "in-place X left unwritten cells");
            r
        }
        Which::V => {
            let prog = AlgoV::new(&mut layout, tasks, p);
            let mut m = Machine::new(&prog, p, CycleBudget::PAPER).expect("machine");
            let r = m.run_with_limits(&mut adv, limits).expect("V must terminate");
            assert!(tasks.all_written(m.memory()), "V left unwritten cells");
            r
        }
        Which::W => {
            let prog = AlgoW::new(&mut layout, tasks, p);
            let mut m = Machine::new(&prog, p, CycleBudget::PAPER).expect("machine");
            let r = m.run_with_limits(&mut adv, limits).expect("W must terminate");
            assert!(tasks.all_written(m.memory()), "W left unwritten cells");
            r
        }
        Which::Combined => {
            let prog = Interleaved::new(&mut layout, tasks, p);
            let budget = prog.required_budget();
            let mut m = Machine::new(&prog, p, budget).expect("machine");
            let r = m.run_with_limits(&mut adv, limits).expect("V+X must terminate");
            assert!(tasks.all_written(m.memory()), "V+X left unwritten cells");
            r
        }
    };
    report
}

fn accounting_invariants(report: &RunReport, p: usize) {
    let s = report.stats.completed_work();
    let s_prime = report.stats.s_prime();
    // Remark 2: S <= S' <= S + |F|.
    assert!(s <= s_prime);
    assert!(
        s_prime <= s + report.stats.pattern_size(),
        "S'={} S={} |F|={}",
        s_prime,
        s,
        report.stats.pattern_size()
    );
    // At most P completions per tick.
    assert!(s <= report.stats.parallel_time * p as u64);
    // The recorded pattern matches the counters.
    assert_eq!(report.pattern.size() as u64, report.stats.pattern_size());
    assert_eq!(report.pattern.failure_count() as u64, report.stats.failures);
    assert_eq!(report.pattern.restart_count() as u64, report.stats.restarts);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn algorithm_x_is_correct_under_any_churn(
        n in 1usize..200,
        p in 1usize..64,
        p_fail in 0.0f64..0.4,
        p_restart in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        let report = run(Which::X, n, p, p_fail, p_restart, seed);
        accounting_invariants(&report, p);
    }

    #[test]
    fn x_variants_are_correct_under_any_churn(
        n_log in 2usize..9,
        p in 1usize..48,
        p_fail in 0.0f64..0.4,
        p_restart in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        // In-place X needs a power-of-two array ≥ 4.
        let n = 1usize << n_log;
        let report = run(Which::XCounting, n, p, p_fail, p_restart, seed);
        accounting_invariants(&report, p);
        let report = run(Which::XInPlace, n, p, p_fail, p_restart, seed);
        accounting_invariants(&report, p);
    }

    #[test]
    fn algorithm_v_is_correct_under_any_churn(
        n in 1usize..200,
        p in 1usize..64,
        p_fail in 0.0f64..0.3,
        p_restart in 0.3f64..1.0,
        seed in any::<u64>(),
    ) {
        let report = run(Which::V, n, p, p_fail, p_restart, seed);
        accounting_invariants(&report, p);
    }

    #[test]
    fn algorithm_w_is_correct_under_any_churn(
        n in 1usize..150,
        p in 1usize..48,
        p_fail in 0.0f64..0.2,
        p_restart in 0.3f64..1.0,
        seed in any::<u64>(),
    ) {
        let report = run(Which::W, n, p, p_fail, p_restart, seed);
        accounting_invariants(&report, p);
    }

    #[test]
    fn interleaved_is_correct_under_any_churn(
        n in 1usize..150,
        p in 1usize..48,
        p_fail in 0.0f64..0.4,
        p_restart in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        let report = run(Which::Combined, n, p, p_fail, p_restart, seed);
        accounting_invariants(&report, p);
    }

    /// Work never shrinks when the adversary interferes more (sanity of
    /// the S measure): a failure-free run is a lower bound for X up to the
    /// nondeterminism-free structure of the algorithm.
    #[test]
    fn x_failure_free_work_is_reproducible(n in 1usize..256, p in 1usize..64) {
        let a = run(Which::X, n, p, 0.0, 1.0, 1);
        let b = run(Which::X, n, p, 0.0, 1.0, 2);
        prop_assert_eq!(a.stats.completed_work(), b.stats.completed_work());
        prop_assert_eq!(a.stats.parallel_time, b.stats.parallel_time);
    }
}
