//! # rfsp — Efficient Parallel Algorithms on Restartable Fail-Stop Processors
//!
//! Facade crate re-exporting the whole workspace, a faithful implementation
//! of Kanellakis & Shvartsman, *"Efficient Parallel Algorithms on
//! Restartable Fail-Stop Processors"* (PODC 1991):
//!
//! * [`pram`] — the machine model: a synchronous CRCW PRAM whose processors
//!   suffer adversarial fail-stop failures and restarts, with update-cycle
//!   execution and completed-work accounting.
//! * [`core`] — the Write-All problem and the paper's algorithms (V, X,
//!   their interleaving, the snapshot-model optimum, and the baselines W
//!   and ACC).
//! * [`adversary`] — the paper's lower-bound proof strategies as executable
//!   adversaries (thrashing, pigeonhole, X-killer, stalking, random).
//! * [`sim`] — the general simulation (Theorem 4.1): run arbitrary
//!   `N`-processor PRAM programs on `P` restartable fail-stop processors.
//! * [`net`] — the §2.3 combining interconnection network cost model,
//!   measuring the latency the unit-cost memory assumption hides.
//!
//! See the repository README for a guided tour and `EXPERIMENTS.md` for the
//! measured reproduction of every result in the paper.

pub use rfsp_adversary as adversary;
pub use rfsp_core as core;
pub use rfsp_net as net;
pub use rfsp_pram as pram;
pub use rfsp_sim as sim;
