//! The Theorem 4.9 combination: interleave algorithms V and X.
//!
//! "The executions of algorithms V and X can be interleaved to yield an
//! algorithm that achieves ... `S = O(min{N + P log²N + M log N,
//! N·P^{0.59}})` and `σ = O(log² N)`" (§4.3). V supplies efficiency when
//! failures are scarce; X supplies *guaranteed termination* with bounded
//! work under any (even infinite) failure/restart pattern. Alternating
//! their cycles costs at most a factor of two over whichever finishes
//! first.
//!
//! The interleaving is time-based: a shared **parity cell**, flipped by
//! every completing processor every cycle (COMMON-safe: all writers agree),
//! tells each processor — including one that just restarted with no private
//! state — whether the current tick belongs to X or to V. Both halves run
//! over the *same* task array but keep disjoint bookkeeping, so whichever
//! half finishes first ends the computation.

use rfsp_pram::{LayoutBuilder, Pid, Program, ReadSet, Region, SharedMemory, Step, Word, WriteSet};

use crate::algo_v::{AlgoV, VPrivate};
use crate::algo_x::{AlgoX, XOptions};
use crate::tasks::TaskSet;

/// Shared-memory layout of the interleaved algorithm.
#[derive(Clone, Copy, Debug)]
pub struct InterleavedLayout {
    /// The tick-parity cell: 0 = X cycle, 1 = V cycle.
    pub parity: Region,
}

/// Interleaved V + X over one task set.
///
/// ```
/// use rfsp_core::{Interleaved, WriteAllTasks};
/// use rfsp_pram::{Machine, LayoutBuilder, NoFailures};
///
/// # fn main() -> Result<(), rfsp_pram::PramError> {
/// let mut layout = LayoutBuilder::new();
/// let tasks = WriteAllTasks::new(&mut layout, 64);
/// let algo = Interleaved::new(&mut layout, tasks, 8);
/// let budget = algo.required_budget(); // one extra read/write for parity
/// let mut machine = Machine::new(&algo, 8, budget)?;
/// machine.run(&mut NoFailures)?;
/// assert!(tasks.all_written(machine.memory()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Interleaved<T> {
    parity: Region,
    x: AlgoX<T>,
    v: AlgoV<T>,
}

impl<T: TaskSet + Clone> Interleaved<T> {
    /// Build the combined algorithm for `p` processors over `tasks`,
    /// allocating the parity cell and both halves' bookkeeping from
    /// `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or `p == 0`.
    pub fn new(layout: &mut LayoutBuilder, tasks: T, p: usize) -> Self {
        let parity = layout.alloc(1);
        // Both halves advance ONE shared round counter: multi-round task
        // state (register checkpoints, staging) is shared, so the halves
        // must agree at every tick on which round is current. Whichever
        // half completes a round first advances the counter; the other
        // half's in-flight iteration detects the change and goes dormant
        // until the next wrap.
        let round = layout.alloc(1);
        let x = AlgoX::new_with_round(layout, tasks.clone(), p, XOptions::default(), round);
        let v = AlgoV::new_with_round(layout, tasks, p, round);
        Interleaved { parity, x, v }
    }

    /// The combined layout (parity cell; the halves expose their own).
    pub fn layout(&self) -> InterleavedLayout {
        InterleavedLayout { parity: self.parity }
    }

    /// The X half.
    pub fn x_half(&self) -> &AlgoX<T> {
        &self.x
    }

    /// The V half.
    pub fn v_half(&self) -> &AlgoV<T> {
        &self.v
    }

    /// The reads/writes budget one cycle of this instance needs (one extra
    /// read and write for the parity cell on top of the wider half; the
    /// update-cycle constants are instruction-set parameters, §2.1).
    pub fn required_budget(&self) -> rfsp_pram::CycleBudget {
        let bx = self.x.required_budget();
        let bv = self.v.required_budget();
        rfsp_pram::CycleBudget {
            reads: 1 + bx.reads.max(bv.reads),
            writes: 1 + bx.writes.max(bv.writes),
        }
    }
}

impl<T: TaskSet + Sync + Clone> Program for Interleaved<T> {
    type Private = VPrivate;

    fn shared_size(&self) -> usize {
        self.v.shared_size()
    }

    fn init_memory(&self, mem: &mut SharedMemory) {
        self.x.init_memory(mem);
        self.v.init_memory(mem);
    }

    fn on_start(&self, pid: Pid) -> VPrivate {
        self.v.on_start(pid)
    }

    fn plan(&self, pid: Pid, state: &VPrivate, values: &[Word], reads: &mut ReadSet) {
        if values.is_empty() {
            reads.push(self.parity.at(0));
            return;
        }
        if values[0] == 0 {
            self.x.plan(pid, &(), &values[1..], reads);
        } else {
            self.v.plan(pid, state, &values[1..], reads);
        }
    }

    fn execute(
        &self,
        pid: Pid,
        state: &mut VPrivate,
        values: &[Word],
        writes: &mut WriteSet,
    ) -> Step {
        let parity = values[0];
        let step = if parity == 0 {
            self.x.execute(pid, &mut (), &values[1..], writes)
        } else {
            self.v.execute(pid, state, &values[1..], writes)
        };
        writes.push(self.parity.at(0), 1 - parity);
        // A half halts only once it has observed global completion, at
        // which point the machine's completion predicate is already true;
        // propagating the halt is therefore safe.
        step
    }

    // Keeps the default `completion_hint` (untracked): an OR of two
    // sub-predicates cannot be decomposed into independent per-cell
    // conditions, and both halves are already O(1) checks.
    fn is_complete(&self, mem: &SharedMemory) -> bool {
        self.x.is_complete(mem) || self.v.is_complete(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::WriteAllTasks;
    use rfsp_pram::{Adversary, Decisions, FailPoint, Machine, MachineView, NoFailures};

    fn build(n: usize, p: usize) -> (WriteAllTasks, Interleaved<WriteAllTasks>) {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = Interleaved::new(&mut layout, tasks, p);
        (tasks, algo)
    }

    #[test]
    fn solves_write_all_without_failures() {
        for (n, p) in [(8, 8), (64, 16), (33, 5), (1, 1)] {
            let (tasks, algo) = build(n, p);
            let budget = algo.required_budget();
            let mut m = Machine::new(&algo, p, budget).unwrap();
            m.run(&mut NoFailures).unwrap();
            assert!(tasks.all_written(m.memory()), "n={n} p={p}");
        }
    }

    #[test]
    fn parity_alternates() {
        let (_tasks, algo) = build(16, 4);
        let budget = algo.required_budget();
        let mut m = Machine::new(&algo, 4, budget).unwrap();
        let before = m.memory().peek(algo.layout().parity.at(0));
        m.tick(&mut NoFailures).unwrap();
        let after = m.memory().peek(algo.layout().parity.at(0));
        assert_eq!(before, 0);
        assert_eq!(after, 1);
        m.tick(&mut NoFailures).unwrap();
        assert_eq!(m.memory().peek(algo.layout().parity.at(0)), 0);
    }

    /// Heavy churn: the X half guarantees termination regardless.
    struct Churn;
    impl Adversary for Churn {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            let active: Vec<_> = view.active_pids().collect();
            for (k, pid) in active.iter().enumerate() {
                if k + 1 < active.len() && (pid.0 + view.cycle as usize).is_multiple_of(3) {
                    d.fail(*pid, FailPoint::BeforeWrites);
                    d.restart(*pid);
                }
            }
            d
        }
    }

    #[test]
    fn survives_continuous_churn() {
        let (tasks, algo) = build(64, 8);
        let budget = algo.required_budget();
        let mut m = Machine::new(&algo, 8, budget).unwrap();
        let report = m.run(&mut Churn).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0);
    }

    /// Work is within a constant factor of the better half: with no
    /// failures the interleaving costs at most ~2x a lone X run plus the
    /// alternation slack.
    #[test]
    fn work_tracks_the_better_half() {
        let n = 256;
        let p = 16;
        let interleaved_work = {
            let (tasks, algo) = build(n, p);
            let budget = algo.required_budget();
            let mut m = Machine::new(&algo, p, budget).unwrap();
            let r = m.run(&mut NoFailures).unwrap();
            assert!(tasks.all_written(m.memory()));
            r.stats.completed_cycles
        };
        let x_work = {
            let mut layout = LayoutBuilder::new();
            let tasks = WriteAllTasks::new(&mut layout, n);
            let algo = crate::algo_x::AlgoX::new(&mut layout, tasks, p, Default::default());
            let mut m = Machine::new(&algo, p, rfsp_pram::CycleBudget::PAPER).unwrap();
            m.run(&mut NoFailures).unwrap().stats.completed_cycles
        };
        let v_work = {
            let mut layout = LayoutBuilder::new();
            let tasks = WriteAllTasks::new(&mut layout, n);
            let algo = crate::algo_v::AlgoV::new(&mut layout, tasks, p);
            let mut m = Machine::new(&algo, p, rfsp_pram::CycleBudget::PAPER).unwrap();
            m.run(&mut NoFailures).unwrap().stats.completed_cycles
        };
        let best = x_work.min(v_work);
        assert!(
            interleaved_work <= 3 * best + 64,
            "interleaved {interleaved_work} vs best half {best}"
        );
    }
}
