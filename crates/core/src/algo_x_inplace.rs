//! Remark 7: algorithm X "in place".
//!
//! "The algorithm can be used to solve Write-All *in place* using the
//! array `x[]` as a tree of height log(N/2) with the leaves `x[N/2..N-1]`,
//! doubling up the processors at the leaves, and using `x[N]` as the final
//! element to be initialized and used as the algorithm termination
//! sentinel. With this modification, array d[] is not needed. The
//! asymptotic efficiency of the algorithm is not affected."
//!
//! The trick: the progress tree's "done" mark *is* the value 1 that
//! Write-All must store, so the array doubles as its own progress tree.
//! Cells `x[1..N)` form the heap (cell `v`'s children are `2v`, `2v+1`;
//! leaves are `x[N/2..N)`); marking an interior node done writes that very
//! cell's 1. Cell `x[0]` is the termination sentinel, written by the
//! first processor to observe the root done. Shared-memory cost drops
//! from `3N + P` cells to `N + P`.

use rfsp_pram::{
    CompletionHint, LayoutBuilder, Pid, Program, ReadSet, Region, SharedMemory, Step, Word,
    WriteSet,
};

use crate::tasks::WriteAllTasks;
use crate::tree::HeapTree;

/// Algorithm X solving Write-All in place (Remark 7). The array length
/// must be a power of two ≥ 4 (pad externally otherwise).
#[derive(Clone, Debug)]
pub struct AlgoXInPlace {
    tasks: WriteAllTasks,
    tree: HeapTree,
    p: usize,
    w: Region,
}

impl AlgoXInPlace {
    /// Build the in-place variant for `p` processors over a Write-All
    /// instance whose array region has power-of-two length ≥ 4 (so the
    /// implicit tree has at least two leaves).
    ///
    /// # Panics
    ///
    /// Panics if the array length is not a power of two ≥ 4 or `p == 0`.
    pub fn new(layout: &mut LayoutBuilder, tasks: WriteAllTasks, p: usize) -> Self {
        let n = tasks.x().len();
        assert!(n >= 4 && n.is_power_of_two(), "in-place X needs a power-of-two array (>= 4)");
        assert!(p > 0, "need at least one processor");
        // The heap lives in x[1..n): a full tree with n/2 leaves.
        let tree = HeapTree::with_leaves(n / 2);
        let w = layout.alloc(p);
        AlgoXInPlace { tasks, tree, p, w }
    }

    /// The location array region.
    pub fn w_region(&self) -> Region {
        self.w
    }

    /// The (implicit) progress tree shape.
    pub fn tree(&self) -> HeapTree {
        self.tree
    }

    /// Absolute address of heap node `v` (it *is* array cell `v`).
    fn node_addr(&self, v: usize) -> usize {
        self.tasks.x().at(v)
    }
}

impl Program for AlgoXInPlace {
    type Private = ();

    fn shared_size(&self) -> usize {
        self.w.base() + self.w.len()
    }

    fn init_memory(&self, mem: &mut SharedMemory) {
        for i in 0..self.p {
            let leaf = self.tree.leaf_node(i % self.tree.leaves());
            mem.poke(self.w.at(i), leaf as Word);
        }
    }

    fn on_start(&self, _pid: Pid) {}

    fn plan(&self, pid: Pid, _state: &(), values: &[Word], reads: &mut ReadSet) {
        match values.len() {
            0 => reads.push(self.w.at(pid.0)),
            1 => {
                let whr = values[0] as usize;
                if whr == 0 {
                    return; // exited
                }
                reads.push(self.node_addr(whr));
            }
            2 => {
                let whr = values[0] as usize;
                if values[1] == 1 {
                    return; // done: move up / write the sentinel
                }
                if !self.tree.is_leaf(whr) {
                    reads.push(self.node_addr(self.tree.left(whr)));
                    reads.push(self.node_addr(self.tree.right(whr)));
                }
                // An unwritten leaf needs no further reads: its own cell
                // (just read) is the work item.
            }
            _ => {}
        }
    }

    fn execute(&self, pid: Pid, _state: &mut (), values: &[Word], writes: &mut WriteSet) -> Step {
        let whr = values[0] as usize;
        if whr == 0 {
            return Step::Halt;
        }
        let done = values[1] == 1;
        if done {
            if whr == self.tree.root() {
                // Root done: write the sentinel x[0] and exit.
                writes.push(self.tasks.x().at(0), 1);
                return Step::Halt;
            }
            writes.push(self.w.at(pid.0), self.tree.parent(whr) as Word);
            return Step::Continue;
        }
        if self.tree.is_leaf(whr) {
            // The leaf cell is its own work item AND its own done flag.
            writes.push(self.node_addr(whr), 1);
            return Step::Continue;
        }
        let left = self.tree.left(whr);
        let right = self.tree.right(whr);
        let (l, r) = (values[2] == 1, values[3] == 1);
        match (l, r) {
            (true, true) => {
                // Marking the subtree done initializes this very cell.
                writes.push(self.node_addr(whr), 1);
            }
            (false, true) => writes.push(self.w.at(pid.0), left as Word),
            (true, false) => writes.push(self.w.at(pid.0), right as Word),
            (false, false) => {
                let depth = self.tree.depth(whr);
                let bit = Pid(pid.0 % self.tree.leaves()).bit_msb_first(depth, self.tree.height());
                let next = if bit == 0 { left } else { right };
                writes.push(self.w.at(pid.0), next as Word);
            }
        }
        Step::Continue
    }

    fn is_complete(&self, mem: &SharedMemory) -> bool {
        mem.peek(self.tasks.x().at(0)) == 1
    }

    // Completion is the x[0] termination sentinel alone (Remark 7) — one
    // tracked cell replaces the per-tick completion call.
    fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint {
        if addr == self.tasks.x().at(0) {
            if value == 1 {
                CompletionHint::Satisfied
            } else {
                CompletionHint::Outstanding
            }
        } else {
            CompletionHint::Untracked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_pram::{CycleBudget, Machine, NoFailures};

    fn build(n: usize, p: usize) -> (WriteAllTasks, AlgoXInPlace) {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoXInPlace::new(&mut layout, tasks, p);
        (tasks, algo)
    }

    #[test]
    fn solves_write_all_in_place() {
        for (n, p) in [(4usize, 1usize), (8, 8), (64, 16), (128, 3)] {
            let (tasks, algo) = build(n, p);
            let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
            m.run(&mut NoFailures).unwrap();
            assert!(tasks.all_written(m.memory()), "n={n} p={p}");
        }
    }

    #[test]
    fn memory_footprint_is_n_plus_p() {
        let (_tasks, algo) = build(64, 8);
        assert_eq!(algo.shared_size(), 64 + 8);
    }

    #[test]
    fn survives_churn() {
        use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView};
        struct Churn;
        impl Adversary for Churn {
            fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
                let mut d = Decisions::none();
                let active: Vec<_> = view.active_pids().collect();
                for (k, pid) in active.iter().enumerate() {
                    if k + 1 < active.len() && (pid.0 + view.cycle as usize).is_multiple_of(4) {
                        d.fail(*pid, FailPoint::BeforeWrites);
                        d.restart(*pid);
                    }
                }
                d
            }
        }
        let (tasks, algo) = build(64, 16);
        let mut m = Machine::new(&algo, 16, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut Churn).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let _ = build(12, 4);
    }

    #[test]
    fn work_is_comparable_to_plain_x() {
        let n = 256;
        let p = 64;
        let (tasks, algo) = build(n, p);
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let inplace = m.run(&mut NoFailures).unwrap().stats.completed_work();
        assert!(tasks.all_written(m.memory()));

        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = crate::algo_x::AlgoX::new(&mut layout, tasks, p, Default::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let plain = m.run(&mut NoFailures).unwrap().stats.completed_work();
        // "The asymptotic efficiency of the algorithm is not affected":
        // within a factor ~2 either way (the in-place tree is half as
        // tall; plain X pays a separate observation pass).
        assert!(
            inplace <= 2 * plain && plain <= 4 * inplace,
            "in-place {inplace} vs plain {plain}"
        );
    }
}
