//! Algorithm V (§4.1): a restart-capable modification of algorithm W.
//!
//! V runs phase-synchronized *iterations* over a progress tree with
//! `L ≈ N/log N` leaves and `β ≈ log N` array elements per leaf:
//!
//! 1. **Allocate** (`log L` ticks): processors descend from the root,
//!    splitting at every node in proportion to the number of unvisited
//!    leaves below each child — using their *permanent PIDs* in the
//!    divide-and-conquer split (the Theorem 3.2 balanced-allocation rule),
//!    which is precisely what frees V from algorithm W's processor
//!    enumeration phase and makes it sound under restarts.
//! 2. **Work** (`β` ticks): each processor performs the tasks of the leaf
//!    it reached, one per tick.
//! 3. **Update** (1 + `log L` ticks): the leaf is marked and the leaf
//!    counts are propagated bottom-up.
//!
//! **The iteration wrap-around counter.** The paper synchronizes restarted
//! processors with a counter that wraps around once per iteration: a
//! revived processor (which knows only its PID) waits for the wrap to
//! rejoin. We implement it as a shared *clock* cell: every alive processor
//! — cohort member or waiting spinner — reads the clock and writes
//! `clock+1` each cycle, which is COMMON-safe (all writers agree) and makes
//! the clock advance by exactly 1 per tick as long as anything is alive
//! (the model's progress condition guarantees at least one completed cycle
//! per tick). The phase within the iteration is `clock mod T`; a spinner
//! joins when the phase wraps to 0. This subsumes the paper's "if the
//! counter did not change for one cycle, start a new iteration by itself":
//! if every cohort member dies, the spinners' own clock writes carry the
//! count to the next wrap, where they form a new cohort.
//!
//! Completed work: `S = O(N + P log² N)` without restarts (Lemma 4.2) and
//! `S = O(N + P log² N + M log N)` under a failure/restart pattern of size
//! `M` (Theorem 4.3) — each failure wastes at most one iteration,
//! `T = O(log N)` cycles, of one processor's work. Note V alone need not
//! terminate under an *infinite* adversary (the paper interleaves it with
//! algorithm X, see [`crate::interleaved`]).

use rfsp_pram::{LayoutBuilder, Pid, Program, ReadSet, Region, SharedMemory, Step, Word, WriteSet};

use crate::tasks::TaskSet;
use crate::tree::HeapTree;

/// Pack a (round, count) pair into one word: counts are tagged with the
/// round that produced them so later rounds see earlier counts as zero.
#[inline]
fn pack(round: Word, count: u64) -> Word {
    debug_assert!(count < (1 << 40));
    (round << 40) | count
}

/// Count encoded in `v`, as seen by `round` (0 if the tag is stale).
#[inline]
fn count_for(round: Word, v: Word) -> u64 {
    if v >> 40 == round {
        v & ((1 << 40) - 1)
    } else {
        0
    }
}

/// The Theorem 3.2 balanced allocation rule, driven by permanent ranks:
/// of `width` processors at a node whose children have `u_l` and `u_r`
/// unvisited leaves, the first `⌈u_l·width/(u_l+u_r)⌉` ranks go left.
///
/// Splitting recursively with this rule reproduces the flat assignment
/// "rank `r` of `width` takes the `⌊r·u/width⌋`-th unvisited leaf", so
/// every unvisited leaf receives between `⌊width/u⌋` and `⌈width/u⌉`
/// processors — the load-balancing invariant behind Lemma 4.2.
///
/// When `u_l + u_r == 0` (a fully-done subtree reached through stale
/// counts) everyone is sent left, which is harmless: the tasks there are
/// idempotent.
#[inline]
pub fn balanced_split(u_l: u64, u_r: u64, width: u64) -> u64 {
    let u = u_l + u_r;
    if u == 0 {
        return width;
    }
    (u_l * width).div_ceil(u)
}

/// Shared-memory layout of algorithm V.
#[derive(Clone, Copy, Debug)]
pub struct VLayout {
    /// The iteration clock (1 cell): total V-ticks elapsed; phase is
    /// `clock mod T`.
    pub clock: Region,
    /// Current round (1 cell; fixed at 1 for plain Write-All).
    pub round: Region,
    /// The progress heap: cell `v` holds a packed (round, done-leaf-count)
    /// for node `v`'s subtree.
    pub dv: Region,
}

/// Per-processor state (lost on failure; a revived processor starts in
/// `Spin` and waits for the clock to wrap).
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum VPrivate {
    /// Not in the current cohort; waiting for phase 0.
    #[default]
    Spin,
    /// Descending the progress tree during allocation. `round` pins the
    /// round this cohort joined with: if the shared round counter advances
    /// mid-iteration (possible when another algorithm shares it, see
    /// [`Interleaved`](crate::interleaved::Interleaved)), the member goes
    /// dormant rather than mix rounds.
    Alloc { node: usize, rank: u64, width: u64, round: Word },
    /// Working at (and later updating above) a leaf.
    AtLeaf { leaf: usize, round: Word },
}

/// Algorithm V over an arbitrary task set.
///
/// ```
/// use rfsp_core::{AlgoV, WriteAllTasks};
/// use rfsp_pram::{CycleBudget, Machine, LayoutBuilder, NoFailures};
///
/// # fn main() -> Result<(), rfsp_pram::PramError> {
/// let mut layout = LayoutBuilder::new();
/// let tasks = WriteAllTasks::new(&mut layout, 128);
/// let algo = AlgoV::new(&mut layout, tasks, 16);
/// let mut machine = Machine::new(&algo, 16, CycleBudget::PAPER)?;
/// machine.run(&mut NoFailures)?;
/// assert!(tasks.all_written(machine.memory()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AlgoV<T> {
    tasks: T,
    tree: HeapTree,
    /// Tasks per leaf (β ≈ log N).
    beta: usize,
    /// Leaves actually containing tasks; higher leaves are padding and are
    /// never allocated.
    real_leaves: usize,
    p: usize,
    rounds: Word,
    layout: VLayout,
}

impl<T: TaskSet> AlgoV<T> {
    /// Build algorithm V for `p` processors over `tasks`, allocating its
    /// bookkeeping from `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or `p == 0`.
    pub fn new(layout: &mut LayoutBuilder, tasks: T, p: usize) -> Self {
        let round = layout.alloc(1);
        Self::new_with_round(layout, tasks, p, round)
    }

    /// Like [`AlgoV::new`], but the round cell is provided by the caller
    /// (shared with another algorithm over the same multi-round task set).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty, `p == 0`, or `round` is not one cell.
    pub fn new_with_round(layout: &mut LayoutBuilder, tasks: T, p: usize, round: Region) -> Self {
        assert!(!tasks.is_empty(), "algorithm V needs at least one task");
        assert!(p > 0, "algorithm V needs at least one processor");
        assert_eq!(round.len(), 1, "the round region is a single cell");
        let n = tasks.len();
        // β = ⌈log₂ N⌉ tasks per leaf (at least 1), L = ⌈N/β⌉ leaves.
        let beta = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
        let real_leaves = n.div_ceil(beta);
        let tree = HeapTree::with_leaves(real_leaves);
        let rounds = tasks.rounds();
        let v_layout =
            VLayout { clock: layout.alloc(1), round, dv: layout.alloc(tree.heap_size()) };
        AlgoV { tasks, tree, beta, real_leaves, p, rounds, layout: v_layout }
    }

    /// The algorithm's shared-memory layout.
    pub fn layout(&self) -> &VLayout {
        &self.layout
    }

    /// The progress-tree shape.
    pub fn tree(&self) -> HeapTree {
        self.tree
    }

    /// Tasks per leaf (β).
    pub fn tasks_per_leaf(&self) -> usize {
        self.beta
    }

    /// The task set.
    pub fn tasks(&self) -> &T {
        &self.tasks
    }

    /// Iteration length `T = 2·log L + β + 1` ticks.
    pub fn iteration_ticks(&self) -> u64 {
        2 * self.tree.height() as u64 + self.beta as u64 + 1
    }

    /// The reads/writes budget one cycle of this instance needs.
    pub fn required_budget(&self) -> rfsp_pram::CycleBudget {
        let pre = 1 + usize::from(self.multi_round()); // clock (+ round)
        rfsp_pram::CycleBudget {
            reads: pre + self.tasks.max_reads().max(2),
            writes: 1 + self.tasks.max_writes().max(1),
        }
    }

    fn multi_round(&self) -> bool {
        self.rounds > 1
    }

    fn pre(&self) -> usize {
        1 + usize::from(self.multi_round())
    }

    fn round_of(&self, values: &[Word]) -> Word {
        if self.multi_round() {
            values[1]
        } else {
            1
        }
    }

    /// Number of task-bearing leaves below node `v`.
    fn real_leaves_under(&self, v: usize) -> u64 {
        let first = self.tree.first_leaf_under(v);
        let span = self.tree.subtree_leaves(v);
        self.real_leaves.saturating_sub(first).min(span) as u64
    }

    /// The task range of leaf ordinal `leaf_idx`.
    fn leaf_tasks(&self, leaf_idx: usize) -> (usize, usize) {
        let lo = leaf_idx * self.beta;
        let hi = ((leaf_idx + 1) * self.beta).min(self.tasks.len());
        (lo, hi)
    }

    /// Height `h = log L`.
    fn h(&self) -> u64 {
        self.tree.height() as u64
    }
}

impl<T: TaskSet + Sync> Program for AlgoV<T> {
    type Private = VPrivate;

    fn shared_size(&self) -> usize {
        self.layout.dv.base() + self.layout.dv.len()
    }

    fn init_memory(&self, mem: &mut SharedMemory) {
        mem.poke(self.layout.round.at(0), 1);
    }

    fn on_start(&self, _pid: Pid) -> VPrivate {
        VPrivate::Spin
    }

    fn plan(&self, _pid: Pid, state: &VPrivate, values: &[Word], reads: &mut ReadSet) {
        let pre = self.pre();
        if values.is_empty() {
            reads.push(self.layout.clock.at(0));
            if self.multi_round() {
                reads.push(self.layout.round.at(0));
            }
            return;
        }
        let t = self.iteration_ticks();
        let phase = values[0] % t;
        let h = self.h();
        let r = self.round_of(values);
        if r > self.rounds {
            return;
        }
        if values.len() == pre {
            // Second batch: phase-specific reads.
            if phase == 0 {
                // Everyone joins: read the root's children counts.
                reads.push(self.layout.dv.at(2));
                reads.push(self.layout.dv.at(3));
            } else if phase < h {
                if let VPrivate::Alloc { node, round, .. } = state {
                    if *round == r {
                        reads.push(self.layout.dv.at(self.tree.left(*node)));
                        reads.push(self.layout.dv.at(self.tree.right(*node)));
                    }
                }
            } else if phase < h + self.beta as u64 {
                if let VPrivate::AtLeaf { leaf, round } = state {
                    if *round == r {
                        let k = (phase - h) as usize;
                        let (lo, hi) = self.leaf_tasks(self.tree.leaf_index(*leaf));
                        if lo + k < hi {
                            self.tasks.plan(r, lo + k, &values[pre..], reads);
                        }
                    }
                }
            } else if phase > h + self.beta as u64 {
                // Update tick j: read the children of the ancestor we write.
                if let VPrivate::AtLeaf { leaf, round } = state {
                    if *round == r {
                        let j = phase - (h + self.beta as u64 + 1);
                        let a = leaf >> (j + 1);
                        reads.push(self.layout.dv.at(self.tree.left(a)));
                        reads.push(self.layout.dv.at(self.tree.right(a)));
                    }
                }
            }
            // Mark tick (phase == h + β): no reads.
            return;
        }
        // Later batches: only a work tick's task can chain reads.
        if phase >= h && phase < h + self.beta as u64 {
            if let VPrivate::AtLeaf { leaf, round } = state {
                if *round == r {
                    let k = (phase - h) as usize;
                    let (lo, hi) = self.leaf_tasks(self.tree.leaf_index(*leaf));
                    if lo + k < hi {
                        self.tasks.plan(r, lo + k, &values[pre..], reads);
                    }
                }
            }
        }
    }

    fn execute(
        &self,
        pid: Pid,
        state: &mut VPrivate,
        values: &[Word],
        writes: &mut WriteSet,
    ) -> Step {
        let pre = self.pre();
        let clock = values[0];
        let r = self.round_of(values);
        if r > self.rounds {
            return Step::Halt;
        }
        let t = self.iteration_ticks();
        let phase = clock % t;
        let h = self.h();
        let beta = self.beta as u64;

        // Every cycle advances the clock (the wrap-around counter).
        let mut step = Step::Continue;

        if phase == 0 {
            // Join: allocate from the root.
            let c_l = count_for(r, values[pre]);
            let c_r = count_for(r, values[pre + 1]);
            let u_l = self.real_leaves_under(2).saturating_sub(c_l);
            let u_r = self.real_leaves_under(3).saturating_sub(c_r);
            if u_l + u_r == 0 {
                // Round complete.
                if r == self.rounds {
                    if self.multi_round() {
                        // Signal global completion on the shared counter.
                        writes.push(self.layout.round.at(0), r + 1);
                    }
                    step = Step::Halt;
                } else {
                    writes.push(self.layout.round.at(0), r + 1);
                    *state = VPrivate::Spin; // sit out the rest of this iteration
                }
            } else {
                let pid_rank = (pid.0 as u64) % (self.p as u64).max(1);
                let nl = balanced_split(u_l, u_r, self.p as u64);
                let (node, rank, width) = if pid_rank < nl {
                    (2, pid_rank, nl)
                } else {
                    (3, pid_rank - nl, self.p as u64 - nl)
                };
                *state = if h == 1 {
                    VPrivate::AtLeaf { leaf: node, round: r }
                } else {
                    VPrivate::Alloc { node, rank, width, round: r }
                };
            }
        } else if phase < h {
            if let VPrivate::Alloc { node, rank, width, round } = *state {
                if round != r {
                    // The shared round advanced mid-iteration: go dormant.
                    *state = VPrivate::Spin;
                    writes.push(self.layout.clock.at(0), clock + 1);
                    return Step::Continue;
                }
                let c_l = count_for(r, values[pre]);
                let c_r = count_for(r, values[pre + 1]);
                let left = self.tree.left(node);
                let right = self.tree.right(node);
                let u_l = self.real_leaves_under(left).saturating_sub(c_l);
                let u_r = self.real_leaves_under(right).saturating_sub(c_r);
                let nl = balanced_split(u_l, u_r, width);
                let (next, rank, width) =
                    if rank < nl { (left, rank, nl) } else { (right, rank - nl, width - nl) };
                *state = if phase == h - 1 {
                    VPrivate::AtLeaf { leaf: next, round }
                } else {
                    VPrivate::Alloc { node: next, rank, width, round }
                };
            }
        } else if phase < h + beta {
            if let VPrivate::AtLeaf { leaf, round } = *state {
                if round != r {
                    *state = VPrivate::Spin;
                } else {
                    let k = (phase - h) as usize;
                    let (lo, hi) = self.leaf_tasks(self.tree.leaf_index(leaf));
                    if lo + k < hi {
                        let _observed = self.tasks.run(r, lo + k, &values[pre..], writes);
                        // One committed attempt completes the task (TaskSet
                        // contract); a processor that survives the whole work
                        // phase may therefore mark the leaf at the mark tick.
                    }
                }
            }
        } else if phase == h + beta {
            if let VPrivate::AtLeaf { leaf, round } = *state {
                if round != r {
                    *state = VPrivate::Spin;
                } else {
                    let (lo, hi) = self.leaf_tasks(self.tree.leaf_index(leaf));
                    if lo < hi {
                        writes.push(self.layout.dv.at(leaf), pack(r, 1));
                    }
                }
            }
        } else {
            // Update tick j = phase - (h + β + 1): write ancestor at depth
            // h - 1 - j from its children's counts.
            if let VPrivate::AtLeaf { leaf, round } = *state {
                if round != r {
                    *state = VPrivate::Spin;
                } else {
                    let j = phase - (h + beta + 1);
                    let a = leaf >> (j + 1);
                    let c = count_for(r, values[pre]) + count_for(r, values[pre + 1]);
                    writes.push(self.layout.dv.at(a), pack(r, c));
                }
            }
        }

        writes.push(self.layout.clock.at(0), clock + 1);
        if phase == t - 1 {
            // Iteration over: everyone rejoins at the wrap.
            if !matches!(step, Step::Halt) {
                *state = VPrivate::Spin;
            }
        }
        step
    }

    // Keeps the default `completion_hint` (untracked): completion couples
    // the round counter with round-tagged threshold counters — not a
    // per-cell conjunction — and the fixed-peek scan is already O(1).
    fn is_complete(&self, mem: &SharedMemory) -> bool {
        let r = mem.peek(self.layout.round.at(0));
        if self.multi_round() && r > self.rounds {
            return true;
        }
        if r != self.rounds {
            return false;
        }
        let done = count_for(r, mem.peek(self.layout.dv.at(2)))
            + count_for(r, mem.peek(self.layout.dv.at(3)));
        done >= self.real_leaves as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::WriteAllTasks;
    use rfsp_pram::{
        Adversary, CycleBudget, Decisions, FailPoint, Machine, MachineView, NoFailures, RunOutcome,
    };

    fn build(n: usize, p: usize) -> (WriteAllTasks, AlgoV<WriteAllTasks>) {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoV::new(&mut layout, tasks, p);
        (tasks, algo)
    }

    #[test]
    fn packing_roundtrip() {
        let v = pack(3, 12345);
        assert_eq!(count_for(3, v), 12345);
        assert_eq!(count_for(2, v), 0, "stale tags read as zero");
        assert_eq!(count_for(4, v), 0);
    }

    #[test]
    fn split_is_proportional_and_total() {
        // All splits conserve processors and respect emptiness.
        for (u_l, u_r, width) in [(4u64, 4, 8), (1, 7, 8), (0, 5, 3), (5, 0, 3), (3, 3, 1)] {
            let nl = balanced_split(u_l, u_r, width);
            assert!(nl <= width);
            if u_l == 0 && u_r > 0 {
                assert_eq!(nl, 0);
            }
            if u_r == 0 && u_l > 0 {
                assert_eq!(nl, width);
            }
            if u_l > 0 && width >= u_l + u_r {
                assert!(nl > 0, "nonempty side must get processors when plentiful");
            }
        }
    }

    #[test]
    fn solves_write_all_without_failures() {
        for (n, p) in [(1, 1), (8, 8), (33, 4), (64, 64), (100, 7), (16, 1)] {
            let (tasks, algo) = build(n, p);
            let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
            let report = m.run(&mut NoFailures).unwrap();
            assert_eq!(report.outcome, RunOutcome::Completed, "n={n} p={p}");
            assert!(tasks.all_written(m.memory()), "n={n} p={p}");
        }
    }

    #[test]
    fn fits_the_paper_cycle_budget() {
        let (_t, algo) = build(256, 16);
        let b = algo.required_budget();
        assert!(b.reads <= CycleBudget::PAPER.reads, "reads {}", b.reads);
        assert!(b.writes <= CycleBudget::PAPER.writes, "writes {}", b.writes);
    }

    #[test]
    fn iteration_length_matches_structure() {
        let (_t, algo) = build(64, 8);
        // 64 tasks, β = 6, L = ⌈64/6⌉ = 11 → 16 leaves, h = 4.
        assert_eq!(algo.tasks_per_leaf(), 6);
        assert_eq!(algo.tree().leaves(), 16);
        assert_eq!(algo.iteration_ticks(), 2 * 4 + 6 + 1);
    }

    /// An adversary that kills the whole cohort mid-iteration a few times:
    /// restarted processors must wait for the wrap and the computation must
    /// still finish.
    struct CohortKiller {
        remaining: u32,
    }
    impl Adversary for CohortKiller {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            if self.remaining > 0 && view.cycle % 7 == 3 {
                self.remaining -= 1;
                let active: Vec<_> = view.active_pids().collect();
                // Fail all but one (the model requires a survivor), restart
                // them immediately.
                for pid in active.iter().skip(1) {
                    d.fail(*pid, FailPoint::BeforeWrites);
                    d.restart(*pid);
                }
            }
            d
        }
    }

    #[test]
    fn survives_cohort_killing() {
        let (tasks, algo) = build(128, 16);
        let mut m = Machine::new(&algo, 16, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut CohortKiller { remaining: 10 }).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0);
    }

    /// The lone-survivor property: even with P = 1 the iteration structure
    /// works (one processor walks every phase by itself).
    #[test]
    fn single_processor_completes() {
        let (tasks, algo) = build(40, 1);
        let mut m = Machine::new(&algo, 1, CycleBudget::PAPER).unwrap();
        m.run(&mut NoFailures).unwrap();
        assert!(tasks.all_written(m.memory()));
    }
}
