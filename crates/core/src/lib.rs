//! # rfsp-core — fault-tolerant Write-All algorithms
//!
//! The algorithmic contributions of Kanellakis & Shvartsman (PODC 1991):
//!
//! * [`tasks`] — the Write-All problem and its generalization to arbitrary
//!   idempotent task arrays (the hook used by the §4.3 PRAM simulation).
//! * [`tree`] — heap-coded full binary progress trees.
//! * [`algo_x`] — **Algorithm X**: unsynchronized local tree traversal;
//!   `O(N·P^{log(3/2)+δ})` completed work under *any* failure/restart
//!   pattern.
//! * [`algo_x_inplace`] — Remark 7: X with the array as its own progress
//!   tree (`N + P` cells of shared memory in total).
//! * [`algo_v`] — **Algorithm V**: phase-synchronized allocate/work/update
//!   iterations driven by a wrap-around clock; `O(N + P log²N + M log N)`
//!   completed work under a pattern of size `M`.
//! * [`algo_w`] — algorithm W of [KS 89] (with the iteration clock), the
//!   fail-stop baseline whose processor-enumeration phase breaks under
//!   restarts — kept for comparison, exactly as the paper discusses.
//! * [`interleaved`] — the Theorem 4.9 combination: V and X cycles
//!   alternate, achieving the min of their bounds.
//! * [`snapshot`] — the §3 snapshot model: Theorem 3.2's optimal
//!   `Θ(N log N)` algorithm under unit-cost whole-memory reads.
//! * [`acc`] — a reconstruction of the randomized ACC algorithm of
//!   [MSP 90], the victim of §5's stalking adversary.
//! * [`trivial`] — the optimal non-fault-tolerant parallel assignment, the
//!   no-failure baseline.
//! * [`lockfree`] — algorithm X on real OS threads over atomics: a
//!   lock-free asynchronous executor demonstrating the practical content
//!   of X's purely local design.

pub mod acc;
pub mod algo_v;
pub mod algo_w;
pub mod algo_x;
pub mod algo_x_inplace;
pub mod interleaved;
pub mod lockfree;
pub mod snapshot;
pub mod tasks;
pub mod tree;
pub mod trivial;

pub use acc::{AccOptions, AlgoAcc};
pub use algo_v::{balanced_split, AlgoV, VLayout};
pub use algo_w::{AlgoW, WLayout};
pub use algo_x::{AlgoX, XLayout, XOptions};
pub use algo_x_inplace::AlgoXInPlace;
pub use interleaved::{Interleaved, InterleavedLayout};
pub use lockfree::{run_lockfree_x, LockfreeOptions, LockfreeReport};
pub use snapshot::SnapshotBalance;
pub use tasks::{TaskSet, WriteAllTasks};
pub use tree::HeapTree;
pub use trivial::TrivialAssign;
