//! Algorithm W of [KS 89] (§4.1 of the paper), the fail-stop baseline.
//!
//! W is V's ancestor: each iteration has **four** phases, the extra one
//! being a *processor enumeration* over a counting tree —
//!
//! 1. **Count** (`1 + log P` ticks): the active processors write a tagged 1
//!    at their counting-tree leaf and aggregate bottom-up, each learning
//!    its rank among — and the total number of — active processors;
//! 2. **Allocate** (`log L` ticks): top-down divide-and-conquer over the
//!    progress tree, splitting the *enumerated* processors (rank of total)
//!    proportionally to unvisited leaf counts;
//! 3. **Work** (β ticks) and 4. **Update** (1 + `log L` ticks): as in V.
//!
//! Under fail-stop errors *without restarts* this allocation is tight and
//! W achieves `S = O(N + P log² N)` ([KS 89]; [Mar 91] per the paper). With
//! restarts, however, "no accurate estimates of active processors can be
//! obtained": revived processors are invisible until the next wrap, the
//! enumeration both over- and under-counts, and the paper's V removes the
//! enumeration phase entirely by ranking with *permanent PIDs*. We keep W
//! runnable under restarts (it borrows V's clock so revived processors can
//! resynchronize — the minimal extension the paper sketches) precisely so
//! the experiments can measure V against it.

use rfsp_pram::{LayoutBuilder, Pid, Program, ReadSet, Region, SharedMemory, Step, Word, WriteSet};

use crate::algo_v::balanced_split;
use crate::tasks::TaskSet;
use crate::tree::HeapTree;

#[inline]
fn pack(tag: Word, count: u64) -> Word {
    debug_assert!(count < (1 << 40));
    (tag << 40) | count
}

#[inline]
fn count_for(tag: Word, v: Word) -> u64 {
    if v >> 40 == tag {
        v & ((1 << 40) - 1)
    } else {
        0
    }
}

/// Shared-memory layout of algorithm W.
#[derive(Clone, Copy, Debug)]
pub struct WLayout {
    /// The iteration clock (1 cell).
    pub clock: Region,
    /// The counting tree: packed (iteration, active-count) per node.
    pub c: Region,
    /// The progress heap: packed (1, done-leaf-count) per node.
    pub dv: Region,
}

/// Per-processor state.
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub enum WPrivate {
    /// Waiting for the clock to wrap.
    #[default]
    Spin,
    /// Ascending the counting tree, accumulating the enumeration rank.
    Count { rank: u64 },
    /// Descending the progress tree with the enumerated (rank, width).
    Alloc { node: usize, rank: u64, width: u64 },
    /// Working at / updating above a leaf.
    AtLeaf { leaf: usize },
}

/// Algorithm W over an arbitrary task set (single round).
#[derive(Clone, Debug)]
pub struct AlgoW<T> {
    tasks: T,
    tree: HeapTree,
    ptree: HeapTree,
    beta: usize,
    real_leaves: usize,
    layout: WLayout,
}

impl<T: TaskSet> AlgoW<T> {
    /// Build algorithm W for `p` processors over `tasks`.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty, `p == 0`, or the task set is
    /// multi-round (W is a single-round baseline).
    pub fn new(layout: &mut LayoutBuilder, tasks: T, p: usize) -> Self {
        assert!(!tasks.is_empty(), "algorithm W needs at least one task");
        assert!(p > 0, "algorithm W needs at least one processor");
        assert_eq!(tasks.rounds(), 1, "algorithm W supports a single round");
        let n = tasks.len();
        let beta = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
        let real_leaves = n.div_ceil(beta);
        let tree = HeapTree::with_leaves(real_leaves);
        let ptree = HeapTree::with_leaves(p);
        let w_layout = WLayout {
            clock: layout.alloc(1),
            c: layout.alloc(ptree.heap_size()),
            dv: layout.alloc(tree.heap_size()),
        };
        AlgoW { tasks, tree, ptree, beta, real_leaves, layout: w_layout }
    }

    /// The algorithm's shared-memory layout.
    pub fn layout(&self) -> &WLayout {
        &self.layout
    }

    /// The progress-tree shape.
    pub fn tree(&self) -> HeapTree {
        self.tree
    }

    /// Iteration length: `(1 + log P) + log L + β + 1 + log L` ticks.
    pub fn iteration_ticks(&self) -> u64 {
        (1 + self.ptree.height() as u64) + 2 * self.tree.height() as u64 + self.beta as u64 + 1
    }

    fn h(&self) -> u64 {
        self.tree.height() as u64
    }

    fn hp(&self) -> u64 {
        self.ptree.height() as u64
    }

    fn real_leaves_under(&self, v: usize) -> u64 {
        let first = self.tree.first_leaf_under(v);
        let span = self.tree.subtree_leaves(v);
        self.real_leaves.saturating_sub(first).min(span) as u64
    }

    fn leaf_tasks(&self, leaf_idx: usize) -> (usize, usize) {
        let lo = leaf_idx * self.beta;
        let hi = ((leaf_idx + 1) * self.beta).min(self.tasks.len());
        (lo, hi)
    }

    /// My counting-tree leaf node.
    fn count_leaf(&self, pid: Pid) -> usize {
        self.ptree.leaf_node(pid.0 % self.ptree.leaves())
    }
}

impl<T: TaskSet + Sync> Program for AlgoW<T> {
    type Private = WPrivate;

    fn shared_size(&self) -> usize {
        self.layout.dv.base() + self.layout.dv.len()
    }

    fn on_start(&self, _pid: Pid) -> WPrivate {
        WPrivate::Spin
    }

    fn plan(&self, pid: Pid, state: &WPrivate, values: &[Word], reads: &mut ReadSet) {
        if values.is_empty() {
            reads.push(self.layout.clock.at(0));
            return;
        }
        let t = self.iteration_ticks();
        let clock = values[0];
        let phase = clock % t;
        let hp = self.hp();
        let h = self.h();
        let beta = self.beta as u64;
        let alloc0 = hp + 1;
        let work0 = alloc0 + h;
        let mark = work0 + beta;

        if values.len() == 1 {
            if phase == 0 {
                // Enumeration leaf write: no further reads.
            } else if phase <= hp {
                if let WPrivate::Count { .. } = state {
                    let a = self.count_leaf(pid) >> phase;
                    reads.push(self.layout.c.at(self.ptree.left(a)));
                    reads.push(self.layout.c.at(self.ptree.right(a)));
                }
            } else if phase < work0 {
                if let WPrivate::Alloc { node, .. } = state {
                    reads.push(self.layout.dv.at(self.tree.left(*node)));
                    reads.push(self.layout.dv.at(self.tree.right(*node)));
                }
            } else if phase < mark {
                if let WPrivate::AtLeaf { leaf } = state {
                    let k = (phase - work0) as usize;
                    let (lo, hi) = self.leaf_tasks(self.tree.leaf_index(*leaf));
                    if lo + k < hi {
                        self.tasks.plan(1, lo + k, &values[1..], reads);
                    }
                }
            } else if phase > mark {
                if let WPrivate::AtLeaf { leaf } = state {
                    let j = phase - mark - 1;
                    let a = *leaf >> (j + 1);
                    reads.push(self.layout.dv.at(self.tree.left(a)));
                    reads.push(self.layout.dv.at(self.tree.right(a)));
                }
            }
            return;
        }
        // Chained task reads during the work phase.
        if phase >= work0 && phase < mark {
            if let WPrivate::AtLeaf { leaf } = state {
                let k = (phase - work0) as usize;
                let (lo, hi) = self.leaf_tasks(self.tree.leaf_index(*leaf));
                if lo + k < hi {
                    self.tasks.plan(1, lo + k, &values[1..], reads);
                }
            }
        }
    }

    fn execute(
        &self,
        pid: Pid,
        state: &mut WPrivate,
        values: &[Word],
        writes: &mut WriteSet,
    ) -> Step {
        let clock = values[0];
        let t = self.iteration_ticks();
        let phase = clock % t;
        let iter = clock / t; // counting-tree freshness tag
        let hp = self.hp();
        let h = self.h();
        let beta = self.beta as u64;
        let alloc0 = hp + 1;
        let work0 = alloc0 + h;
        let mark = work0 + beta;
        let mut step = Step::Continue;

        if phase == 0 {
            // Phase 1 begins: stamp my counting leaf.
            writes.push(self.layout.c.at(self.count_leaf(pid)), pack(iter, 1));
            *state = WPrivate::Count { rank: 0 };
        } else if phase <= hp {
            if let WPrivate::Count { rank } = *state {
                let a = self.count_leaf(pid) >> phase;
                let c_l = count_for(iter, values[1]);
                let c_r = count_for(iter, values[2]);
                // Came from the right child: everyone on the left precedes me.
                let from_right = (self.count_leaf(pid) >> (phase - 1)) & 1 == 1;
                let rank = rank + if from_right { c_l } else { 0 };
                writes.push(self.layout.c.at(a), pack(iter, c_l + c_r));
                *state = if phase == hp {
                    // Enumeration complete: rank of `width` active processors.
                    WPrivate::Alloc { node: self.tree.root(), rank, width: (c_l + c_r).max(1) }
                } else {
                    WPrivate::Count { rank }
                };
            }
        } else if phase < work0 {
            if let WPrivate::Alloc { node, rank, width } = *state {
                let c_l = count_for(1, values[1]);
                let c_r = count_for(1, values[2]);
                let left = self.tree.left(node);
                let right = self.tree.right(node);
                let u_l = self.real_leaves_under(left).saturating_sub(c_l);
                let u_r = self.real_leaves_under(right).saturating_sub(c_r);
                if node == self.tree.root() && u_l + u_r == 0 {
                    step = Step::Halt;
                } else {
                    let nl = balanced_split(u_l, u_r, width);
                    let (next, rank, width) =
                        if rank < nl { (left, rank, nl) } else { (right, rank - nl, width - nl) };
                    *state = if phase == work0 - 1 {
                        WPrivate::AtLeaf { leaf: next }
                    } else {
                        WPrivate::Alloc { node: next, rank, width }
                    };
                }
            }
        } else if phase < mark {
            if let WPrivate::AtLeaf { leaf } = *state {
                let k = (phase - work0) as usize;
                let (lo, hi) = self.leaf_tasks(self.tree.leaf_index(leaf));
                if lo + k < hi {
                    let _ = self.tasks.run(1, lo + k, &values[1..], writes);
                }
            }
        } else if phase == mark {
            if let WPrivate::AtLeaf { leaf } = *state {
                let (lo, hi) = self.leaf_tasks(self.tree.leaf_index(leaf));
                if lo < hi {
                    writes.push(self.layout.dv.at(leaf), pack(1, 1));
                }
            }
        } else {
            if let WPrivate::AtLeaf { leaf } = *state {
                let j = phase - mark - 1;
                let a = leaf >> (j + 1);
                let c = count_for(1, values[1]) + count_for(1, values[2]);
                writes.push(self.layout.dv.at(a), pack(1, c));
            }
        }

        writes.push(self.layout.clock.at(0), clock + 1);
        if phase == t - 1 && !matches!(step, Step::Halt) {
            *state = WPrivate::Spin;
        }
        step
    }

    // Keeps the default `completion_hint` (untracked): the predicate is a
    // *threshold* over two packed counters, not a per-cell conjunction,
    // and the two-peek scan is already O(1).
    fn is_complete(&self, mem: &SharedMemory) -> bool {
        let done = count_for(1, mem.peek(self.layout.dv.at(2)))
            + count_for(1, mem.peek(self.layout.dv.at(3)));
        done >= self.real_leaves as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::WriteAllTasks;
    use rfsp_pram::{
        Adversary, CycleBudget, Decisions, FailPoint, Machine, MachineView, NoFailures,
    };

    fn build(n: usize, p: usize) -> (WriteAllTasks, AlgoW<WriteAllTasks>) {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoW::new(&mut layout, tasks, p);
        (tasks, algo)
    }

    #[test]
    fn solves_write_all_without_failures() {
        for (n, p) in [(8, 8), (64, 16), (33, 4), (100, 100)] {
            let (tasks, algo) = build(n, p);
            let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
            m.run(&mut NoFailures).unwrap();
            assert!(tasks.all_written(m.memory()), "n={n} p={p}");
        }
    }

    /// Fail-stop (no restart): half the processors die mid-run; W must
    /// still finish (this is its home turf).
    struct HalfDie(bool);
    impl Adversary for HalfDie {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            if !self.0 && view.cycle == 5 {
                self.0 = true;
                let active: Vec<_> = view.active_pids().collect();
                for pid in active.iter().skip(active.len() / 2 + 1) {
                    d.fail(*pid, FailPoint::BeforeWrites);
                }
            }
            d
        }
    }

    #[test]
    fn tolerates_fail_stop_without_restarts() {
        let (tasks, algo) = build(64, 8);
        let mut m = Machine::new(&algo, 8, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut HalfDie(false)).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0);
    }

    /// Restarted processors rejoin via the clock and the run still
    /// completes (the clock is the minimal extension the paper sketches).
    struct ChurnW;
    impl Adversary for ChurnW {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            if view.cycle % 5 == 2 && view.cycle < 200 {
                let active: Vec<_> = view.active_pids().collect();
                for pid in active.iter().skip(1).take(3) {
                    d.fail(*pid, FailPoint::BeforeWrites);
                    d.restart(*pid);
                }
            }
            d
        }
    }

    #[test]
    fn restarts_do_not_break_correctness() {
        let (tasks, algo) = build(48, 8);
        let mut m = Machine::new(&algo, 8, CycleBudget::PAPER).unwrap();
        m.run(&mut ChurnW).unwrap();
        assert!(tasks.all_written(m.memory()));
    }

    #[test]
    fn iteration_is_longer_than_v() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 256);
        let w = AlgoW::new(&mut layout, tasks, 16);
        let mut layout2 = LayoutBuilder::new();
        let tasks2 = WriteAllTasks::new(&mut layout2, 256);
        let v = crate::algo_v::AlgoV::new(&mut layout2, tasks2, 16);
        assert!(w.iteration_ticks() > v.iteration_ticks());
    }
}
