//! A randomized Write-All algorithm in the style of [MSP 90]'s
//! "asynchronous coupon clipping" (ACC) — the victim of §5's *stalking
//! adversary*.
//!
//! The paper describes ACC's relevant structure: processors independently
//! hunt for undone leaves ("coupons") of a binary tree, choosing randomly
//! where algorithm X consults a PID bit, and returning to the root after
//! clipping a coupon. Against *off-line* (non-adaptive) adversaries its
//! expected work is good; §5 observes that a simple **on-line** adversary —
//! pick one leaf, fail every processor that touches it (fail-stop), or fail
//! *and restart* them (restart model) — forces expected work
//! `Ω(N²/polylog N)`, resp. exponential-in-`N`, because independent random
//! restarts almost never land every processor on the target leaf
//! simultaneously.
//!
//! [MSP 90]'s exact pseudocode is not reproduced in the paper; this is a
//! faithful reconstruction of the structure §5's argument relies on (see
//! DESIGN.md, substitution 3).

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rfsp_pram::{
    CompletionHint, LayoutBuilder, Pid, Program, ReadSet, Region, SharedMemory, Step, Word,
    WriteSet,
};

use crate::tasks::TaskSet;
use crate::tree::HeapTree;

/// Options for [`AlgoAcc`].
#[derive(Clone, Copy, Debug)]
pub struct AccOptions {
    /// Master seed; every (re)start derives a fresh stream from it.
    pub seed: u64,
}

impl Default for AccOptions {
    fn default() -> Self {
        AccOptions { seed: 0x5EED_ACC0 }
    }
}

/// Per-processor state: current tree position and private randomness
/// (both lost on failure — a restarted processor re-enters at the root
/// with a fresh random stream, which is exactly what the stalking
/// adversary exploits).
#[derive(Clone, Debug)]
pub struct AccPrivate {
    node: usize,
    rng: SmallRng,
    /// Remaining idle cycles after a (re)start. [MSP 90]'s processors are
    /// *asynchronous*; on our synchronous machine a small random start-up
    /// delay models the phase drift between them (without it, two restarted
    /// processors would re-descend in deterministic lockstep).
    delay: u8,
}

// Manual serde: `SmallRng` is checkpointed through its raw xoshiro state
// (the derive cannot see inside it). Note that checkpointing an ACC *run*
// is still lossy — `AlgoAcc::incarnations` is program-level state that a
// resumed run cannot recover — so runners exclude ACC from kill/resume
// chaos; the private-state impl exists so ACC machines can at least be
// snapshotted for inspection.
impl serde::Serialize for AccPrivate {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("node".to_string(), serde::Value::UInt(self.node as u64)),
            (
                "rng".to_string(),
                serde::Value::Seq(
                    self.rng.state().iter().map(|&w| serde::Value::UInt(w)).collect(),
                ),
            ),
            ("delay".to_string(), serde::Value::UInt(self.delay as u64)),
        ])
    }
}

impl serde::Deserialize for AccPrivate {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let need = |name: &str| {
            v.get(name).ok_or_else(|| serde::Error::custom(format!("AccPrivate needs `{name}`")))
        };
        let node = need("node")?
            .as_u64()
            .ok_or_else(|| serde::Error::custom("`node` must be an integer"))?
            as usize;
        let delay = need("delay")?
            .as_u64()
            .ok_or_else(|| serde::Error::custom("`delay` must be an integer"))?
            as u8;
        let words: Vec<u64> = need("rng")?
            .as_seq()
            .ok_or_else(|| serde::Error::custom("`rng` must be a sequence"))?
            .iter()
            .filter_map(serde::Value::as_u64)
            .collect();
        let state: [u64; 4] = words
            .try_into()
            .map_err(|_| serde::Error::custom("`rng` must hold exactly four u64 words"))?;
        Ok(AccPrivate { node, rng: SmallRng::from_state(state), delay })
    }
}

/// Randomized coupon-clipping Write-All (single round).
#[derive(Debug)]
pub struct AlgoAcc<T> {
    tasks: T,
    tree: HeapTree,
    d: Region,
    seed: u64,
    /// Distinguishes successive (re)starts so revived processors do not
    /// replay their previous random choices.
    incarnations: AtomicU64,
}

impl<T: TaskSet> AlgoAcc<T> {
    /// Build ACC over `tasks`, allocating its progress heap from `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or multi-round.
    pub fn new(layout: &mut LayoutBuilder, tasks: T, opts: AccOptions) -> Self {
        assert!(!tasks.is_empty(), "ACC needs at least one task");
        assert_eq!(tasks.rounds(), 1, "ACC supports a single round");
        let tree = HeapTree::with_leaves(tasks.len());
        let d = layout.alloc(tree.heap_size());
        AlgoAcc { tasks, tree, d, seed: opts.seed, incarnations: AtomicU64::new(0) }
    }

    /// The progress heap region.
    pub fn d_region(&self) -> Region {
        self.d
    }

    /// The progress-tree shape.
    pub fn tree(&self) -> HeapTree {
        self.tree
    }
}

impl<T: TaskSet + Sync> Program for AlgoAcc<T> {
    type Private = AccPrivate;

    fn shared_size(&self) -> usize {
        self.d.base() + self.d.len()
    }

    fn on_start(&self, pid: Pid) -> AccPrivate {
        let inc = self.incarnations.fetch_add(1, Ordering::Relaxed);
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((pid.0 as u64) << 32)
            .wrapping_add(inc);
        let mut rng = SmallRng::seed_from_u64(seed);
        let delay = rng.random_range(0..4);
        AccPrivate { node: self.tree.root(), rng, delay }
    }

    fn plan(&self, _pid: Pid, state: &AccPrivate, values: &[Word], reads: &mut ReadSet) {
        let node = state.node;
        if state.delay > 0 {
            return; // still settling in after a (re)start
        }
        if values.is_empty() {
            reads.push(self.d.at(node));
            return;
        }
        if values.len() == 1 {
            if values[0] == 1 {
                return; // node done: private move, no further reads
            }
            if !self.tree.is_leaf(node) {
                reads.push(self.d.at(self.tree.left(node)));
                reads.push(self.d.at(self.tree.right(node)));
            } else {
                let i = self.tree.leaf_index(node);
                if i < self.tasks.len() {
                    self.tasks.plan(1, i, &values[1..], reads);
                }
            }
            return;
        }
        if self.tree.is_leaf(node) {
            let i = self.tree.leaf_index(node);
            if i < self.tasks.len() {
                self.tasks.plan(1, i, &values[1..], reads);
            }
        }
    }

    fn execute(
        &self,
        _pid: Pid,
        state: &mut AccPrivate,
        values: &[Word],
        writes: &mut WriteSet,
    ) -> Step {
        if state.delay > 0 {
            state.delay -= 1;
            return Step::Continue;
        }
        let node = state.node;
        if values[0] == 1 {
            // Subtree done: clipped a coupon (or found it clipped) — return
            // to the root; at the root, the whole tree is done.
            if node == self.tree.root() {
                return Step::Halt;
            }
            state.node = self.tree.root();
            return Step::Continue;
        }
        if !self.tree.is_leaf(node) {
            let left_done = values[1] == 1;
            let right_done = values[2] == 1;
            match (left_done, right_done) {
                (true, true) => {
                    writes.push(self.d.at(node), 1);
                }
                (false, true) => state.node = self.tree.left(node),
                (true, false) => state.node = self.tree.right(node),
                (false, false) => {
                    // The random coupon choice: a fair coin instead of
                    // algorithm X's PID bit.
                    state.node = if state.rng.random_bool(0.5) {
                        self.tree.left(node)
                    } else {
                        self.tree.right(node)
                    };
                }
            }
            return Step::Continue;
        }
        let i = self.tree.leaf_index(node);
        if i >= self.tasks.len() {
            writes.push(self.d.at(node), 1);
            return Step::Continue;
        }
        let observed_done = self.tasks.run(1, i, &values[1..], writes);
        if observed_done {
            writes.push(self.d.at(node), 1);
        }
        Step::Continue
    }

    fn is_complete(&self, mem: &SharedMemory) -> bool {
        mem.peek(self.d.at(self.tree.root())) == 1
    }

    // The predicate is a single root cell; tracking it saves the machine's
    // per-tick completion call entirely (the scan was already O(1), but the
    // hint keeps the hot loop branch-free).
    fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint {
        if addr == self.d.at(self.tree.root()) {
            if value == 1 {
                CompletionHint::Satisfied
            } else {
                CompletionHint::Outstanding
            }
        } else {
            CompletionHint::Untracked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::WriteAllTasks;
    use rfsp_pram::{CycleBudget, Machine, NoFailures};

    fn build(n: usize) -> (WriteAllTasks, AlgoAcc<WriteAllTasks>) {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoAcc::new(&mut layout, tasks, AccOptions::default());
        (tasks, algo)
    }

    #[test]
    fn solves_write_all_without_failures() {
        for (n, p) in [(8, 8), (32, 4), (17, 17), (64, 1)] {
            let (tasks, algo) = build(n);
            let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
            m.run(&mut NoFailures).unwrap();
            assert!(tasks.all_written(m.memory()), "n={n} p={p}");
        }
    }

    #[test]
    fn restarts_get_fresh_randomness() {
        let (_tasks, algo) = build(8);
        let a = algo.on_start(Pid(0));
        let b = algo.on_start(Pid(0));
        // Same PID, different incarnation: different stream state.
        let mut ra = a.rng.clone();
        let mut rb = b.rng.clone();
        let sa: Vec<bool> = (0..16).map(|_| ra.random_bool(0.5)).collect();
        let sb: Vec<bool> = (0..16).map(|_| rb.random_bool(0.5)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn different_seeds_give_different_runs() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 64);
        let a1 = AlgoAcc::new(&mut LayoutBuilder::new(), tasks, AccOptions { seed: 1 });
        let a2 = AlgoAcc::new(&mut LayoutBuilder::new(), tasks, AccOptions { seed: 2 });
        let w1 = {
            let mut m = Machine::new(&a1, 8, CycleBudget::PAPER).unwrap();
            m.run(&mut NoFailures).unwrap().stats.completed_cycles
        };
        let w2 = {
            let mut m = Machine::new(&a2, 8, CycleBudget::PAPER).unwrap();
            m.run(&mut NoFailures).unwrap().stats.completed_cycles
        };
        // Not a hard guarantee, but with 8 processors over 64 leaves the
        // random walks virtually never coincide exactly.
        assert_ne!(w1, w2);
    }
}
