//! Algorithm X (§4.2, Figures 2 and 5).
//!
//! A Write-All algorithm whose processors traverse a progress tree
//! *independently* — no synchronized phases — searching for work in the
//! smallest immediate subtree that still has work, doing it, and moving out.
//! Its completed work is `O(N·P^{log(3/2)+δ})` for **any** failure/restart
//! pattern (Lemma 4.6 / Theorem 4.7): unlike algorithm V, no dependence on
//! the number of failures, which is what guarantees termination.
//!
//! The implementation follows the paper's pseudocode (Figure 5) exactly:
//!
//! * a "done" heap `d[1..2N-1]` (the progress tree),
//! * a "where" array `w[0..P-1]` holding each processor's position **in
//!   shared memory**, so that a restarted processor — which loses all
//!   private state — resumes from `w[PID]` at the cost of a single cycle;
//!   indeed [`AlgoX`]'s private state is `()`,
//! * one loop iteration per update cycle: read `w[PID]`, read `d[where]`,
//!   then either move up (node done), work at a leaf, aggregate children,
//!   or descend — choosing the subtree by the processor's **PID bit at the
//!   node's depth** when both subtrees are unfinished (the italicized
//!   decision of Figure 2, line 09).
//!
//! Generalizations, each noted in the paper:
//! * `P ≤ N` arbitrary: only `log N` PID bits are significant (Lemma 4.5,
//!   handled by descending on `PID mod N`).
//! * `N` not a power of two: leaves are padded; a padded leaf is marked done
//!   on first visit (conventional padding, §4 preamble).
//! * Leaves run arbitrary [`TaskSet`] tasks instead of `x[i] := 1`, and the
//!   whole tree can be replayed for `tasks.rounds()` rounds with doneness
//!   encoded as "equals the current round number" — the building block of
//!   the §4.3 simulation. For one round (plain Write-All), the layout and
//!   cycle structure reduce to Figure 5 verbatim.

use rfsp_pram::{LayoutBuilder, Pid, Program, ReadSet, Region, SharedMemory, Step, Word, WriteSet};

use crate::tasks::TaskSet;
use crate::tree::HeapTree;

/// Tuning options for [`AlgoX`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct XOptions {
    /// Remark 5(i): space the `P` processors' initial positions evenly,
    /// `N/P` leaves apart, instead of packing them onto the first `P`
    /// leaves. Does not change the worst case.
    pub spread_initial: bool,
    /// Remark 5(ii): store at every progress-tree node the *number* of
    /// descendant leaves known visited instead of a done bit. Processors
    /// propagate improved counts and descend toward the child with more
    /// remaining work. "Our worst case analysis does not benefit from
    /// these modifications" — the ablation experiment measures whether the
    /// average case does. Single-round task sets only.
    pub counting: bool,
}

/// Shared-memory layout of algorithm X, exposed so adversaries and tests
/// can inspect the algorithm's data structures.
#[derive(Clone, Copy, Debug)]
pub struct XLayout {
    /// Current round number (1 cell; fixed at 1 for plain Write-All).
    pub round: Region,
    /// The progress heap `d`; cell `v` (1-indexed, cell 0 unused) holds the
    /// round number in which node `v`'s subtree finished (0 = never).
    pub d: Region,
    /// The location array `w`; `w[PID]` is the heap position of processor
    /// `PID`, 0 once it has exited the tree.
    pub w: Region,
}

/// Algorithm X over an arbitrary task set.
///
/// ```
/// use rfsp_core::{AlgoX, WriteAllTasks, XOptions};
/// use rfsp_pram::{CycleBudget, Machine, LayoutBuilder, NoFailures};
///
/// # fn main() -> Result<(), rfsp_pram::PramError> {
/// let mut layout = LayoutBuilder::new();
/// let tasks = WriteAllTasks::new(&mut layout, 64);
/// let algo = AlgoX::new(&mut layout, tasks, 8, XOptions::default());
/// let mut machine = Machine::new(&algo, 8, CycleBudget::PAPER)?;
/// let report = machine.run(&mut NoFailures)?;
/// assert!(tasks.all_written(machine.memory()));
/// assert!(report.stats.completed_work() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AlgoX<T> {
    tasks: T,
    tree: HeapTree,
    p: usize,
    rounds: Word,
    layout: XLayout,
    opts: XOptions,
}

impl<T: TaskSet> AlgoX<T> {
    /// Build algorithm X for `p` processors over `tasks`, allocating its
    /// bookkeeping (round cell, progress heap, location array) from
    /// `layout`. The task set's own regions must already be allocated from
    /// the same layout.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or `p == 0`.
    pub fn new(layout: &mut LayoutBuilder, tasks: T, p: usize, opts: XOptions) -> Self {
        let round = layout.alloc(1);
        Self::new_with_round(layout, tasks, p, opts, round)
    }

    /// Like [`AlgoX::new`], but the round cell is provided by the caller —
    /// used by [`Interleaved`](crate::interleaved::Interleaved) so both
    /// halves advance one shared round counter (multi-round task state is
    /// shared, so the halves must agree on the current round).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty, `p == 0`, or `round` is not exactly one
    /// cell.
    pub fn new_with_round(
        layout: &mut LayoutBuilder,
        tasks: T,
        p: usize,
        opts: XOptions,
        round: Region,
    ) -> Self {
        assert!(!tasks.is_empty(), "algorithm X needs at least one task");
        assert!(p > 0, "algorithm X needs at least one processor");
        assert_eq!(round.len(), 1, "the round region is a single cell");
        let tree = HeapTree::with_leaves(tasks.len());
        let rounds = tasks.rounds();
        assert!(
            !(opts.counting && rounds > 1),
            "the counting-tree variant (Remark 5 ii) is single-round only"
        );
        let x_layout = XLayout { round, d: layout.alloc(tree.heap_size()), w: layout.alloc(p) };
        AlgoX { tasks, tree, p, rounds, layout: x_layout, opts }
    }

    /// The algorithm's shared-memory layout.
    pub fn layout(&self) -> &XLayout {
        &self.layout
    }

    /// The progress-tree shape.
    pub fn tree(&self) -> HeapTree {
        self.tree
    }

    /// The task set.
    pub fn tasks(&self) -> &T {
        &self.tasks
    }

    /// The reads/writes budget one cycle of this instance needs. Plain
    /// Write-All fits the paper's 4-read/2-write cycle; multi-round task
    /// sets add one read for the round cell plus the task's own accesses.
    pub fn required_budget(&self) -> rfsp_pram::CycleBudget {
        let pre = if self.multi_round() { 1 } else { 0 };
        rfsp_pram::CycleBudget {
            reads: pre + 2 + self.tasks.max_reads().max(2),
            writes: self.tasks.max_writes().max(1),
        }
    }

    /// Initial heap position of processor `pid`.
    fn initial_position(&self, pid: Pid) -> usize {
        let n = self.tree.leaves();
        let leaf =
            if self.opts.spread_initial { (pid.0 * n / self.p).min(n - 1) } else { pid.0 % n };
        self.tree.leaf_node(leaf)
    }

    fn multi_round(&self) -> bool {
        self.rounds > 1
    }

    /// Number of leading values holding the round number (0 or 1).
    fn pre(&self) -> usize {
        usize::from(self.multi_round())
    }

    /// Round number from the cycle's values.
    fn round_of(&self, values: &[Word]) -> Word {
        if self.multi_round() {
            values[0]
        } else {
            1
        }
    }

    /// Whether heap value `d_val` marks node `v` finished for round `r`.
    fn node_done(&self, v: usize, d_val: Word, r: Word) -> bool {
        if self.opts.counting {
            d_val >= self.tree.subtree_leaves(v) as Word
        } else {
            d_val == r
        }
    }

    /// The heap value that marks node `v` finished for round `r`.
    fn done_value(&self, v: usize, r: Word) -> Word {
        if self.opts.counting {
            self.tree.subtree_leaves(v) as Word
        } else {
            r
        }
    }
}

impl<T: TaskSet + Sync> Program for AlgoX<T> {
    /// Everything algorithm X knows lives in shared memory (Figure 5): a
    /// restart costs one cycle to re-read `w[PID]` and nothing else.
    type Private = ();

    fn shared_size(&self) -> usize {
        // The caller's layout already accounts for all regions (tasks plus
        // ours); report one past the highest address we own. When X is
        // embedded in a larger program (e.g. interleaved with V), the outer
        // program reports the full size instead.
        self.layout.w.base() + self.layout.w.len()
    }

    fn init_memory(&self, mem: &mut SharedMemory) {
        mem.poke(self.layout.round.at(0), 1);
        for i in 0..self.p {
            mem.poke(self.layout.w.at(i), self.initial_position(Pid(i)) as Word);
        }
    }

    fn on_start(&self, _pid: Pid) {}

    fn plan(&self, pid: Pid, _state: &(), values: &[Word], reads: &mut ReadSet) {
        let pre = self.pre();
        match values.len() {
            // First batch: the round cell (if staged) and our position.
            0 => {
                if self.multi_round() {
                    reads.push(self.layout.round.at(0));
                }
                reads.push(self.layout.w.at(pid.0));
            }
            // Second: the doneness of the node we are at.
            l if l == pre + 1 => {
                let r = self.round_of(values);
                if r > self.rounds {
                    return; // all rounds finished: halting cycle
                }
                let whr = values[pre] as usize;
                if whr == 0 {
                    return; // exited the tree: halting cycle
                }
                reads.push(self.layout.d.at(whr));
            }
            // Third: children (interior) or first task reads (leaf).
            l if l == pre + 2 => {
                let r = self.round_of(values);
                let whr = values[pre] as usize;
                let d_whr = values[pre + 1];
                if self.node_done(whr, d_whr, r) {
                    return; // node done: we only write (move up / advance)
                }
                if !self.tree.is_leaf(whr) {
                    reads.push(self.layout.d.at(self.tree.left(whr)));
                    reads.push(self.layout.d.at(self.tree.right(whr)));
                } else {
                    let i = self.tree.leaf_index(whr);
                    if i < self.tasks.len() {
                        self.tasks.plan(r, i, &values[pre + 2..], reads);
                    }
                    // A padded leaf needs no further reads.
                }
            }
            // Later batches: only an undone leaf's task can chain reads.
            _ => {
                let r = self.round_of(values);
                let whr = values[pre] as usize;
                if !self.tree.is_leaf(whr) {
                    return;
                }
                let i = self.tree.leaf_index(whr);
                if i < self.tasks.len() {
                    self.tasks.plan(r, i, &values[pre + 2..], reads);
                }
            }
        }
    }

    fn execute(&self, pid: Pid, _state: &mut (), values: &[Word], writes: &mut WriteSet) -> Step {
        let pre = self.pre();
        let r = self.round_of(values);
        if r > self.rounds {
            return Step::Halt;
        }
        let whr = values[pre] as usize;
        if whr == 0 {
            return Step::Halt;
        }
        let d_whr = values[pre + 1];
        let n = self.tree.leaves();

        if self.node_done(whr, d_whr, r) {
            // Current subtree is done: move up one level (Figure 2 line
            // 04); at the root, advance the round or exit.
            if whr == self.tree.root() {
                if self.multi_round() {
                    // Advance the shared round counter; past the last round
                    // the advance is the global completion signal and the
                    // processor retires on its next cycle (r > rounds).
                    writes.push(self.layout.round.at(0), r + 1);
                } else {
                    // Single round (Figure 5): exit the tree and halt.
                    writes.push(self.layout.w.at(pid.0), 0);
                    return Step::Halt;
                }
            } else {
                writes.push(self.layout.w.at(pid.0), self.tree.parent(whr) as Word);
            }
            return Step::Continue;
        }

        if !self.tree.is_leaf(whr) {
            // Interior node (Figure 2 lines 06-10).
            let left = self.tree.left(whr);
            let right = self.tree.right(whr);
            let (l_val, r_val) = (values[pre + 2], values[pre + 3]);
            let left_done = self.node_done(left, l_val, r);
            let right_done = self.node_done(right, r_val, r);
            // Remark 5(ii): before moving, publish an improved count so
            // processors arriving from above can steer toward the child
            // with more remaining work. (Counts are monotone; concurrent
            // writers this tick computed the same sum, so this stays
            // COMMON-legal.)
            if self.opts.counting && !(left_done && right_done) {
                let known = l_val + r_val;
                if known > d_whr {
                    writes.push(self.layout.d.at(whr), known);
                    return Step::Continue;
                }
            }
            let target = match (left_done, right_done) {
                (true, true) => {
                    writes.push(self.layout.d.at(whr), self.done_value(whr, r));
                    return Step::Continue;
                }
                (false, true) => left,
                (true, false) => right,
                (false, false) => {
                    if self.opts.counting {
                        // Descend toward the child with more remaining work.
                        let u_l = self.tree.subtree_leaves(left) as Word - l_val;
                        let u_r = self.tree.subtree_leaves(right) as Word - r_val;
                        match u_l.cmp(&u_r) {
                            std::cmp::Ordering::Greater => left,
                            std::cmp::Ordering::Less => right,
                            std::cmp::Ordering::Equal => {
                                let depth = self.tree.depth(whr);
                                let bit = Pid(pid.0 % n).bit_msb_first(depth, self.tree.height());
                                if bit == 0 {
                                    left
                                } else {
                                    right
                                }
                            }
                        }
                    } else {
                        // Both subtrees unfinished: descend by the PID bit
                        // at this depth (bit 0 = most significant of log N
                        // bits).
                        let depth = self.tree.depth(whr);
                        let bit = Pid(pid.0 % n).bit_msb_first(depth, self.tree.height());
                        if bit == 0 {
                            self.tree.left(whr)
                        } else {
                            self.tree.right(whr)
                        }
                    }
                }
            };
            writes.push(self.layout.w.at(pid.0), target as Word);
            return Step::Continue;
        }

        // Leaf (Figure 2 line 05): perform the work, or record that it is
        // done.
        let i = self.tree.leaf_index(whr);
        if i >= self.tasks.len() {
            // Padded leaf: instantly done.
            writes.push(self.layout.d.at(whr), self.done_value(whr, r));
            return Step::Continue;
        }
        let before = writes.len();
        let observed_done = self.tasks.run(r, i, &values[pre + 2..], writes);
        if observed_done {
            debug_assert_eq!(writes.len(), before, "a task observed done must not emit writes");
            writes.push(self.layout.d.at(whr), self.done_value(whr, r));
        }
        Step::Continue
    }

    // Keeps the default `completion_hint` (untracked): the predicate is a
    // disjunction over two cells, not a per-cell conjunction, and it is
    // already O(1) — incremental tracking would gain nothing.
    fn is_complete(&self, mem: &SharedMemory) -> bool {
        let root = self.tree.root();
        self.node_done(root, mem.peek(self.layout.d.at(root)), self.rounds)
            || (self.multi_round() && mem.peek(self.layout.round.at(0)) > self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::WriteAllTasks;
    use rfsp_pram::{
        Adversary, CycleBudget, Decisions, FailPoint, Machine, MachineView, NoFailures, RunOutcome,
    };

    fn build(n: usize, p: usize) -> (LayoutBuilder, WriteAllTasks, AlgoX<WriteAllTasks>) {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        (layout, tasks, algo)
    }

    #[test]
    fn solves_write_all_without_failures() {
        for (n, p) in [(1, 1), (8, 8), (8, 3), (37, 5), (64, 64), (100, 1)] {
            let (_l, tasks, algo) = build(n, p);
            let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
            let report = m.run(&mut NoFailures).unwrap();
            assert_eq!(report.outcome, RunOutcome::Completed, "n={n} p={p}");
            assert!(tasks.all_written(m.memory()), "n={n} p={p}");
        }
    }

    #[test]
    fn fits_the_paper_cycle_budget() {
        let (_l, _t, algo) = build(64, 16);
        let b = algo.required_budget();
        assert!(b.reads <= CycleBudget::PAPER.reads);
        assert!(b.writes <= CycleBudget::PAPER.writes);
    }

    #[test]
    fn single_processor_visits_all_leaves() {
        let (_l, tasks, algo) = build(16, 1);
        let mut m = Machine::new(&algo, 1, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert!(tasks.all_written(m.memory()));
        // One processor must do >= N leaf writes + N observations + tree
        // moves: work is Θ(N log N)-ish but definitely >= 3N - o(N).
        assert!(report.stats.completed_cycles >= 3 * 16 - 8);
    }

    #[test]
    fn spread_initial_option_still_completes() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 32);
        let algo = AlgoX::new(
            &mut layout,
            tasks,
            4,
            XOptions { spread_initial: true, ..Default::default() },
        );
        let mut m = Machine::new(&algo, 4, CycleBudget::PAPER).unwrap();
        m.run(&mut NoFailures).unwrap();
        assert!(tasks.all_written(m.memory()));
        // Evenly spaced: processor 1 of 4 starts at leaf 8 of 32.
        assert_eq!(algo.initial_position(Pid(1)), algo.tree().leaf_node(8));
    }

    /// The worked example of Figure 3 (Example 4.1): `N = P = 8`, a
    /// specific mid-computation state; one more cycle moves each active
    /// processor exactly as the paper describes.
    #[test]
    fn figure_3_example() {
        let (_l, _tasks, algo) = build(8, 8);
        let mut m = Machine::new(&algo, 8, CycleBudget::PAPER).unwrap();
        let d = algo.layout().d;
        let w = algo.layout().w;
        let tree = algo.tree();

        // State: the subtree over leaves {8,9} is finished (nodes 8, 9, 4
        // done), leaf 12 is done, leaves 14 and 15 are done but not yet
        // aggregated into node 7.
        {
            let mem = m.memory_mut();
            for node in [4usize, 8, 9, 12, 14, 15] {
                mem.poke(d.at(node), 1);
            }
            // x values consistent with the done leaves.
            for leaf in [0usize, 1, 4, 6, 7] {
                mem.poke(leaf, 1); // x region starts at address 0
            }
            // Active processors: 0 and 1 at node 5 (both subtrees
            // unfinished), 4 at node 6 (left child done, right not),
            // 6 and 7 at the done leaves 14 and 15.
            mem.poke(w.at(0), 5);
            mem.poke(w.at(1), 5);
            mem.poke(w.at(4), 6);
            mem.poke(w.at(6), 14);
            mem.poke(w.at(7), 15);
            // Processors 2, 3 and 5 have been failed by the adversary; park
            // their positions outside the tree so they halt if revived.
            mem.poke(w.at(2), 0);
            mem.poke(w.at(3), 0);
            mem.poke(w.at(5), 0);
        }

        m.tick(&mut NoFailures).unwrap();

        let mem = m.memory();
        // "processors 0 and 1 will descend to the left and right
        // respectively" — PID bit 2 of 0 = 0 (left), of 1 = 1 (right).
        assert_eq!(mem.peek(w.at(0)), tree.left(5) as Word); // leaf 10
        assert_eq!(mem.peek(w.at(1)), tree.right(5) as Word); // leaf 11
                                                              // "processor 4 will move to the unvisited leaf to its right"
        assert_eq!(mem.peek(w.at(4)), tree.right(6) as Word); // leaf 13
                                                              // "processors 6 and 7 will move up"
        assert_eq!(mem.peek(w.at(6)), 7);
        assert_eq!(mem.peek(w.at(7)), 7);
    }

    /// Restart resilience: an adversary that fails and restarts a random
    /// half of the processors every few cycles cannot prevent termination.
    struct Churn {
        k: u64,
    }
    impl Adversary for Churn {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            if view.cycle.is_multiple_of(3) {
                let active: Vec<_> = view.active_pids().collect();
                for (idx, pid) in active.iter().enumerate() {
                    // Keep at least one processor completing.
                    if idx + 1 < active.len()
                        && (pid.0 as u64 + self.k + view.cycle).is_multiple_of(2)
                    {
                        d.fail(*pid, FailPoint::BeforeWrites);
                        d.restart(*pid);
                    }
                }
            }
            d
        }
    }

    #[test]
    fn survives_fail_restart_churn() {
        let (_l, tasks, algo) = build(64, 16);
        let mut m = Machine::new(&algo, 16, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut Churn { k: 7 }).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0, "the adversary did fail processors");
        assert_eq!(report.stats.failures, report.stats.restarts);
    }

    /// Work only grows when processors overlap (Lemma 4.5 flavor): P = 2N
    /// processors behave like N at at most twice the cost.
    #[test]
    fn modular_pids_handle_p_equal_n_times_2() {
        let (_l, tasks, algo) = build(16, 32);
        let mut m = Machine::new(&algo, 32, CycleBudget::PAPER).unwrap();
        m.run(&mut NoFailures).unwrap();
        assert!(tasks.all_written(m.memory()));
    }

    #[test]
    fn counting_variant_solves_write_all() {
        for (n, p) in [(8usize, 8usize), (37, 5), (64, 16), (1, 1)] {
            let mut layout = LayoutBuilder::new();
            let tasks = WriteAllTasks::new(&mut layout, n);
            let algo = AlgoX::new(
                &mut layout,
                tasks,
                p,
                XOptions { counting: true, ..Default::default() },
            );
            let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
            m.run(&mut NoFailures).unwrap();
            assert!(tasks.all_written(m.memory()), "n={n} p={p}");
        }
    }

    #[test]
    fn counting_variant_survives_churn() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 64);
        let algo =
            AlgoX::new(&mut layout, tasks, 16, XOptions { counting: true, ..Default::default() });
        let mut m = Machine::new(&algo, 16, CycleBudget::PAPER).unwrap();
        m.run(&mut Churn { k: 3 }).unwrap();
        assert!(tasks.all_written(m.memory()));
    }

    #[test]
    #[should_panic(expected = "single-round")]
    fn counting_rejects_multi_round() {
        struct TwoRounds(WriteAllTasks);
        impl crate::tasks::TaskSet for TwoRounds {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn rounds(&self) -> Word {
                2
            }
            fn plan(&self, round: Word, i: usize, values: &[Word], reads: &mut rfsp_pram::ReadSet) {
                self.0.plan(round, i, values, reads)
            }
            fn run(
                &self,
                round: Word,
                i: usize,
                values: &[Word],
                writes: &mut rfsp_pram::WriteSet,
            ) -> bool {
                self.0.run(round, i, values, writes)
            }
            fn is_done(&self, mem: &SharedMemory, round: Word, i: usize) -> bool {
                self.0.is_done(mem, round, i)
            }
            fn max_reads(&self) -> usize {
                1
            }
            fn max_writes(&self) -> usize {
                1
            }
        }
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 8);
        let _ = AlgoX::new(
            &mut layout,
            TwoRounds(tasks),
            2,
            XOptions { counting: true, ..Default::default() },
        );
    }

    #[test]
    fn is_complete_reflects_root_round() {
        let (_l, _tasks, algo) = build(4, 2);
        let mut mem = SharedMemory::new(algo.shared_size());
        algo.init_memory(&mut mem);
        assert!(!algo.is_complete(&mem));
        mem.poke(algo.layout().d.at(1), 1);
        assert!(algo.is_complete(&mem));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn rejects_empty_task_set() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 0);
        let _ = AlgoX::new(&mut layout, tasks, 1, XOptions::default());
    }
}
