//! The generalized work unit: task sets.
//!
//! The Write-All array assignment (`x[i] := 1`) is the paper's canonical
//! unit of work, but its algorithms carry over verbatim to any array of
//! idempotent single-cycle tasks — that generalization is exactly how §4.3
//! turns a Write-All solution into a simulator for arbitrary PRAM steps
//! ("replacing the trivial array assignments ... with the appropriate
//! components of the PRAM steps"). [`TaskSet`] captures the contract;
//! [`WriteAllTasks`] is the canonical instance.

use rfsp_pram::{CompletionHint, LayoutBuilder, ReadSet, Region, SharedMemory, Word, WriteSet};

/// An array of idempotent tasks, each executable within one update cycle.
///
/// # Contract
///
/// * **One committed attempt completes the task**: if a processor's
///   [`run`](TaskSet::run) writes all commit, task `i` is complete for that
///   round, whether or not the processor survives afterwards.
/// * **Idempotence**: re-planning and re-running a task any number of times
///   (including concurrently by several processors in the same cycle, which
///   under COMMON CRCW means all writers must produce identical values) is
///   harmless.
/// * **Observability**: once complete, a later attempt's `run` returns
///   `true` *without emitting writes*, so tree-traversal algorithms can
///   convert the observation into progress-tree updates.
/// * **Rounds**: a task set may stage several *rounds* of `len()` tasks
///   (used by the PRAM-step simulation); rounds are numbered from 1 and a
///   round's tasks only become runnable when the algorithm drives it.
pub trait TaskSet {
    /// Number of tasks per round (the paper's `N`).
    fn len(&self) -> usize;

    /// Whether the set has zero tasks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rounds (1 for plain Write-All).
    fn rounds(&self) -> Word {
        1
    }

    /// Incremental read planning for one attempt of task `i` in `round`,
    /// following the same chained-plan protocol as
    /// [`Program::plan`](rfsp_pram::Program::plan): `values` holds the
    /// task's reads so far; push nothing to finish.
    fn plan(&self, round: Word, i: usize, values: &[Word], reads: &mut ReadSet);

    /// One attempt: consume the planned values, emit writes. Returns `true`
    /// iff the task is *observed already complete* (in which case no writes
    /// may be emitted).
    fn run(&self, round: Word, i: usize, values: &[Word], writes: &mut WriteSet) -> bool;

    /// Uncharged doneness check for harnesses and tests.
    fn is_done(&self, mem: &SharedMemory, round: Word, i: usize) -> bool;

    /// Worst-case reads per attempt (budget documentation).
    fn max_reads(&self) -> usize;

    /// Worst-case writes per attempt (budget documentation).
    fn max_writes(&self) -> usize;
}

impl<T: TaskSet + ?Sized> TaskSet for &T {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn rounds(&self) -> Word {
        (**self).rounds()
    }
    fn plan(&self, round: Word, i: usize, values: &[Word], reads: &mut ReadSet) {
        (**self).plan(round, i, values, reads)
    }
    fn run(&self, round: Word, i: usize, values: &[Word], writes: &mut WriteSet) -> bool {
        (**self).run(round, i, values, writes)
    }
    fn is_done(&self, mem: &SharedMemory, round: Word, i: usize) -> bool {
        (**self).is_done(mem, round, i)
    }
    fn max_reads(&self) -> usize {
        (**self).max_reads()
    }
    fn max_writes(&self) -> usize {
        (**self).max_writes()
    }
}

/// The Write-All problem itself: task `i` writes 1 into `x[i]`.
///
/// ```
/// use rfsp_pram::LayoutBuilder;
/// use rfsp_core::tasks::{TaskSet, WriteAllTasks};
/// let mut layout = LayoutBuilder::new();
/// let tasks = WriteAllTasks::new(&mut layout, 100);
/// assert_eq!(tasks.len(), 100);
/// assert_eq!(tasks.x().len(), 100);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WriteAllTasks {
    x: Region,
}

impl WriteAllTasks {
    /// Allocate the Write-All array `x[0..n)` from `layout`.
    pub fn new(layout: &mut LayoutBuilder, n: usize) -> Self {
        WriteAllTasks { x: layout.alloc(n) }
    }

    /// The array region (for adversaries and verification).
    pub fn x(&self) -> Region {
        self.x
    }

    /// Uncharged check that the whole array is 1 (the problem's
    /// postcondition).
    pub fn all_written(&self, mem: &SharedMemory) -> bool {
        (0..self.x.len()).all(|i| mem.peek(self.x.at(i)) == 1)
    }

    /// Number of cells still zero.
    pub fn unvisited(&self, mem: &SharedMemory) -> usize {
        (0..self.x.len()).filter(|&i| mem.peek(self.x.at(i)) == 0).count()
    }

    /// Per-cell decomposition of [`WriteAllTasks::all_written`] for the
    /// machine's incremental completion tracker
    /// ([`Program::completion_hint`](rfsp_pram::Program::completion_hint)):
    /// array cells are satisfied once they hold 1, every other cell is
    /// untracked. Programs whose completion predicate *is* `all_written`
    /// delegate here.
    pub fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint {
        if self.x.contains(addr) {
            if value == 1 {
                CompletionHint::Satisfied
            } else {
                CompletionHint::Outstanding
            }
        } else {
            CompletionHint::Untracked
        }
    }

    /// Branch-free lane classifier for the machine's batched completion
    /// tracker ([`Program::completion_masks`](rfsp_pram::Program::completion_masks)):
    /// the lane's overlap with the contiguous array region is computed once
    /// (instead of a per-cell `contains`), and within the overlap each
    /// cell's status is a pure bit select on `value == 1` — a tight loop of
    /// compares and shifts the compiler autovectorizes. Agrees cell-wise
    /// with [`WriteAllTasks::completion_hint`] by construction.
    pub fn completion_masks(&self, base: usize, values: &[Word]) -> (u64, u64) {
        let (x_lo, x_hi) = (self.x.base(), self.x.base() + self.x.len());
        let lane_end = base + values.len();
        let lo = x_lo.clamp(base, lane_end) - base;
        let hi = x_hi.clamp(base, lane_end) - base;
        // Tracked cells = the lane's overlap with x, as one contiguous run
        // of set bits.
        let tracked = ones(hi) & !ones(lo);
        let mut outstanding = 0u64;
        for (j, &v) in values[lo..hi].iter().enumerate() {
            outstanding |= u64::from(v != 1) << (lo + j);
        }
        (outstanding & tracked, tracked)
    }
}

/// The low `k` bits set (`k <= 64`), without the `1 << 64` overflow.
#[inline(always)]
fn ones(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

impl TaskSet for WriteAllTasks {
    fn len(&self) -> usize {
        self.x.len()
    }

    fn plan(&self, _round: Word, i: usize, values: &[Word], reads: &mut ReadSet) {
        if values.is_empty() {
            reads.push(self.x.at(i));
        }
    }

    fn run(&self, _round: Word, i: usize, values: &[Word], writes: &mut WriteSet) -> bool {
        if values[0] == 1 {
            true
        } else {
            writes.push(self.x.at(i), 1);
            false
        }
    }

    fn is_done(&self, mem: &SharedMemory, _round: Word, i: usize) -> bool {
        mem.peek(self.x.at(i)) == 1
    }

    fn max_reads(&self) -> usize {
        1
    }

    fn max_writes(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_all_task_protocol() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 4);
        let mut mem = SharedMemory::new(layout.total());

        // Attempt on an unwritten cell: one read planned, one write emitted,
        // not yet observed done.
        let mut reads = ReadSet::default();
        tasks.plan(1, 2, &[], &mut reads);
        assert_eq!(reads.addrs(), &[tasks.x().at(2)]);
        let mut more = ReadSet::default();
        tasks.plan(1, 2, &[0], &mut more);
        assert!(more.is_empty(), "plan chain terminates after one read");

        let mut writes = WriteSet::default();
        assert!(!tasks.run(1, 2, &[0], &mut writes));
        assert_eq!(writes.writes(), &[(tasks.x().at(2), 1)]);

        // After the write commits, the next attempt observes completion and
        // emits nothing.
        mem.poke(tasks.x().at(2), 1);
        let mut writes = WriteSet::default();
        assert!(tasks.run(1, 2, &[1], &mut writes));
        assert!(writes.is_empty());
        assert!(tasks.is_done(&mem, 1, 2));
        assert!(!tasks.is_done(&mem, 1, 0));
        assert_eq!(tasks.unvisited(&mem), 3);
        assert!(!tasks.all_written(&mem));
    }

    /// The branch-free lane classifier agrees with the scalar hint on every
    /// lane position, including lanes that only partially overlap `x`,
    /// miss it entirely, or cover its edges.
    #[test]
    fn completion_masks_agree_with_scalar_hints() {
        let mut layout = LayoutBuilder::new();
        let _pad = layout.alloc(5); // put x away from address 0
        let tasks = WriteAllTasks::new(&mut layout, 70);
        let total = layout.total() + 8; // extend past x's end too
        let values: Vec<Word> = (0..total as Word).map(|v| v % 2).collect();
        for lane_len in [1, 3, 64] {
            for base in 0..=(total - lane_len) {
                let lane = &values[base..base + lane_len];
                let got = tasks.completion_masks(base, lane);
                let expected = rfsp_pram::fold_completion_masks(base, lane, |a, v| {
                    tasks.completion_hint(a, v)
                });
                assert_eq!(got, expected, "lane base {base} len {lane_len}");
            }
        }
    }

    #[test]
    fn budgets_are_declared() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 1);
        assert_eq!(tasks.max_reads(), 1);
        assert_eq!(tasks.max_writes(), 1);
        assert_eq!(tasks.rounds(), 1);
        assert!(!tasks.is_empty());
    }
}
