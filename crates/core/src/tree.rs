//! Heap-coded full binary progress trees.
//!
//! Both of the paper's algorithms organize their bookkeeping around a full
//! binary tree with `L` leaves "implicitly coded as a heap and stored in a
//! linear array" (§4.1): node `v ∈ [1, 2L)` has children `2v` and `2v+1`,
//! leaves occupy `[L, 2L)`, and the `i`-th leaf is node `L + i`.
//! [`HeapTree`] centralizes this arithmetic.

/// Shape of a full binary tree with a power-of-two number of leaves.
///
/// ```
/// use rfsp_core::tree::HeapTree;
/// let t = HeapTree::with_leaves(5); // pads to 8 leaves
/// assert_eq!(t.leaves(), 8);
/// assert_eq!(t.height(), 3);
/// assert_eq!(t.leaf_node(0), 8);
/// assert_eq!(t.parent(9), 4);
/// assert!(t.is_leaf(15));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HeapTree {
    leaves: usize,
}

impl HeapTree {
    /// Tree with at least `min_leaves` leaves, padded up to a power of two
    /// (and at least 2, so the root is always an interior node).
    ///
    /// # Panics
    ///
    /// Panics if `min_leaves == 0`.
    pub fn with_leaves(min_leaves: usize) -> Self {
        assert!(min_leaves > 0, "a tree needs at least one leaf");
        HeapTree { leaves: min_leaves.next_power_of_two().max(2) }
    }

    /// Number of leaves `L` (a power of two).
    #[inline]
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Tree height `log₂ L` (depth of the leaves; the root has depth 0).
    #[inline]
    pub fn height(&self) -> u32 {
        self.leaves.trailing_zeros()
    }

    /// Number of heap cells needed: `2L` (cell 0 is unused, matching the
    /// paper's 1-indexed `d[1..2N-1]`).
    #[inline]
    pub fn heap_size(&self) -> usize {
        2 * self.leaves
    }

    /// Root node index.
    #[inline]
    pub fn root(&self) -> usize {
        1
    }

    /// Heap index of the `i`-th leaf.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.leaves()`.
    #[inline]
    pub fn leaf_node(&self, i: usize) -> usize {
        assert!(i < self.leaves, "leaf index {i} out of range");
        self.leaves + i
    }

    /// Leaf ordinal of heap node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a leaf.
    #[inline]
    pub fn leaf_index(&self, v: usize) -> usize {
        assert!(self.is_leaf(v), "node {v} is not a leaf");
        v - self.leaves
    }

    /// Whether heap node `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: usize) -> bool {
        v >= self.leaves && v < 2 * self.leaves
    }

    /// Whether `v` is a valid node index.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        v >= 1 && v < 2 * self.leaves
    }

    /// Parent of `v` (`v div 2`; the paper's move-up step maps the root
    /// to 0, the "exited" sentinel).
    #[inline]
    pub fn parent(&self, v: usize) -> usize {
        v / 2
    }

    /// Left child.
    #[inline]
    pub fn left(&self, v: usize) -> usize {
        2 * v
    }

    /// Right child.
    #[inline]
    pub fn right(&self, v: usize) -> usize {
        2 * v + 1
    }

    /// Depth of node `v` (root = 0, leaves = `height()`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid node.
    #[inline]
    pub fn depth(&self, v: usize) -> u32 {
        assert!(self.contains(v), "node {v} out of range");
        v.ilog2()
    }

    /// Number of leaves under node `v`.
    #[inline]
    pub fn subtree_leaves(&self, v: usize) -> usize {
        self.leaves >> self.depth(v)
    }

    /// First leaf ordinal under node `v`.
    #[inline]
    pub fn first_leaf_under(&self, v: usize) -> usize {
        let span = self.subtree_leaves(v);
        let leftmost = v << (self.height() - self.depth(v));
        debug_assert!(self.is_leaf(leftmost));
        let _ = span;
        leftmost - self.leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_and_shape() {
        let t = HeapTree::with_leaves(8);
        assert_eq!(t.leaves(), 8);
        assert_eq!(t.height(), 3);
        assert_eq!(t.heap_size(), 16);
        assert_eq!(t.root(), 1);
        let t = HeapTree::with_leaves(9);
        assert_eq!(t.leaves(), 16);
        let t = HeapTree::with_leaves(1);
        assert_eq!(t.leaves(), 2, "padded so the root is interior");
    }

    #[test]
    fn navigation() {
        let t = HeapTree::with_leaves(8);
        assert_eq!(t.left(1), 2);
        assert_eq!(t.right(1), 3);
        assert_eq!(t.parent(3), 1);
        assert_eq!(t.parent(1), 0, "root's parent is the exit sentinel");
        assert_eq!(t.leaf_node(3), 11);
        assert_eq!(t.leaf_index(11), 3);
        assert!(t.is_leaf(8) && t.is_leaf(15));
        assert!(!t.is_leaf(7) && !t.is_leaf(16));
    }

    #[test]
    fn depth_and_subtrees() {
        let t = HeapTree::with_leaves(8);
        assert_eq!(t.depth(1), 0);
        assert_eq!(t.depth(5), 2);
        assert_eq!(t.depth(15), 3);
        assert_eq!(t.subtree_leaves(1), 8);
        assert_eq!(t.subtree_leaves(2), 4);
        assert_eq!(t.subtree_leaves(12), 1);
        assert_eq!(t.first_leaf_under(3), 4);
        assert_eq!(t.first_leaf_under(5), 2);
        assert_eq!(t.first_leaf_under(1), 0);
        assert_eq!(t.first_leaf_under(14), 6);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn zero_leaves_rejected() {
        HeapTree::with_leaves(0);
    }
}
