//! Algorithm X on real threads: a lock-free asynchronous executor.
//!
//! The synchronous machine of `rfsp-pram` measures the paper's complexity
//! claims exactly; this module demonstrates the *practical* content of
//! algorithm X's design — its traversal is purely local, all coordination
//! state lives in shared memory, and every shared write is a monotone
//! single word — by running it on genuinely asynchronous OS threads over
//! `AtomicU64` cells, with no locks and no barriers.
//!
//! Why this is sound: `x[i]` and the progress heap `d[v]` only ever move
//! `0 → 1`, and `d[v] := 1` is written only after its precondition (both
//! children done, or `x` observed 1) was *read*. With release stores and
//! acquire loads, `d[root] == 1` therefore happens-after every `x[i] := 1`
//! — the Write-All postcondition survives arbitrary interleavings. Stale
//! reads cost only extra work, mirroring the asynchronous setting of
//! [MSP 90] that §5 discusses.
//!
//! Fault injection: each worker carries a private RNG and, with a
//! configurable probability per loop iteration, "fails" — it abandons its
//! pending write, forgets everything (algorithm X keeps no private state,
//! so this is literal), backs off, and resumes from its shared `w[PID]`
//! cell exactly as a restarted processor would.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tree::HeapTree;

/// Configuration for [`run_lockfree_x`].
#[derive(Clone, Copy, Debug)]
pub struct LockfreeOptions {
    /// Per-iteration probability that a worker fails and restarts.
    pub fault_rate: f64,
    /// RNG seed for fault injection.
    pub seed: u64,
}

impl Default for LockfreeOptions {
    fn default() -> Self {
        LockfreeOptions { fault_rate: 0.0, seed: 0 }
    }
}

/// Outcome of an asynchronous run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockfreeReport {
    /// Loop iterations completed across all workers (the asynchronous
    /// analogue of completed update cycles).
    pub completed_cycles: u64,
    /// Injected failure/restart events.
    pub failures: u64,
}

/// Exponential backoff for contended retry loops (replaces
/// `crossbeam::utils::Backoff`, which the offline build cannot fetch):
/// spin briefly, then yield to the scheduler.
struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;

    fn new() -> Self {
        Backoff { step: std::cell::Cell::new(0) }
    }

    /// Back off, spinning for short waits and yielding once the retry loop
    /// has lost the race a few times.
    fn snooze(&self) {
        let step = self.step.get();
        if step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                std::hint::spin_loop();
            }
            self.step.set(step + 1);
        } else {
            std::thread::yield_now();
        }
    }
}

struct SharedState {
    x: Vec<AtomicU64>,
    d: Vec<AtomicU64>,
    w: Vec<AtomicU64>,
    tree: HeapTree,
    n: usize,
}

impl SharedState {
    fn new(n: usize, p: usize) -> Self {
        let tree = HeapTree::with_leaves(n);
        let x = (0..n).map(|_| AtomicU64::new(0)).collect();
        let d = (0..tree.heap_size()).map(|_| AtomicU64::new(0)).collect();
        let w = (0..p).map(|i| AtomicU64::new(tree.leaf_node(i % tree.leaves()) as u64)).collect();
        SharedState { x, d, w, tree, n }
    }
}

/// One loop iteration of algorithm X for worker `pid`. Returns `true` when
/// the worker has exited the tree.
fn step(shared: &SharedState, pid: usize) -> bool {
    let tree = shared.tree;
    let whr = shared.w[pid].load(Ordering::Acquire) as usize;
    if whr == 0 {
        return true;
    }
    if shared.d[whr].load(Ordering::Acquire) == 1 {
        // Done: move up; at the root, exit.
        let next = if whr == tree.root() { 0 } else { tree.parent(whr) };
        shared.w[pid].store(next as u64, Ordering::Release);
        return next == 0;
    }
    if tree.is_leaf(whr) {
        let i = tree.leaf_index(whr);
        if i >= shared.n {
            // Padded leaf: instantly done.
            shared.d[whr].store(1, Ordering::Release);
        } else if shared.x[i].load(Ordering::Acquire) == 0 {
            shared.x[i].store(1, Ordering::Release);
        } else {
            shared.d[whr].store(1, Ordering::Release);
        }
        return false;
    }
    let left = tree.left(whr);
    let right = tree.right(whr);
    let l = shared.d[left].load(Ordering::Acquire) == 1;
    let r = shared.d[right].load(Ordering::Acquire) == 1;
    match (l, r) {
        (true, true) => shared.d[whr].store(1, Ordering::Release),
        (false, true) => shared.w[pid].store(left as u64, Ordering::Release),
        (true, false) => shared.w[pid].store(right as u64, Ordering::Release),
        (false, false) => {
            let depth = tree.depth(whr);
            let bit = rfsp_pram::Pid(pid % tree.leaves()).bit_msb_first(depth, tree.height());
            let next = if bit == 0 { left } else { right };
            shared.w[pid].store(next as u64, Ordering::Release);
        }
    }
    false
}

/// Solve Write-All of size `n` with `p` asynchronous worker threads
/// running algorithm X over atomics.
///
/// ```
/// use rfsp_core::{run_lockfree_x, LockfreeOptions};
///
/// let report = run_lockfree_x(1024, 4, LockfreeOptions { fault_rate: 0.01, seed: 7 });
/// assert!(report.completed_cycles >= 1024);
/// ```
///
/// Returns the aggregate work/fault counters; the Write-All postcondition
/// is asserted internally (every cell must be 1 when the root is marked).
///
/// # Panics
///
/// Panics if `n == 0` or `p == 0`, if `fault_rate` is not a probability,
/// or — indicating a bug — if the postcondition fails.
pub fn run_lockfree_x(n: usize, p: usize, opts: LockfreeOptions) -> LockfreeReport {
    assert!(n > 0, "need at least one task");
    assert!(p > 0, "need at least one worker");
    assert!((0.0..1.0).contains(&opts.fault_rate), "fault rate must be in [0, 1)");
    let shared = SharedState::new(n, p);
    let cycles = AtomicU64::new(0);
    let failures = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for pid in 0..p {
            let shared = &shared;
            let cycles = &cycles;
            let failures = &failures;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(
                    opts.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(pid as u64),
                );
                let mut local_cycles = 0u64;
                let mut local_failures = 0u64;
                let backoff = Backoff::new();
                loop {
                    if opts.fault_rate > 0.0 && rng.random_bool(opts.fault_rate) {
                        // Fail-and-restart: abandon the iteration (nothing
                        // was written yet this iteration), lose all local
                        // context (there is none), back off, resume from
                        // the shared w[pid].
                        local_failures += 2; // one failure + one restart
                        backoff.snooze();
                        continue;
                    }
                    let exited = step(shared, pid);
                    local_cycles += 1;
                    if exited {
                        break;
                    }
                }
                cycles.fetch_add(local_cycles, Ordering::Relaxed);
                failures.fetch_add(local_failures, Ordering::Relaxed);
            });
        }
    });

    // Postcondition: the root is marked and every cell is written.
    assert_eq!(shared.d[shared.tree.root()].load(Ordering::Acquire), 1);
    for (i, cell) in shared.x.iter().enumerate() {
        assert_eq!(cell.load(Ordering::Acquire), 1, "cell {i} left unwritten");
    }
    LockfreeReport {
        completed_cycles: cycles.load(Ordering::Relaxed),
        failures: failures.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_single_threaded() {
        let report = run_lockfree_x(64, 1, LockfreeOptions::default());
        assert!(report.completed_cycles >= 64);
        assert_eq!(report.failures, 0);
    }

    #[test]
    fn completes_with_many_threads() {
        for p in [2usize, 4, 8] {
            let report = run_lockfree_x(256, p, LockfreeOptions::default());
            assert!(report.completed_cycles >= 256, "p={p}");
        }
    }

    #[test]
    fn completes_under_fault_injection() {
        let report = run_lockfree_x(128, 4, LockfreeOptions { fault_rate: 0.05, seed: 42 });
        assert!(report.failures > 0, "faults should have been injected");
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [1usize, 3, 17, 100] {
            let report = run_lockfree_x(n, 3, LockfreeOptions { fault_rate: 0.01, seed: 7 });
            assert!(report.completed_cycles >= n as u64, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn rejects_bad_fault_rate() {
        run_lockfree_x(4, 1, LockfreeOptions { fault_rate: 1.5, seed: 0 });
    }
}
