//! Theorem 3.2: the optimal Write-All algorithm in the snapshot model.
//!
//! Under the (unrealistically strong) assumption that a processor "can read
//! and locally process the entire shared memory at unit cost", the paper's
//! oblivious load-balancing strategy solves Write-All with completed work
//! `Θ(N log N)` — matching the Theorem 3.1 lower bound, which holds *even
//! under the same assumption*. Every cycle, each processor:
//!
//! 1. snapshots the array and numbers the `U` still-unvisited cells by
//!    position;
//! 2. assigns itself to the `⌈PID·U/P⌉`-th of them (no coordination, no
//!    knowledge of which processors are alive — a purely *oblivious* rule);
//! 3. writes 1 there.
//!
//! Because the rule balances the at-most-`P` processors over the `U`
//! unvisited cells within ±1 of each other, the pigeonhole adversary of
//! Theorem 3.1 can kill at most the lightest half each cycle, and the
//! geometric-series argument in the proof of Theorem 3.2 bounds the work by
//! `O(N log N)`.

use rfsp_pram::snapshot::{SnapshotProgram, SnapshotView};
use rfsp_pram::{CompletionHint, Pid, SharedMemory, Step, Word, WriteSet};

use crate::tasks::WriteAllTasks;

/// The Theorem 3.2 oblivious balanced-allocation algorithm.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotBalance {
    tasks: WriteAllTasks,
    p: usize,
}

impl SnapshotBalance {
    /// Build the algorithm for `p` processors over a Write-All instance.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(tasks: WriteAllTasks, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        SnapshotBalance { tasks, p }
    }

    /// The underlying Write-All instance.
    pub fn tasks(&self) -> &WriteAllTasks {
        &self.tasks
    }
}

impl SnapshotProgram for SnapshotBalance {
    type Private = ();

    fn shared_size(&self) -> usize {
        self.tasks.x().base() + self.tasks.x().len()
    }

    fn on_start(&self, _pid: Pid) {}

    fn execute(
        &self,
        pid: Pid,
        _state: &mut (),
        view: &SnapshotView<'_>,
        writes: &mut WriteSet,
    ) -> Step {
        let x = self.tasks.x();
        // Snapshot: number the unvisited cells by position. The machine's
        // unvisited index answers this in O(1) per processor; on a bare
        // view the helper degrades to the old full scan.
        let u = view.unvisited_count_in(x);
        if u == 0 {
            return Step::Halt;
        }
        // Oblivious balanced assignment: processor PID takes the
        // ⌈PID·U/P⌉-th unvisited element (0-indexed: ⌊PID·U/P⌋, clamped).
        let k = (pid.0 * u / self.p).min(u - 1);
        let addr = view.nth_unvisited_in(x, k).expect("k < u unvisited cells");
        writes.push(addr, 1);
        Step::Continue
    }

    fn is_complete(&self, mem: &SharedMemory) -> bool {
        self.tasks.all_written(mem)
    }

    fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint {
        self.tasks.completion_hint(addr, value)
    }

    fn completion_masks(&self, base: usize, values: &[Word]) -> (u64, u64) {
        self.tasks.completion_masks(base, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_pram::snapshot::SnapshotMachine;
    use rfsp_pram::{LayoutBuilder, NoFailures, RunOutcome};

    #[test]
    fn completes_in_one_cycle_with_p_equal_n() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 32);
        let algo = SnapshotBalance::new(tasks, 32);
        let mut m = SnapshotMachine::new(&algo, 32, 1).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert!(tasks.all_written(m.memory()));
        // P = N and perfect balance: each processor hits a distinct cell.
        assert_eq!(report.stats.parallel_time, 1);
        assert_eq!(report.stats.completed_cycles, 32);
    }

    #[test]
    fn completes_with_few_processors() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 40);
        let algo = SnapshotBalance::new(tasks, 3);
        let mut m = SnapshotMachine::new(&algo, 3, 1).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert!(tasks.all_written(m.memory()));
        // 3 processors cover 40 cells: at least ⌈40/3⌉ cycles.
        assert!(report.stats.parallel_time >= 14);
    }

    #[test]
    fn balanced_assignment_is_spread() {
        // With U = P, processor i takes exactly the i-th unvisited cell.
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 4);
        let algo = SnapshotBalance::new(tasks, 4);
        let mem = SharedMemory::new(layout.total());
        let view = SnapshotView::bare(&mem);
        let mut seen = Vec::new();
        for pid in 0..4 {
            let mut w = WriteSet::default();
            let step = algo.execute(Pid(pid), &mut (), &view, &mut w);
            assert!(matches!(step, Step::Continue));
            seen.push(w.writes()[0].0);
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn indexed_view_picks_the_same_cells_as_the_scan() {
        // Partially-visited instance: the indexed and bare views must agree
        // on every processor's pick (the debug_asserts inside the view
        // helpers additionally cross-check on the indexed path).
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 12);
        let algo = SnapshotBalance::new(tasks, 5);
        let mut mem = SharedMemory::new(layout.total());
        for i in [1, 4, 5, 9] {
            mem.poke(tasks.x().at(i), 1);
        }
        let mut idx = rfsp_pram::UnvisitedIndex::new(0);
        idx.rebuild(mem.size(), |addr| {
            matches!(algo.completion_hint(addr, mem.peek(addr)), CompletionHint::Outstanding)
        });
        let bare = SnapshotView::bare(&mem);
        let indexed = SnapshotView::with_index(&mem, &idx);
        for pid in 0..5 {
            let (mut wb, mut wi) = (WriteSet::default(), WriteSet::default());
            algo.execute(Pid(pid), &mut (), &bare, &mut wb);
            algo.execute(Pid(pid), &mut (), &indexed, &mut wi);
            assert_eq!(wb.writes(), wi.writes());
        }
    }
}
