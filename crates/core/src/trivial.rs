//! The optimal *non-fault-tolerant* baseline.
//!
//! "In the absence of failures, this problem is solved by a trivial and
//! optimal parallel assignment" (§1): processor `i` writes its `N/P` block
//! of the array and stops. Exactly `N` completed work with no failures —
//! and a deadlock under a single unrecovered failure, which is the paper's
//! motivation in miniature (see the integration tests).

use rfsp_pram::{CompletionHint, Pid, Program, ReadSet, SharedMemory, Step, Word, WriteSet};

use crate::tasks::{TaskSet, WriteAllTasks};

/// Static block assignment: processor `i` owns cells
/// `[i·⌈N/P⌉, (i+1)·⌈N/P⌉)`.
#[derive(Clone, Copy, Debug)]
pub struct TrivialAssign {
    tasks: WriteAllTasks,
    p: usize,
}

impl TrivialAssign {
    /// Build the baseline for `p` processors over a Write-All instance.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(tasks: WriteAllTasks, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        TrivialAssign { tasks, p }
    }

    /// The underlying Write-All instance.
    pub fn tasks(&self) -> &WriteAllTasks {
        &self.tasks
    }

    fn block(&self, pid: Pid) -> (usize, usize) {
        let n = self.tasks.len();
        let chunk = n.div_ceil(self.p);
        let lo = (pid.0 * chunk).min(n);
        let hi = ((pid.0 + 1) * chunk).min(n);
        (lo, hi)
    }
}

impl Program for TrivialAssign {
    /// Next offset within the processor's block.
    type Private = usize;

    fn shared_size(&self) -> usize {
        self.tasks.x().base() + self.tasks.x().len()
    }

    fn on_start(&self, _pid: Pid) -> usize {
        0
    }

    fn plan(&self, _pid: Pid, _state: &usize, _values: &[Word], _reads: &mut ReadSet) {}

    fn execute(
        &self,
        pid: Pid,
        state: &mut usize,
        _values: &[Word],
        writes: &mut WriteSet,
    ) -> Step {
        let (lo, hi) = self.block(pid);
        let i = lo + *state;
        if i >= hi {
            return Step::Halt;
        }
        writes.push(self.tasks.x().at(i), 1);
        *state += 1;
        if lo + *state >= hi {
            Step::Halt
        } else {
            Step::Continue
        }
    }

    fn is_complete(&self, mem: &SharedMemory) -> bool {
        self.tasks.all_written(mem)
    }

    fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint {
        self.tasks.completion_hint(addr, value)
    }

    fn completion_masks(&self, base: usize, values: &[Word]) -> (u64, u64) {
        self.tasks.completion_masks(base, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine, NoFailures, PramError};

    #[test]
    fn optimal_without_failures() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 64);
        let algo = TrivialAssign::new(tasks, 16);
        let mut m = Machine::new(&algo, 16, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert!(tasks.all_written(m.memory()));
        // Work exactly N: each cell written once, no reads, no slack.
        assert_eq!(report.stats.completed_cycles, 64);
        assert_eq!(report.stats.parallel_time, 4);
    }

    #[test]
    fn ragged_blocks_cover_everything() {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 10);
        let algo = TrivialAssign::new(tasks, 4);
        let mut m = Machine::new(&algo, 4, CycleBudget::PAPER).unwrap();
        m.run(&mut NoFailures).unwrap();
        assert!(tasks.all_written(m.memory()));
    }

    /// A single unrecovered failure deadlocks the trivial algorithm — the
    /// paper's motivating observation.
    #[test]
    fn one_failure_is_fatal() {
        use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView};
        struct KillP1Once(bool);
        impl Adversary for KillP1Once {
            fn decide(&mut self, _view: &MachineView<'_>) -> Decisions {
                let mut d = Decisions::none();
                if !self.0 {
                    self.0 = true;
                    d.fail(rfsp_pram::Pid(1), FailPoint::BeforeWrites);
                }
                d
            }
        }
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, 8);
        let algo = TrivialAssign::new(tasks, 4);
        let mut m = Machine::new(&algo, 4, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut KillP1Once(false)).unwrap_err();
        assert!(matches!(err, PramError::AdversaryStall { .. } | PramError::Deadlock { .. }));
        assert!(!tasks.all_written(m.memory()));
    }
}
