//! Property tests for the core data structures and algorithm invariants.

use proptest::prelude::*;
use rfsp_core::tree::HeapTree;
use rfsp_core::{AlgoX, WriteAllTasks, XOptions};
use rfsp_pram::{
    Adversary, CycleBudget, Decisions, FailPoint, LayoutBuilder, Machine, MachineView, Word,
};

proptest! {
    /// Heap navigation is self-consistent for every tree size.
    #[test]
    fn heap_tree_navigation(min_leaves in 1usize..5000) {
        let t = HeapTree::with_leaves(min_leaves);
        prop_assert!(t.leaves() >= min_leaves.max(2));
        prop_assert!(t.leaves().is_power_of_two());
        // Every node: children round-trip through parent; depth is
        // consistent; leaf tests partition the heap.
        for v in 1..t.heap_size() {
            if t.is_leaf(v) {
                prop_assert_eq!(t.depth(v), t.height());
                let i = t.leaf_index(v);
                prop_assert_eq!(t.leaf_node(i), v);
                prop_assert_eq!(t.subtree_leaves(v), 1);
                prop_assert_eq!(t.first_leaf_under(v), i);
            } else {
                prop_assert_eq!(t.parent(t.left(v)), v);
                prop_assert_eq!(t.parent(t.right(v)), v);
                prop_assert_eq!(t.depth(t.left(v)), t.depth(v) + 1);
                prop_assert_eq!(
                    t.subtree_leaves(v),
                    t.subtree_leaves(t.left(v)) + t.subtree_leaves(t.right(v))
                );
                prop_assert_eq!(t.first_leaf_under(v), t.first_leaf_under(t.left(v)));
                prop_assert_eq!(
                    t.first_leaf_under(t.right(v)),
                    t.first_leaf_under(v) + t.subtree_leaves(t.left(v))
                );
            }
        }
    }

    /// The whole leaf range is covered by consecutive leaves.
    #[test]
    fn heap_tree_leaf_cover(min_leaves in 1usize..2000) {
        let t = HeapTree::with_leaves(min_leaves);
        let mut seen = vec![false; t.leaves()];
        for v in t.leaves()..t.heap_size() {
            seen[t.leaf_index(v)] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}

proptest! {
    /// Recursively applying [`balanced_split`] over a tree of unvisited
    /// leaf counts delivers every unvisited leaf between ⌊W/U⌋ and ⌈W/U⌉
    /// processors — the Theorem 3.2 load-balancing invariant that Lemma
    /// 4.2's analysis of algorithm V rests on.
    #[test]
    fn balanced_split_is_balanced(
        undone in proptest::collection::vec(0u64..4, 1..64),
        width in 1u64..500,
    ) {
        use rfsp_core::balanced_split;
        let u_total: u64 = undone.iter().sum();
        prop_assume!(u_total > 0);

        // Pad to a power of two (padded leaves have 0 unvisited).
        let mut u = undone.clone();
        u.resize(undone.len().next_power_of_two().max(2), 0);
        let l = u.len();

        // Subtree sums, heap-shaped.
        let mut sums = vec![0u64; 2 * l];
        sums[l..2 * l].copy_from_slice(&u);
        for v in (1..l).rev() {
            sums[v] = sums[2 * v] + sums[2 * v + 1];
        }

        // Route every rank down the tree.
        let mut per_leaf = vec![0u64; l];
        for rank in 0..width {
            let (mut v, mut r, mut w) = (1usize, rank, width);
            while v < l {
                let nl = balanced_split(sums[2 * v], sums[2 * v + 1], w);
                if r < nl {
                    v *= 2;
                    w = nl;
                } else {
                    r -= nl;
                    w -= nl;
                    v = 2 * v + 1;
                }
            }
            per_leaf[v - l] += 1;
        }

        // Every processor lands somewhere; balance holds per unvisited leaf
        // weighted by its unvisited count (a leaf with u_i unvisited cells
        // is a bucket of capacity u_i).
        prop_assert_eq!(per_leaf.iter().sum::<u64>(), width);
        let lo = width / u_total;
        let hi = width.div_ceil(u_total);
        for (i, &got) in per_leaf.iter().enumerate() {
            let cap = u[i];
            if cap == 0 {
                prop_assert_eq!(got, 0, "leaf {} is done but got {} processors", i, got);
            } else {
                prop_assert!(
                    got >= lo * cap && got <= hi * cap,
                    "leaf {i} (cap {cap}) got {got}, expected in [{}, {}]",
                    lo * cap,
                    hi * cap
                );
            }
        }
    }
}

/// Machine-level invariant checker: runs algorithm X one tick at a time
/// under a deterministic churn adversary and asserts, after *every* tick,
/// that the shared bookkeeping is well-formed.
struct ChurnAndCheck {
    period: u64,
}

impl Adversary for ChurnAndCheck {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        let mut d = Decisions::none();
        if view.cycle % self.period == 1 {
            let active: Vec<_> = view.active_pids().collect();
            for pid in active.iter().skip(1).step_by(2) {
                d.fail(*pid, FailPoint::BeforeWrites);
                d.restart(*pid);
            }
        }
        d
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// After every tick of an adversarial run: every processor position is
    /// 0 or a valid heap node, the done-heap is downward-consistent (a done
    /// interior node implies its whole leaf range is written), and doneness
    /// never regresses.
    #[test]
    fn x_shared_state_stays_well_formed(
        n in 1usize..80,
        p in 1usize..24,
        period in 2u64..6,
    ) {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let tree = algo.tree();
        let d = algo.layout().d;
        let w = algo.layout().w;
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adversary = ChurnAndCheck { period };
        let mut prev_d: Vec<Word> = vec![0; tree.heap_size()];
        let mut guard = 0;
        while !rfsp_pram::Program::is_complete(&algo, m.memory()) {
            m.tick(&mut adversary).unwrap();
            guard += 1;
            prop_assert!(guard < 1_000_000, "runaway execution");
            let mem = m.memory();
            // Positions are valid.
            for i in 0..p {
                let pos = mem.peek(w.at(i)) as usize;
                prop_assert!(pos == 0 || tree.contains(pos), "bad position {pos}");
            }
            // Done heap: monotone and downward-consistent.
            #[allow(clippy::needless_range_loop)] // v doubles as the heap index
            for v in 1..tree.heap_size() {
                let val = mem.peek(d.at(v));
                prop_assert!(val >= prev_d[v], "doneness regressed at node {v}");
                prev_d[v] = val;
                if val == 1 {
                    let first = tree.first_leaf_under(v);
                    let span = tree.subtree_leaves(v);
                    for leaf in first..first + span {
                        if leaf < n {
                            prop_assert_eq!(
                                mem.peek(tasks.x().at(leaf)),
                                1,
                                "node {} done but leaf {} unwritten",
                                v,
                                leaf
                            );
                        }
                    }
                }
            }
        }
        prop_assert!(tasks.all_written(m.memory()));
    }
}
