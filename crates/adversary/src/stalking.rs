//! The stalking adversary of §5.
//!
//! "The stalking adversary strategy consists of choosing a single leaf in a
//! binary tree employed by ACC, and failing all processors that touch that
//! leaf until only one processor remains in the fail-stop case, or until
//! all processors simultaneously touch the leaf in the fail-stop/restart
//! case." The adversary is *on-line but trivial* — it watches one leaf —
//! yet it forces the randomized ACC algorithm to expected work
//! `Ω(N²/polylog N)` (fail-stop) or exponential in `N` (restart), while
//! deterministic algorithm X completes with only `O(P)` extra work: its
//! processors converge on the stalked leaf *deterministically*, so the
//! "all touch simultaneously" release condition triggers immediately.

use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView, Pid, Region};

/// Which §5 failure model the stalker plays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StalkingMode {
    /// Fail-stop without restarts: fail touchers until one processor
    /// remains alive, then leave it alone.
    FailStop,
    /// Fail-stop with restarts: fail-and-restart touchers until *all*
    /// currently active processors touch the leaf in the same cycle.
    Restart,
}

/// The §5 stalking adversary over a Write-All array.
#[derive(Clone, Debug)]
pub struct Stalking {
    x: Region,
    /// The stalked cell (index into `x`).
    pub target: usize,
    pub mode: StalkingMode,
}

impl Stalking {
    /// Stalk cell `target` of the Write-All array `x`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn new(x: Region, target: usize, mode: StalkingMode) -> Self {
        assert!(target < x.len(), "stalked cell out of range");
        Stalking { x, target, mode }
    }

    /// Whether a tentative cycle touches the stalked cell.
    fn touches(&self, t: &rfsp_pram::TentativeCycle) -> bool {
        let addr = self.x.at(self.target);
        t.writes.writes().iter().any(|&(a, _)| a == addr) || t.reads.addrs().contains(&addr)
    }
}

impl Adversary for Stalking {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        let mut d = Decisions::none();
        if view.mem.peek(self.x.at(self.target)) == 1 {
            // The leaf fell: the stalker gives up (and in restart mode
            // revives its victims so the run can finish cleanly).
            if self.mode == StalkingMode::Restart {
                for meta in view.procs {
                    if meta.status == rfsp_pram::ProcStatus::Failed {
                        d.restart(meta.pid);
                    }
                }
            }
            return d;
        }
        let active: Vec<(Pid, bool)> = view
            .tentative
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (Pid(i), self.touches(t))))
            .collect();
        let touchers: Vec<Pid> = active.iter().filter(|(_, t)| *t).map(|(p, _)| *p).collect();
        match self.mode {
            StalkingMode::FailStop => {
                // Fail touchers while more than one processor remains.
                let mut alive = active.len();
                for pid in touchers {
                    if alive <= 1 {
                        break;
                    }
                    d.fail(pid, FailPoint::BeforeWrites);
                    alive -= 1;
                }
            }
            StalkingMode::Restart => {
                if touchers.len() < active.len() {
                    for pid in touchers {
                        d.fail(pid, FailPoint::BeforeWrites);
                        d.restart(pid);
                    }
                }
                // All active processors touch simultaneously: release.
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_core::{AccOptions, AlgoAcc, AlgoX, WriteAllTasks, XOptions};
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine, RunLimits};

    #[test]
    fn x_shrugs_off_the_stalker() {
        let n = 32;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
        let mut adversary = Stalking::new(tasks.x(), n - 1, StalkingMode::Restart);
        let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut adversary).unwrap();
        assert!(tasks.all_written(m.memory()));
        // Deterministic convergence: work stays near the no-failure level.
        assert!(report.stats.completed_work() < 40 * n as u64);
    }

    #[test]
    fn acc_suffers_under_fail_stop_stalking() {
        let n = 16;
        let p = 8;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoAcc::new(&mut layout, tasks, AccOptions { seed: 42 });
        let mut adversary = Stalking::new(tasks.x(), n - 1, StalkingMode::FailStop);
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut adversary).unwrap();
        assert!(tasks.all_written(m.memory()));
        // Eventually a lone survivor finishes everything; the stalker only
        // burned processors that touched the target.
        assert!(report.stats.failures > 0);
    }

    #[test]
    fn acc_restart_stalking_is_brutal_but_bounded_here() {
        // With few processors the "all touch simultaneously" event does
        // occur; with many it effectively never does (the §5 exponential
        // bound) — the benchmark measures the growth, the test just checks
        // the mechanism works for a small instance.
        let n = 8;
        let p = 2;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoAcc::new(&mut layout, tasks, AccOptions { seed: 7 });
        let mut adversary = Stalking::new(tasks.x(), n - 1, StalkingMode::Restart);
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let report =
            m.run_with_limits(&mut adversary, RunLimits { max_cycles: 2_000_000 }).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0);
    }
}
