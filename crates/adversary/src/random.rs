//! Random fault injection: the workhorse adversary for parameter sweeps.
//!
//! Not one of the paper's named adversaries, but the natural way to drive
//! the `M`-sweeps of Theorem 4.3 and Corollaries 4.10–4.12: each tick,
//! every active processor fails independently with probability `p_fail`
//! (at a uniformly random legal point of its cycle — before reads, before
//! writes, or between writes), and every failed processor restarts with
//! probability `p_restart`. An optional event budget caps `|F|`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView, ProcStatus};
use serde::Value;

/// I.i.d. failure/restart injection with an optional `|F|` budget.
#[derive(Clone, Debug)]
pub struct RandomFaults {
    /// Per-processor, per-tick failure probability.
    pub p_fail: f64,
    /// Per-processor, per-tick restart probability (for failed processors).
    pub p_restart: f64,
    /// Remaining failure+restart events; `None` = unlimited.
    budget: Option<u64>,
    rng: SmallRng,
}

impl RandomFaults {
    /// Unlimited-budget random faults.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are in `[0, 1]`.
    pub fn new(p_fail: f64, p_restart: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_fail), "p_fail must be a probability");
        assert!((0.0..=1.0).contains(&p_restart), "p_restart must be a probability");
        RandomFaults { p_fail, p_restart, budget: None, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Cap the failure pattern at `m` events (Theorem 4.3's `M`). Once the
    /// budget is exhausted no *new failures* are issued; pending restarts
    /// are still granted (and counted) so no processor is stranded.
    pub fn with_budget(mut self, m: u64) -> Self {
        self.budget = Some(m);
        self
    }

    /// Remaining event budget, if any.
    pub fn remaining_budget(&self) -> Option<u64> {
        self.budget
    }

    fn take_budget(&mut self) -> bool {
        match &mut self.budget {
            None => true,
            Some(0) => false,
            Some(b) => {
                *b -= 1;
                true
            }
        }
    }
}

impl Adversary for RandomFaults {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        let mut d = Decisions::none();
        // Restarts first: stranded processors contribute nothing.
        for meta in view.procs {
            if meta.status == ProcStatus::Failed && self.rng.random_bool(self.p_restart) {
                // Restarts are granted even on an empty budget (but still
                // counted against it) so a failed machine can always drain.
                if let Some(b) = &mut self.budget {
                    *b = b.saturating_sub(1);
                }
                d.restart(meta.pid);
            }
        }
        // Failures: keep at least one completing processor.
        let active: Vec<_> = view.active_pids().collect();
        if active.len() <= 1 {
            return d;
        }
        let mut spared = false;
        let last = *active.last().expect("nonempty");
        for pid in active {
            // Always spare the final active processor if nobody else was.
            if pid == last && !spared {
                break;
            }
            if self.rng.random_bool(self.p_fail) && self.take_budget() {
                let t = view.tentative[pid.0].as_ref().expect("active processor has a cycle");
                let w = t.writes.len();
                let point = match self.rng.random_range(0..3) {
                    0 => FailPoint::BeforeReads,
                    1 => FailPoint::BeforeWrites,
                    _ if w >= 1 => FailPoint::AfterWrite(self.rng.random_range(1..=w)),
                    _ => FailPoint::BeforeWrites,
                };
                d.fail(pid, point);
            } else {
                spared = true;
            }
        }
        d
    }

    fn save_state(&self) -> Option<Value> {
        let rng = Value::Seq(self.rng.state().iter().map(|&w| Value::UInt(w)).collect());
        let budget = match self.budget {
            Some(b) => Value::UInt(b),
            None => Value::Null,
        };
        Some(Value::Map(vec![("rng".to_string(), rng), ("budget".to_string(), budget)]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), String> {
        let rng = state
            .get("rng")
            .and_then(Value::as_seq)
            .ok_or("random-faults state needs an `rng` sequence")?;
        let words: Vec<u64> = rng.iter().filter_map(Value::as_u64).collect();
        let s: [u64; 4] = words.try_into().map_err(|_| "`rng` must hold exactly four u64 words")?;
        let budget = match state.get("budget") {
            Some(Value::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or("`budget` must be an integer or null")?),
        };
        self.rng = SmallRng::from_state(s);
        self.budget = budget;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_core::{AlgoV, AlgoX, WriteAllTasks, XOptions};
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine};

    #[test]
    fn x_completes_under_heavy_random_churn() {
        let n = 64;
        let p = 16;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adv = RandomFaults::new(0.3, 0.5, 1234);
        let report = m.run(&mut adv).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0);
    }

    #[test]
    fn v_completes_under_budgeted_churn() {
        let n = 128;
        let p = 8;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoV::new(&mut layout, tasks, p);
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adv = RandomFaults::new(0.2, 0.7, 99).with_budget(100);
        let report = m.run(&mut adv).unwrap();
        assert!(tasks.all_written(m.memory()));
        // The budget is approximately respected (restarts may overshoot by
        // the number of pending failed processors).
        assert!(report.stats.pattern_size() <= 100 + p as u64);
    }

    #[test]
    fn budget_zero_means_no_failures() {
        let n = 32;
        let p = 4;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adv = RandomFaults::new(0.9, 0.5, 5).with_budget(0);
        let report = m.run(&mut adv).unwrap();
        assert_eq!(report.stats.pattern_size(), 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = RandomFaults::new(1.5, 0.0, 0);
    }

    /// The decision log of a seeded random run, replayed through a
    /// [`ScheduledAdversary`], reproduces the run exactly: same stats,
    /// same pattern, same final memory. This is the contract the chaos
    /// harness's minimal replay files rely on.
    #[test]
    fn recorded_random_run_replays_exactly() {
        use rfsp_pram::{DecisionRecorder, ScheduledAdversary};

        let n = 64;
        let p = 16;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());

        let mut original = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut rec = DecisionRecorder::new(RandomFaults::new(0.25, 0.6, 777));
        let report = original.run(&mut rec).unwrap();
        assert!(report.stats.failures > 0, "want a run with actual faults");
        let log = rec.into_pattern();
        // The recorder's log is exactly the machine's recorded pattern.
        assert_eq!(log, report.pattern);

        let mut replayed = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let replay_report = replayed.run(&mut ScheduledAdversary::new(log)).unwrap();
        assert_eq!(replay_report.stats, report.stats);
        assert_eq!(replay_report.pattern, report.pattern);
        assert_eq!(replay_report.per_processor, report.per_processor);
        assert_eq!(replayed.memory().as_slice(), original.memory().as_slice());
    }

    /// Checkpointing a machine + RandomFaults mid-run and restoring into
    /// fresh instances (differently seeded — restore overwrites the
    /// stream) continues exactly like the uninterrupted run.
    #[test]
    fn checkpoint_resume_preserves_random_stream() {
        use rfsp_pram::{NoopObserver, RunControl, RunLimits, RunStatus};

        let n = 64;
        let p = 8;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());

        let mut straight = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let expected =
            straight.run(&mut RandomFaults::new(0.3, 0.5, 4242).with_budget(200)).unwrap();

        let mut first = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adv1 = RandomFaults::new(0.3, 0.5, 4242).with_budget(200);
        let status = first
            .run_controlled(&mut adv1, RunLimits::default(), &mut NoopObserver, |cycle| {
                if cycle == 5 {
                    RunControl::Pause
                } else {
                    RunControl::Continue
                }
            })
            .unwrap();
        assert!(matches!(status, RunStatus::Paused { cycle: 5 }));
        let ck = first.save_checkpoint(&adv1).unwrap();

        let mut second = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        // Deliberately different seed and budget: restore must overwrite.
        let mut adv2 = RandomFaults::new(0.3, 0.5, 1).with_budget(7);
        second.restore_checkpoint(&ck, &mut adv2).unwrap();
        let report = second.run(&mut adv2).unwrap();

        assert_eq!(report.stats, expected.stats);
        assert_eq!(report.pattern, expected.pattern);
        assert_eq!(second.memory().as_slice(), straight.memory().as_slice());
    }

    /// The cursor protocol under *continuous* interruption: the run is
    /// paused at every single tick boundary, and at each pause the
    /// adversary's state is saved and restored into a fresh instance with
    /// a different seed and budget. The decision stream must still match
    /// the uninterrupted run exactly — i.e. `save_state`/`restore_state`
    /// round-trips the full mid-run cursor (RNG words + remaining
    /// budget), not just end-of-run state.
    #[test]
    fn mid_run_cursor_roundtrips_at_every_pause() {
        use rfsp_pram::{NoopObserver, RunControl, RunLimits, RunStatus};

        let n = 64;
        let p = 8;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());

        let mut straight = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let expected =
            straight.run(&mut RandomFaults::new(0.3, 0.5, 2024).with_budget(150)).unwrap();
        assert!(expected.stats.failures > 0, "want a run with actual faults");

        let mut machine = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adv = RandomFaults::new(0.3, 0.5, 2024).with_budget(150);
        let mut last_pause = None;
        let mut pauses = 0u64;
        let report = loop {
            let lp = last_pause;
            let status = machine
                .run_controlled(&mut adv, RunLimits::default(), &mut NoopObserver, |cycle| {
                    if lp == Some(cycle) {
                        RunControl::Continue
                    } else {
                        RunControl::Pause
                    }
                })
                .unwrap();
            match status {
                RunStatus::Completed(report) => break report,
                RunStatus::Paused { cycle } => {
                    last_pause = Some(cycle);
                    pauses += 1;
                    let saved = adv.save_state().expect("random faults are checkpointable");
                    // Fresh instance with a wrong seed and wrong budget:
                    // restore must overwrite both halves of the cursor.
                    let mut fresh = RandomFaults::new(0.3, 0.5, 1).with_budget(3);
                    fresh.restore_state(&saved).unwrap();
                    assert_eq!(
                        fresh.remaining_budget(),
                        adv.remaining_budget(),
                        "budget cursor round-trips mid-run"
                    );
                    adv = fresh;
                }
            }
        };
        assert!(pauses > 2, "the run must actually have been interrupted repeatedly");
        assert_eq!(report.stats, expected.stats);
        assert_eq!(report.pattern, expected.pattern);
        assert_eq!(machine.memory().as_slice(), straight.memory().as_slice());
    }
}
