//! The pigeonhole adversary of Theorem 3.1: `Ω(N log N)` completed work
//! for Write-All, against *any* algorithm — even one with unit-cost memory
//! snapshots.
//!
//! The proof's iterative strategy, verbatim: "All N processors are revived.
//! For the upcoming cycle, the adversary determines the processors[']
//! assignment to array elements. Let `U ≥ 1` be the number of unvisited
//! array elements. By the pigeonhole principle, for any processor
//! assignment to the U elements, there is a set of `⌊U/2⌋` unvisited
//! elements with no more than `⌈P/U⌉·…` processors assigned to them. The
//! adversary … fails these processors, allowing all others to proceed.
//! Therefore at least `⌊U/2⌋` processors will complete this step having
//! visited no more than half of the remaining unvisited array locations."
//!
//! Because the machine exposes each processor's tentative writes before
//! the adversary decides, "assignment" is concrete: a processor is
//! assigned to the unvisited cells its current cycle would write.

use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView, Pid, ProcStatus, Region};

/// The Theorem 3.1 halving adversary over a Write-All array region.
#[derive(Clone, Debug)]
pub struct Pigeonhole {
    x: Region,
    /// Stop interfering once at most this many cells remain unvisited
    /// (1 = run the strategy to the end, as in the proof).
    pub floor: usize,
    /// Whether failed processors are revived each tick (the Theorem 3.1
    /// restart model). `false` gives the fail-stop (no-restart) variant in
    /// the spirit of the [KS 89] lower-bound adversary: processors stay
    /// dead, and the strategy stops failing when one would remain.
    pub revive: bool,
}

impl Pigeonhole {
    /// Build the adversary for the Write-All array `x` (restart model).
    pub fn new(x: Region) -> Self {
        Pigeonhole { x, floor: 1, revive: true }
    }

    /// The fail-stop (no-restart) variant.
    pub fn fail_stop(x: Region) -> Self {
        Pigeonhole { x, floor: 1, revive: false }
    }
}

impl Adversary for Pigeonhole {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        let mut d = Decisions::none();
        if self.revive {
            // Revive everyone (the proof's first move).
            for meta in view.procs {
                if meta.status == ProcStatus::Failed {
                    d.restart(meta.pid);
                }
            }
        }
        // Unvisited cells and the processors assigned to each.
        let unvisited: Vec<usize> =
            (0..self.x.len()).filter(|&i| view.mem.peek(self.x.at(i)) == 0).collect();
        let u = unvisited.len();
        if u <= self.floor {
            return d;
        }
        // writer lists per unvisited cell (indexed by position in
        // `unvisited`).
        let mut writers: Vec<Vec<Pid>> = vec![Vec::new(); u];
        let mut cell_slot = vec![usize::MAX; self.x.len()];
        for (k, &i) in unvisited.iter().enumerate() {
            cell_slot[i] = k;
        }
        for (pid_idx, t) in view.tentative.iter().enumerate() {
            let Some(t) = t.as_ref() else { continue };
            for &(addr, value) in t.writes.writes() {
                if value == 1 && self.x.contains(addr) {
                    let k = cell_slot[self.x.index_of(addr)];
                    if k != usize::MAX {
                        writers[k].push(Pid(pid_idx));
                    }
                }
            }
        }
        // Pick the ⌊U/2⌋ unvisited cells with the fewest writers and fail
        // exactly those writers.
        let mut order: Vec<usize> = (0..u).collect();
        order.sort_by_key(|&k| writers[k].len());
        let mut victims: Vec<Pid> = Vec::new();
        for &k in order.iter().take(u / 2) {
            victims.extend_from_slice(&writers[k]);
        }
        victims.sort();
        victims.dedup();
        // The heavier half keeps at least one writer whenever anyone writes
        // at all; if nobody writes x this tick, nobody is failed and the
        // progress condition holds trivially.
        if self.revive {
            for pid in victims {
                d.fail(pid, FailPoint::BeforeWrites);
                d.restart(pid);
            }
        } else {
            // Fail-stop: victims stay dead, so never exhaust the machine.
            let active = view.active_count();
            for pid in victims.into_iter().take(active.saturating_sub(1)) {
                d.fail(pid, FailPoint::BeforeWrites);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_core::{AlgoX, SnapshotBalance, WriteAllTasks, XOptions};
    use rfsp_pram::snapshot::SnapshotMachine;
    use rfsp_pram::{CycleBudget, Machine, MemoryLayout};

    #[test]
    fn forces_superlinear_work_on_snapshot_algorithm() {
        // Even with unit-cost snapshots (the strongest model), work must be
        // ~N log N, not N.
        let n = 256;
        let mut layout = MemoryLayout::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = SnapshotBalance::new(tasks, n);
        let mut m = SnapshotMachine::new(&algo, n, 1).unwrap();
        let report = m.run(&mut Pigeonhole::new(tasks.x())).unwrap();
        assert!(tasks.all_written(m.memory()));
        let s = report.stats.completed_work();
        // Θ(N log N): comfortably above 2N, and the halving structure means
        // ~log2(N) rounds of ~N/2 completions each.
        assert!(s as usize >= 2 * n, "S = {s} for N = {n}");
    }

    #[test]
    fn x_still_terminates_under_pigeonhole() {
        let n = 64;
        let mut layout = MemoryLayout::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
        let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut Pigeonhole::new(tasks.x())).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0);
    }

    #[test]
    fn halving_structure_bounds_progress_per_tick() {
        // Each tick at most ⌈U/2⌉ of U unvisited cells can be completed.
        let n = 128;
        let mut layout = MemoryLayout::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = SnapshotBalance::new(tasks, n);
        let mut m = SnapshotMachine::new(&algo, n, 1).unwrap();
        let mut adversary = Pigeonhole::new(tasks.x());
        let mut prev = n;
        // Drive manually for a few ticks by running with a cycle cap.
        for _ in 0..5 {
            let _ = m.run_with_limits(
                &mut adversary,
                rfsp_pram::RunLimits { max_cycles: m.stats().parallel_time + 1 },
            );
            let now = tasks.unvisited(m.memory());
            assert!(now * 2 >= prev.saturating_sub(1), "visited more than half: {prev} -> {now}");
            prev = now;
            if now <= 1 {
                break;
            }
        }
    }
}
