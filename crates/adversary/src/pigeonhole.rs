//! The pigeonhole adversary of Theorem 3.1: `Ω(N log N)` completed work
//! for Write-All, against *any* algorithm — even one with unit-cost memory
//! snapshots.
//!
//! The proof's iterative strategy, verbatim: "All N processors are revived.
//! For the upcoming cycle, the adversary determines the processors[']
//! assignment to array elements. Let `U ≥ 1` be the number of unvisited
//! array elements. By the pigeonhole principle, for any processor
//! assignment to the U elements, there is a set of `⌊U/2⌋` unvisited
//! elements with no more than `⌈P/U⌉·…` processors assigned to them. The
//! adversary … fails these processors, allowing all others to proceed.
//! Therefore at least `⌊U/2⌋` processors will complete this step having
//! visited no more than half of the remaining unvisited array locations."
//!
//! Because the machine exposes each processor's tentative writes before
//! the adversary decides, "assignment" is concrete: a processor is
//! assigned to the unvisited cells its current cycle would write.
//!
//! The adversary is allocation-free in steady state: the per-cell writer
//! lists are a flat CSR (counts → exclusive prefix sums → one `Pid` pool),
//! all buffers live on the struct and are reused across ticks, and when
//! the machine maintains an unvisited index
//! ([`MachineView::unvisited`]) the per-tick O(N) memory rescan disappears
//! entirely — the index hands over the unvisited slice and O(1) ranks.

use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView, Pid, ProcStatus, Region};

/// The Theorem 3.1 halving adversary over a Write-All array region.
#[derive(Clone, Debug)]
pub struct Pigeonhole {
    x: Region,
    /// Stop interfering once at most this many cells remain unvisited
    /// (1 = run the strategy to the end, as in the proof).
    pub floor: usize,
    /// Whether failed processors are revived each tick (the Theorem 3.1
    /// restart model). `false` gives the fail-stop (no-restart) variant in
    /// the spirit of the [KS 89] lower-bound adversary: processors stay
    /// dead, and the strategy stops failing when one would remain.
    pub revive: bool,
    // Reused per-tick buffers (see the module docs).
    scan: Vec<usize>,
    slot_of: Vec<usize>,
    counts: Vec<usize>,
    starts: Vec<usize>,
    csr: Vec<Pid>,
    order: Vec<usize>,
    victims: Vec<Pid>,
}

impl Pigeonhole {
    /// Build the adversary for the Write-All array `x` (restart model).
    pub fn new(x: Region) -> Self {
        Pigeonhole {
            x,
            floor: 1,
            revive: true,
            scan: Vec::new(),
            slot_of: Vec::new(),
            counts: Vec::new(),
            starts: Vec::new(),
            csr: Vec::new(),
            order: Vec::new(),
            victims: Vec::new(),
        }
    }

    /// The fail-stop (no-restart) variant.
    pub fn fail_stop(x: Region) -> Self {
        Pigeonhole { revive: false, ..Pigeonhole::new(x) }
    }
}

impl Adversary for Pigeonhole {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        let mut d = Decisions::none();
        if self.revive {
            // Revive everyone (the proof's first move).
            for meta in view.procs {
                if meta.status == ProcStatus::Failed {
                    d.restart(meta.pid);
                }
            }
        }
        // Unvisited cells of x, in position order: straight from the
        // machine's index when it maintains one, by (reused-buffer) scan
        // otherwise. `indexed` additionally carries the rank of x's first
        // unvisited cell, turning address → slot into O(1) rank lookups.
        let indexed = view.unvisited.map(|idx| (idx, idx.range_in(self.x).start));
        let u = match indexed {
            Some((idx, _)) => idx.count_in(self.x),
            None => {
                self.scan.clear();
                self.scan.extend(
                    (0..self.x.len()).map(|i| self.x.at(i)).filter(|&a| view.mem.peek(a) == 0),
                );
                self.scan.len()
            }
        };
        #[cfg(debug_assertions)]
        {
            let fresh: Vec<usize> = (0..self.x.len())
                .map(|i| self.x.at(i))
                .filter(|&a| view.mem.peek(a) == 0)
                .collect();
            let agrees = match indexed {
                Some((idx, _)) => idx.slice_in(self.x).iter().eq(fresh.iter().copied()),
                None => self.scan == fresh,
            };
            assert!(agrees, "unvisited index diverged from the memory scan");
        }
        if u <= self.floor {
            return d;
        }
        if indexed.is_none() {
            // Fallback slot lookup: region offset → slot (MAX = visited).
            self.slot_of.clear();
            self.slot_of.resize(self.x.len(), usize::MAX);
            for k in 0..self.scan.len() {
                let addr = self.scan[k];
                self.slot_of[self.x.index_of(addr)] = k;
            }
        }
        let x = self.x;
        let slot = move |slot_of: &[usize], addr: usize| -> Option<usize> {
            match indexed {
                Some((idx, base)) => idx.rank_of(addr).map(|r| r - base),
                None => {
                    let s = slot_of[x.index_of(addr)];
                    (s != usize::MAX).then_some(s)
                }
            }
        };
        // Writer lists per unvisited cell as a flat CSR: count, prefix-sum,
        // fill (counts double as fill cursors).
        self.counts.clear();
        self.counts.resize(u, 0);
        for t in view.tentative.iter().flatten() {
            for &(addr, value) in t.writes.writes() {
                if value == 1 && self.x.contains(addr) {
                    if let Some(k) = slot(&self.slot_of, addr) {
                        self.counts[k] += 1;
                    }
                }
            }
        }
        self.starts.clear();
        self.starts.push(0);
        for k in 0..u {
            self.starts.push(self.starts[k] + self.counts[k]);
        }
        self.counts.copy_from_slice(&self.starts[..u]);
        self.csr.clear();
        self.csr.resize(self.starts[u], Pid(0));
        for (pid_idx, t) in view.tentative.iter().enumerate() {
            let Some(t) = t.as_ref() else { continue };
            for &(addr, value) in t.writes.writes() {
                if value == 1 && self.x.contains(addr) {
                    if let Some(k) = slot(&self.slot_of, addr) {
                        self.csr[self.counts[k]] = Pid(pid_idx);
                        self.counts[k] += 1;
                    }
                }
            }
        }
        // Pick the ⌊U/2⌋ unvisited cells with the fewest writers and fail
        // exactly those writers. Keys (count, slot) are unique, so the
        // unstable sort reproduces the old stable sort-by-count exactly.
        self.order.clear();
        self.order.extend(0..u);
        let starts = &self.starts;
        self.order.sort_unstable_by_key(|&k| (starts[k + 1] - starts[k], k));
        self.victims.clear();
        for &k in self.order.iter().take(u / 2) {
            self.victims.extend_from_slice(&self.csr[self.starts[k]..self.starts[k + 1]]);
        }
        self.victims.sort_unstable();
        self.victims.dedup();
        // The heavier half keeps at least one writer whenever anyone writes
        // at all; if nobody writes x this tick, nobody is failed and the
        // progress condition holds trivially.
        if self.revive {
            for &pid in &self.victims {
                d.fail(pid, FailPoint::BeforeWrites);
                d.restart(pid);
            }
        } else {
            // Fail-stop: victims stay dead, so never exhaust the machine.
            let active = view.active_count();
            for &pid in self.victims.iter().take(active.saturating_sub(1)) {
                d.fail(pid, FailPoint::BeforeWrites);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_core::{AlgoX, SnapshotBalance, WriteAllTasks, XOptions};
    use rfsp_pram::snapshot::SnapshotMachine;
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine};

    #[test]
    fn forces_superlinear_work_on_snapshot_algorithm() {
        // Even with unit-cost snapshots (the strongest model), work must be
        // ~N log N, not N.
        let n = 256;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = SnapshotBalance::new(tasks, n);
        let mut m = SnapshotMachine::new(&algo, n, 1).unwrap();
        let report = m.run(&mut Pigeonhole::new(tasks.x())).unwrap();
        assert!(tasks.all_written(m.memory()));
        let s = report.stats.completed_work();
        // Θ(N log N): comfortably above 2N, and the halving structure means
        // ~log2(N) rounds of ~N/2 completions each.
        assert!(s as usize >= 2 * n, "S = {s} for N = {n}");
    }

    #[test]
    fn x_still_terminates_under_pigeonhole() {
        let n = 64;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
        let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut Pigeonhole::new(tasks.x())).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0);
    }

    #[test]
    fn halving_structure_bounds_progress_per_tick() {
        // Each tick at most ⌈U/2⌉ of U unvisited cells can be completed.
        let n = 128;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = SnapshotBalance::new(tasks, n);
        let mut m = SnapshotMachine::new(&algo, n, 1).unwrap();
        let mut adversary = Pigeonhole::new(tasks.x());
        let mut prev = n;
        // Drive manually for a few ticks by running with a cycle cap.
        for _ in 0..5 {
            let _ = m.run_with_limits(
                &mut adversary,
                rfsp_pram::RunLimits { max_cycles: m.stats().parallel_time + 1 },
            );
            let now = tasks.unvisited(m.memory());
            assert!(now * 2 >= prev.saturating_sub(1), "visited more than half: {prev} -> {now}");
            prev = now;
            if now <= 1 {
                break;
            }
        }
    }
}
