//! Off-line (non-adaptive) adversaries.
//!
//! §5's randomization discussion hinges on the on-line/off-line
//! distinction: "the existing upper bounds for randomized solutions for
//! Write-All apply to off-line, i.e., non-adaptive adversaries", and "when
//! the adversary is made off-line, the ACC algorithm becomes efficient in
//! the fail-stop/restart setting". An off-line adversary commits to its
//! entire failure pattern *before* the execution starts — it cannot react
//! to coin flips.
//!
//! [`offline_random_pattern`] generates such a pattern (a random but
//! pre-committed schedule), which is then replayed through
//! `ScheduledAdversary`. By construction
//! the schedule is independent of anything the algorithm does.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rfsp_pram::{FailPoint, FailureEvent, FailureKind, FailurePattern, ScheduledAdversary};

/// Generate a pre-committed random failure/restart schedule for `p`
/// processors over `ticks` ticks: each alive processor (except processor
/// 0, which is kept immune so the schedule is legal under the model's
/// progress condition regardless of the algorithm) fails with probability
/// `p_fail` per tick and each failed processor restarts with probability
/// `p_restart` per tick.
///
/// The generator tracks its own notion of liveness so the schedule is
/// always legal (never fails a failed processor or restarts an alive one);
/// legality is the only information it shares with the execution.
///
/// # Panics
///
/// Panics unless the probabilities are in `[0, 1]` and `p > 0`.
pub fn offline_random_pattern(
    p: usize,
    ticks: u64,
    p_fail: f64,
    p_restart: f64,
    seed: u64,
) -> FailurePattern {
    assert!(p > 0, "need at least one processor");
    assert!((0.0..=1.0).contains(&p_fail), "p_fail must be a probability");
    assert!((0.0..=1.0).contains(&p_restart), "p_restart must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut alive = vec![true; p];
    let mut pattern = FailurePattern::new();
    for t in 0..ticks {
        // Restarts recorded at time t+1 must be pushed after time-t
        // failures to keep the pattern ordered; buffer them.
        let mut restarts = Vec::new();
        #[allow(clippy::needless_range_loop)] // pid 0 is intentionally skipped
        for pid in 1..p {
            if alive[pid] {
                if rng.random_bool(p_fail) {
                    alive[pid] = false;
                    pattern.push(FailureEvent {
                        kind: FailureKind::Failure { point: FailPoint::BeforeWrites },
                        pid,
                        time: t,
                    });
                }
            } else if rng.random_bool(p_restart) {
                alive[pid] = true;
                restarts.push(FailureEvent { kind: FailureKind::Restart, pid, time: t + 1 });
            }
        }
        pattern.extend(restarts);
    }
    pattern
}

/// Convenience: an adversary replaying a fresh off-line random schedule.
pub fn offline_random(
    p: usize,
    ticks: u64,
    p_fail: f64,
    p_restart: f64,
    seed: u64,
) -> ScheduledAdversary {
    ScheduledAdversary::new(offline_random_pattern(p, ticks, p_fail, p_restart, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_core::{AccOptions, AlgoAcc, WriteAllTasks};
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine};

    #[test]
    fn schedule_is_legal_and_replayable() {
        let pattern = offline_random_pattern(16, 500, 0.1, 0.5, 99);
        assert!(pattern.size() > 0);
        // Processor 0 never appears.
        assert!(pattern.events().iter().all(|e| e.pid != 0));
        // Times are ordered (FailurePattern::push enforces it; double-check).
        let times: Vec<u64> = pattern.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    /// §5's positive claim: ACC is efficient against an off-line adversary
    /// even in the restart model.
    #[test]
    fn acc_is_efficient_against_offline_restarts() {
        let n = 64;
        let p = 8;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoAcc::new(&mut layout, tasks, AccOptions { seed: 5 });
        let mut adv = offline_random(p, 100_000, 0.2, 0.5, 123);
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut adv).unwrap();
        assert!(tasks.all_written(m.memory()));
        // Orders of magnitude below the stalking blow-up (§5): comfortably
        // polynomial in N.
        assert!(
            report.stats.completed_work() < (n * n) as u64,
            "S = {} should be small off-line",
            report.stats.completed_work()
        );
    }
}
