//! A budget combinator: cap any adversary's pattern size at `M`.
//!
//! Definition 2.3 quantifies over patterns with `|F| ≤ M`; wrapping an
//! adversary in [`Budgeted`] turns any strategy into a member of that
//! class. New failures beyond the budget are dropped; restarts of already
//! failed processors are always forwarded (and counted), so no processor
//! is stranded by the cap itself.

use rfsp_pram::{Adversary, Decisions, MachineView};
use serde::Value;

/// Wrap `inner`, enforcing `|F| ≤ m` (approximately: restart events needed
/// to un-strand failed processors may overshoot by at most `P`).
#[derive(Clone, Debug)]
pub struct Budgeted<A> {
    inner: A,
    remaining: u64,
}

impl<A: Adversary> Budgeted<A> {
    /// Allow `inner` at most `m` failure/restart events.
    pub fn new(inner: A, m: u64) -> Self {
        Budgeted { inner, remaining: m }
    }

    /// Events still allowed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The wrapped adversary.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: Adversary> Adversary for Budgeted<A> {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        let raw = self.inner.decide(view);
        let mut out = Decisions::none();
        for (pid, point) in raw.fails {
            if self.remaining >= 2 {
                // Reserve an event for the matching restart so a budgeted
                // failure can always be recovered from.
                self.remaining -= 1;
                out.fails.push((pid, point));
            }
        }
        for pid in raw.restarts {
            // Restarts are forwarded regardless (a failed processor must be
            // recoverable) but still drain the budget.
            self.remaining = self.remaining.saturating_sub(1);
            out.restarts.push(pid);
        }
        // Drop restarts whose failure was suppressed: a restart is only
        // legal for a processor that is (still) failed.
        out.restarts.retain(|pid| {
            let failed_before = view.procs[pid.0].status == rfsp_pram::ProcStatus::Failed;
            let failed_now = out.fails.iter().any(|(p, _)| p == pid);
            failed_before || failed_now
        });
        out
    }

    fn save_state(&self) -> Option<Value> {
        // Checkpointable iff the wrapped adversary is.
        let inner = self.inner.save_state()?;
        Some(Value::Map(vec![
            ("inner".to_string(), inner),
            ("remaining".to_string(), Value::UInt(self.remaining)),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), String> {
        let remaining = state
            .get("remaining")
            .and_then(Value::as_u64)
            .ok_or("budgeted state needs a `remaining` integer")?;
        let inner = state.get("inner").ok_or("budgeted state needs an `inner` entry")?;
        self.inner.restore_state(inner)?;
        self.remaining = remaining;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thrashing::Thrashing;
    use rfsp_core::{AlgoX, WriteAllTasks, XOptions};
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine};

    #[test]
    fn budget_caps_the_pattern() {
        let n = 64;
        let p = 16;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adv = Budgeted::new(Thrashing::new(), 40);
        let report = m.run(&mut adv).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.pattern_size() <= 40 + p as u64);
        assert!(report.stats.pattern_size() > 0);
    }

    #[test]
    fn zero_budget_passes_nothing() {
        let n = 16;
        let p = 4;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adv = Budgeted::new(Thrashing::new(), 0);
        let report = m.run(&mut adv).unwrap();
        assert_eq!(report.stats.pattern_size(), 0);
    }
}
