//! The Theorem 4.8 adversary: forces algorithm X to `S = Ω(N^{log 3})`
//! completed work with `P = N` processors.
//!
//! The proof sketch's strategy: "the processor with PID 0 will be allowed
//! to sequentially traverse the progress tree in postorder … The
//! processors that find themselves at the same leaf as the processor 0 are
//! (re)started, while the rest are failed [on reaching a leaf]. All
//! processors … are allowed to traverse the progress tree until they reach
//! a leaf. When processors reach a leaf, the failure/restart procedure is
//! repeated."
//!
//! Operationally: processor 0 is never disturbed and sweeps the leaves
//! left-to-right (X's traversal of a tree whose progress only it advances
//! *is* a postorder sweep). Every other processor may move freely through
//! the tree — those movement cycles are the work the bound counts — but
//! the moment its cycle would *contribute progress* (write the Write-All
//! array or mark the progress heap), it is failed, freezing it at its
//! leaf. When processor 0's sweep arrives at a frozen processor's leaf,
//! that processor is restarted; the leaf is then completed under it, so it
//! re-descends into the remaining tree, reaches another leaf, and freezes
//! again. The recursive re-traversals compound to `Θ(N^{log₂ 3})`.

use rfsp_core::{HeapTree, XLayout};
use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView, Pid, ProcStatus, Region};

/// The Theorem 4.8 postorder stalker for algorithm X.
#[derive(Clone, Debug)]
pub struct XKiller {
    x: Region,
    layout: XLayout,
    tree: HeapTree,
}

impl XKiller {
    /// Build the adversary against a specific algorithm-X instance: `x` is
    /// the Write-All array, `layout`/`tree` the instance's bookkeeping.
    pub fn new(x: Region, layout: XLayout, tree: HeapTree) -> Self {
        XKiller { x, layout, tree }
    }
}

impl Adversary for XKiller {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        let mut d = Decisions::none();
        let pos0 = view.mem.peek(self.layout.w.at(0)) as usize;

        // Restart the frozen processors co-located with processor 0.
        for meta in view.procs {
            if meta.pid.0 == 0 {
                continue;
            }
            if meta.status == ProcStatus::Failed {
                let pos = view.mem.peek(self.layout.w.at(meta.pid.0)) as usize;
                if pos == pos0 && pos != 0 {
                    d.restart(meta.pid);
                }
            }
        }

        // Freeze any other processor whose cycle would contribute progress
        // (an x write or a progress-heap write) away from processor 0's
        // position; pure movement (w writes) is allowed — and charged.
        for (pid_idx, t) in view.tentative.iter().enumerate() {
            if pid_idx == 0 {
                continue;
            }
            let Some(t) = t.as_ref() else { continue };
            let pos = view.mem.peek(self.layout.w.at(pid_idx)) as usize;
            if pos == pos0 {
                continue; // co-located with processor 0: may help it
            }
            let contributes = t
                .writes
                .writes()
                .iter()
                .any(|&(addr, _)| self.x.contains(addr) || self.layout.d.contains(addr));
            if contributes {
                d.fail(Pid(pid_idx), FailPoint::BeforeWrites);
            }
        }
        let _ = self.tree;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_core::{AlgoX, WriteAllTasks, XOptions};
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine};

    fn run(n: usize) -> (u64, u64) {
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
        let mut adversary = XKiller::new(tasks.x(), *algo.layout(), algo.tree());
        let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut adversary).unwrap();
        assert!(tasks.all_written(m.memory()), "n={n}");
        (report.stats.completed_work(), report.stats.pattern_size())
    }

    #[test]
    fn terminates_and_costs_superlinearly() {
        let (s16, _) = run(16);
        let (s64, _) = run(64);
        // N^{log2 3} scaling: quadrupling N should multiply work by ~3²=9;
        // allow slack but demand clearly super-linear growth (>4x).
        assert!(s64 > 4 * s16, "S(64)={s64} vs S(16)={s16}");
    }

    #[test]
    fn processor_zero_is_never_failed() {
        let n = 32;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
        let mut adversary = XKiller::new(tasks.x(), *algo.layout(), algo.tree());
        let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut adversary).unwrap();
        for e in report.pattern.events() {
            assert_ne!(e.pid, 0, "processor 0 must never appear in the pattern as a victim");
        }
    }
}
