//! Bursty (Markov-modulated) fault injection.
//!
//! Real fault processes are rarely i.i.d.: crashes cluster — a flaky
//! power rail, a thundering-herd OOM — separated by long calm stretches.
//! [`BurstyFaults`] models this with the classic two-state
//! Markov-modulated process: a hidden mode chain flips between **calm**
//! and **burst**, and the per-processor failure probability each tick is
//! whichever rate the current mode dictates. Restarts behave as in
//! [`RandomFaults`](crate::RandomFaults).
//!
//! This is the stress case for the adaptive checkpoint policy: a rate
//! chosen for the *average* intensity is wrong in both modes, so an
//! engine that tracks the live EWMA intensity (see `rfsp_pram::policy`)
//! has something real to adapt to.
//!
//! Like every sweep adversary, the whole mutable state — mode bit plus
//! RNG cursor — save/restores through the checkpoint protocol, so a
//! killed-and-resumed run draws the identical decision stream.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView, ProcStatus};
use serde::Value;

/// Two-state Markov-modulated failure/restart injection.
#[derive(Clone, Debug)]
pub struct BurstyFaults {
    /// Per-processor, per-tick failure probability in the calm mode.
    pub p_fail_calm: f64,
    /// Per-processor, per-tick failure probability in the burst mode.
    pub p_fail_burst: f64,
    /// Per-processor, per-tick restart probability (mode-independent).
    pub p_restart: f64,
    /// Per-tick probability of entering a burst from calm.
    pub p_enter_burst: f64,
    /// Per-tick probability of leaving a burst back to calm.
    pub p_exit_burst: f64,
    /// `true` while the hidden chain is in the burst mode.
    burst: bool,
    rng: SmallRng,
}

impl BurstyFaults {
    /// A bursty adversary starting in the calm mode.
    ///
    /// # Panics
    ///
    /// Panics unless every argument is a probability in `[0, 1]`.
    pub fn new(
        p_fail_calm: f64,
        p_fail_burst: f64,
        p_restart: f64,
        p_enter_burst: f64,
        p_exit_burst: f64,
        seed: u64,
    ) -> Self {
        for (name, p) in [
            ("p_fail_calm", p_fail_calm),
            ("p_fail_burst", p_fail_burst),
            ("p_restart", p_restart),
            ("p_enter_burst", p_enter_burst),
            ("p_exit_burst", p_exit_burst),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability");
        }
        BurstyFaults {
            p_fail_calm,
            p_fail_burst,
            p_restart,
            p_enter_burst,
            p_exit_burst,
            burst: false,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A preset matching the policy bench: rare long bursts of heavy
    /// churn (`p_fail_burst`) over a near-quiet baseline, with the burst
    /// intensity as the single swept knob.
    pub fn preset(p_fail_burst: f64, seed: u64) -> Self {
        Self::new(0.002, p_fail_burst, 0.6, 0.02, 0.10, seed)
    }

    /// Whether the hidden chain is currently bursting.
    pub fn bursting(&self) -> bool {
        self.burst
    }
}

impl Adversary for BurstyFaults {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        // Advance the hidden mode chain first: exactly one draw per tick,
        // whatever the machine looks like, so the chain's trajectory
        // depends only on the seed.
        let flip = if self.burst { self.p_exit_burst } else { self.p_enter_burst };
        if self.rng.random_bool(flip) {
            self.burst = !self.burst;
        }
        let p_fail = if self.burst { self.p_fail_burst } else { self.p_fail_calm };

        let mut d = Decisions::none();
        // Restarts first: stranded processors contribute nothing.
        for meta in view.procs {
            if meta.status == ProcStatus::Failed && self.rng.random_bool(self.p_restart) {
                d.restart(meta.pid);
            }
        }
        // Failures: keep at least one completing processor, like the
        // i.i.d. workhorse — a legal adversary may not halt the machine.
        let active: Vec<_> = view.active_pids().collect();
        if active.len() <= 1 {
            return d;
        }
        let mut spared = false;
        let last = *active.last().expect("nonempty");
        for pid in active {
            if pid == last && !spared {
                break;
            }
            if self.rng.random_bool(p_fail) {
                let t = view.tentative[pid.0].as_ref().expect("active processor has a cycle");
                let w = t.writes.len();
                let point = match self.rng.random_range(0..3) {
                    0 => FailPoint::BeforeReads,
                    1 => FailPoint::BeforeWrites,
                    _ if w >= 1 => FailPoint::AfterWrite(self.rng.random_range(1..=w)),
                    _ => FailPoint::BeforeWrites,
                };
                d.fail(pid, point);
            } else {
                spared = true;
            }
        }
        d
    }

    fn save_state(&self) -> Option<Value> {
        let rng = Value::Seq(self.rng.state().iter().map(|&w| Value::UInt(w)).collect());
        Some(Value::Map(vec![
            ("rng".to_string(), rng),
            ("burst".to_string(), Value::Bool(self.burst)),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), String> {
        let rng = state
            .get("rng")
            .and_then(Value::as_seq)
            .ok_or("bursty-faults state needs an `rng` sequence")?;
        let words: Vec<u64> = rng.iter().filter_map(Value::as_u64).collect();
        let s: [u64; 4] = words.try_into().map_err(|_| "`rng` must hold exactly four u64 words")?;
        let burst = match state.get("burst") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("`burst` must be a boolean".to_string()),
        };
        self.rng = SmallRng::from_state(s);
        self.burst = burst;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_core::{AlgoX, WriteAllTasks, XOptions};
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine};

    #[test]
    fn x_completes_under_bursty_churn() {
        let n = 64;
        let p = 16;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        // Aggressive chain so a short run sees both modes.
        let mut adv = BurstyFaults::new(0.02, 0.5, 0.6, 0.3, 0.3, 99);
        let report = m.run(&mut adv).unwrap();
        assert!(tasks.all_written(m.memory()));
        assert!(report.stats.failures > 0, "churn must actually bite");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = BurstyFaults::new(0.1, 1.5, 0.5, 0.1, 0.1, 0);
    }

    /// The hidden mode chain plus RNG cursor round-trips through the
    /// checkpoint protocol: a run paused at EVERY tick boundary, with the
    /// adversary serialized and restored into a fresh differently-seeded
    /// instance at each pause, still reproduces the uninterrupted run.
    #[test]
    fn checkpoint_resume_preserves_modulated_stream() {
        use rfsp_pram::{NoopObserver, RunControl, RunLimits, RunStatus};

        let n = 64;
        let p = 8;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());

        let mut straight = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let expected = straight.run(&mut BurstyFaults::new(0.05, 0.6, 0.6, 0.2, 0.2, 7)).unwrap();
        assert!(expected.stats.failures > 0, "want a run with actual faults");

        let mut machine = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let mut adv = BurstyFaults::new(0.05, 0.6, 0.6, 0.2, 0.2, 7);
        let mut last_pause = None;
        let report = loop {
            let lp = last_pause;
            let status = machine
                .run_controlled(&mut adv, RunLimits::default(), &mut NoopObserver, |cycle| {
                    if lp == Some(cycle) {
                        RunControl::Continue
                    } else {
                        RunControl::Pause
                    }
                })
                .unwrap();
            match status {
                RunStatus::Completed(report) => break report,
                RunStatus::Paused { cycle } => {
                    last_pause = Some(cycle);
                    let ck = machine.save_checkpoint(&adv).unwrap();
                    let mut fresh = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
                    // Different seed, mid-burst or not: restore overwrites.
                    let mut adv2 = BurstyFaults::new(0.05, 0.6, 0.6, 0.2, 0.2, 12345);
                    fresh.restore_checkpoint(&ck, &mut adv2).unwrap();
                    machine = fresh;
                    adv = adv2;
                }
            }
        };
        assert_eq!(report.stats, expected.stats);
        assert_eq!(report.pattern, expected.pattern);
        assert_eq!(machine.memory().as_slice(), straight.memory().as_slice());
    }
}
