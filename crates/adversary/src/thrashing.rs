//! The thrashing adversary of Example 2.2.
//!
//! "A thrashing adversary allows all processors to perform the read and
//! compute instructions, then it fails all but one processor for the write
//! operation. The adversary then restarts all failed processors. Since one
//! write operation is performed per cycle, N cycles will be required …
//! which results in work of `O(P·N)`" — *if* processors are charged for
//! incomplete cycles. Under completed-work accounting the same adversary
//! charges almost nothing, which is exactly the point of Definition 2.2.

use rfsp_pram::{Adversary, Decisions, FailPoint, MachineView};

/// Fail everyone but one survivor before each tick's writes; restart them
/// all for the next tick.
///
/// ```
/// use rfsp_adversary::Thrashing;
/// use rfsp_core::{AlgoX, WriteAllTasks, XOptions};
/// use rfsp_pram::{CycleBudget, Machine, LayoutBuilder};
///
/// # fn main() -> Result<(), rfsp_pram::PramError> {
/// let mut layout = LayoutBuilder::new();
/// let tasks = WriteAllTasks::new(&mut layout, 32);
/// let algo = AlgoX::new(&mut layout, tasks, 32, XOptions::default());
/// let mut machine = Machine::new(&algo, 32, CycleBudget::PAPER)?;
/// let report = machine.run(&mut Thrashing::new())?;
/// // Completed work stays small; S' (charged-anyway work) explodes.
/// assert!(report.stats.s_prime() > 10 * report.stats.completed_work());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Thrashing {
    /// Rotate the survivor (instead of always sparing the lowest-PID
    /// active processor). The bound does not depend on the choice.
    pub rotate_survivor: bool,
}

impl Thrashing {
    /// The canonical thrashing adversary (fixed survivor).
    pub fn new() -> Self {
        Thrashing::default()
    }

    /// Rotate the survivor over time.
    pub fn rotating() -> Self {
        Thrashing { rotate_survivor: true }
    }
}

impl Adversary for Thrashing {
    fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
        let mut d = Decisions::none();
        // Iterate the active set directly instead of collecting it — the
        // decide path stays free of scratch allocations.
        let active = view.active_count();
        if active <= 1 {
            // Also revive anyone still failed so the machine never stalls.
            for meta in view.procs {
                if meta.status == rfsp_pram::ProcStatus::Failed {
                    d.restart(meta.pid);
                }
            }
            return d;
        }
        let survivor_idx = if self.rotate_survivor { (view.cycle as usize) % active } else { 0 };
        for (k, pid) in view.active_pids().enumerate() {
            if k != survivor_idx {
                d.fail(pid, FailPoint::BeforeWrites);
                d.restart(pid);
            }
        }
        // Revive anyone failed in earlier ticks (e.g. halted targets).
        for meta in view.procs {
            if meta.status == rfsp_pram::ProcStatus::Failed {
                d.restart(meta.pid);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsp_core::{AlgoX, WriteAllTasks, XOptions};
    use rfsp_pram::{CycleBudget, LayoutBuilder, Machine};

    #[test]
    fn one_completion_per_tick_and_huge_s_prime() {
        let n = 32;
        let p = 32;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, p, XOptions::default());
        let mut m = Machine::new(&algo, p, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut Thrashing::new()).unwrap();
        assert!(tasks.all_written(m.memory()));
        let s = report.stats.completed_work();
        let s_prime = report.stats.s_prime();
        // Exactly one completion per tick.
        assert_eq!(s, report.stats.parallel_time);
        // S' counts the P-1 interrupted cycles of every tick: it must dwarf S.
        assert!(s_prime >= 10 * s, "S'={s_prime} S={s}");
        // Remark 2: S' <= S + |F|.
        assert!(s_prime <= s + report.stats.pattern_size());
    }

    #[test]
    fn rotating_survivor_also_terminates() {
        let n = 16;
        let mut layout = LayoutBuilder::new();
        let tasks = WriteAllTasks::new(&mut layout, n);
        let algo = AlgoX::new(&mut layout, tasks, n, XOptions::default());
        let mut m = Machine::new(&algo, n, CycleBudget::PAPER).unwrap();
        m.run(&mut Thrashing::rotating()).unwrap();
        assert!(tasks.all_written(m.memory()));
    }
}
