//! # rfsp-adversary — the paper's adversaries, executable
//!
//! Every lower bound and bad-case argument in Kanellakis & Shvartsman
//! (PODC 1991) is *constructive*: it names an on-line adversary strategy.
//! This crate implements each one against the
//! [`Adversary`](rfsp_pram::Adversary) interface so the benchmark harness
//! can measure exactly the executions the proofs describe:
//!
//! * [`Thrashing`] — Example 2.2: allow reads, fail everyone but one
//!   before the writes, restart, repeat. Forces `S' = Ω(P·N)` and
//!   motivates completed-work accounting.
//! * [`Pigeonhole`] — Theorem 3.1: revive everyone, find the half of the
//!   unvisited cells with the fewest assigned processors, fail exactly
//!   those writers. Forces `Ω(N log N)` completed work on *any* Write-All
//!   algorithm.
//! * [`XKiller`] — Theorem 4.8: let processor 0 sweep the leaves in
//!   postorder while everyone else is made to re-traverse the tree and is
//!   frozen at each leaf it reaches. Forces `S = Ω(N^{log 3})` on
//!   algorithm X with `P = N`.
//! * [`Stalking`] — §5: pick one leaf and fail every processor that
//!   touches it (optionally restarting them). Devastates randomized
//!   coupon-clipping; deterministic X shrugs it off.
//! * [`RandomFaults`] — i.i.d. failures/restarts with configurable rates
//!   and an event budget, the workhorse for the Theorem 4.3 `M`-sweeps.
//! * [`BurstyFaults`] — two-state Markov-modulated failures (calm/burst
//!   hidden mode chain): the clustered-crash regime the adaptive
//!   checkpoint policy is measured against.
//! * [`offline::offline_random`] — a pre-committed (non-adaptive) random
//!   schedule: §5's *off-line* adversary, against which the randomized
//!   algorithm is efficient.
//! * [`Budgeted`] — wrap any adversary with a hard `|F| ≤ M` budget.

pub mod budget;
pub mod bursty;
pub mod offline;
pub mod pigeonhole;
pub mod random;
pub mod stalking;
pub mod thrashing;
pub mod xkiller;

pub use budget::Budgeted;
pub use bursty::BurstyFaults;
pub use offline::{offline_random, offline_random_pattern};
pub use pigeonhole::Pigeonhole;
pub use random::RandomFaults;
pub use stalking::{Stalking, StalkingMode};
pub use thrashing::Thrashing;
pub use xkiller::XKiller;
