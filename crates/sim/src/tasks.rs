//! The simulation task set: one simulated PRAM step = two Write-All rounds.
//!
//! §4.3 of the paper: arbitrary PRAM steps are executed by "replacing the
//! trivial array assignments in a Write-All solution with the appropriate
//! components of the PRAM steps", taking care "to ensure that the results
//! of computations are stored in temporary memory before simulating the
//! synchronous updates of the shared memory with the new values".
//!
//! Concretely, simulated step `t` becomes two rounds of `N` tasks each:
//!
//! * **Round `2t+1` (compute)** — task `i` loads simulated processor `i`'s
//!   checkpointed registers, reads its simulated memory operand, runs the
//!   step function, and *stages* the new registers and the pending write in
//!   temporary cells. During this round the simulated memory is read-only,
//!   so re-executions (after failures) read the same operands — the tasks
//!   are idempotent.
//! * **Round `2t+2` (commit)** — task `i` copies the staged registers into
//!   the register checkpoint and applies the staged write to simulated
//!   memory. During this round only staged cells are read, so it is
//!   likewise idempotent, and concurrent writes to one simulated cell
//!   surface as real concurrent writes (preserving the simulated PRAM's
//!   COMMON/ARBITRARY semantics exactly).
//!
//! Doneness is encoded in tags: a task's output cells carry the round
//! number that produced them, so "task `i` done in round `k`" is the
//! single-read observation `tag == k`, which is what lets algorithms X and
//! V drive all `2τ` rounds without ever resetting their trees (their
//! progress heaps store round numbers too).

use rfsp_core::TaskSet;
use rfsp_pram::{LayoutBuilder, ReadSet, Region, SharedMemory, Word, WriteSet};

use crate::program::{Regs, SimProgram, SimWrite};

const TAG_SHIFT: u32 = 48;
const NOP_ADDR: u64 = 0xFFFF;

#[inline]
fn tag_of(v: Word) -> Word {
    v >> TAG_SHIFT
}

#[inline]
fn pack_regs(tag: Word, regs: Regs) -> Word {
    (tag << TAG_SHIFT) | ((regs.a as Word) << 24) | regs.b as Word
}

#[inline]
fn unpack_regs(v: Word) -> Regs {
    Regs { a: ((v >> 24) & 0xFF_FFFF) as u32, b: (v & 0xFF_FFFF) as u32 }
}

#[inline]
fn pack_write(tag: Word, w: SimWrite) -> Word {
    match w {
        SimWrite::Write { addr, value } => {
            (tag << TAG_SHIFT) | ((addr as Word) << 32) | value as Word
        }
        SimWrite::Nop => (tag << TAG_SHIFT) | (NOP_ADDR << 32),
    }
}

#[inline]
fn unpack_write(v: Word) -> SimWrite {
    let addr = (v >> 32) & 0xFFFF;
    if addr == NOP_ADDR {
        SimWrite::Nop
    } else {
        SimWrite::Write { addr: addr as usize, value: (v & 0xFFFF_FFFF) as u32 }
    }
}

/// Shared-memory layout of a simulation instance.
#[derive(Clone, Copy, Debug)]
pub struct SimLayout {
    /// Register checkpoints, one packed word per simulated processor.
    pub regs: Region,
    /// Staged registers (compute-round output).
    pub staged_regs: Region,
    /// Staged writes (compute-round output).
    pub staged_write: Region,
    /// The simulated shared memory.
    pub smem: Region,
}

/// [`TaskSet`] implementing the two-rounds-per-step simulation of a
/// [`SimProgram`].
#[derive(Clone, Debug)]
pub struct SimTasks<P> {
    prog: P,
    layout: SimLayout,
}

impl<P: SimProgram> SimTasks<P> {
    /// Allocate the simulation's regions from `layout`.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the packing limits: ≥ 1 processor,
    /// memory < 65 535 cells, τ ≤ 32 766 steps.
    pub fn new(layout: &mut LayoutBuilder, prog: P) -> Self {
        let n = prog.processors();
        assert!(n > 0, "simulated program needs at least one processor");
        assert!(
            prog.memory_size() < NOP_ADDR as usize,
            "simulated memory must fit 16-bit addressing (< 65535 cells)"
        );
        assert!(prog.steps() <= 32_766, "too many simulated steps for 16-bit round tags");
        let sim_layout = SimLayout {
            regs: layout.alloc(n),
            staged_regs: layout.alloc(n),
            staged_write: layout.alloc(n),
            smem: layout.alloc(prog.memory_size()),
        };
        SimTasks { prog, layout: sim_layout }
    }

    /// The simulation's memory layout.
    pub fn layout(&self) -> &SimLayout {
        &self.layout
    }

    /// The simulated program.
    pub fn program(&self) -> &P {
        &self.prog
    }

    /// Initialize the simulated input (called via the driving algorithm's
    /// `init_memory`).
    pub fn init_memory(&self, mem: &mut SharedMemory) {
        let mut sim = vec![0; self.prog.memory_size()];
        self.prog.init_memory(&mut sim);
        for (i, v) in sim.into_iter().enumerate() {
            mem.poke(self.layout.smem.at(i), v);
        }
    }

    /// Extract the simulated memory after a run.
    pub fn extract_memory(&self, mem: &SharedMemory) -> Vec<Word> {
        self.layout.smem.snapshot(mem)
    }

    /// Extract simulated processor `i`'s registers after a run.
    pub fn extract_regs(&self, mem: &SharedMemory, i: usize) -> Regs {
        unpack_regs(mem.peek(self.layout.regs.at(i)))
    }

    /// The simulated step and phase of round `k` (1-based): returns
    /// `(t, is_compute)`.
    #[inline]
    fn phase(round: Word) -> (usize, bool) {
        (((round - 1) / 2) as usize, round % 2 == 1)
    }
}

impl<P: SimProgram> TaskSet for SimTasks<P> {
    fn len(&self) -> usize {
        self.prog.processors()
    }

    fn rounds(&self) -> Word {
        2 * self.prog.steps() as Word
    }

    fn plan(&self, round: Word, i: usize, values: &[Word], reads: &mut ReadSet) {
        let (t, compute) = Self::phase(round);
        if compute {
            match values.len() {
                0 => {
                    reads.push(self.layout.staged_regs.at(i)); // done check
                    reads.push(self.layout.regs.at(i));
                }
                2 => {
                    if tag_of(values[0]) == round {
                        return; // already staged this round
                    }
                    let regs = unpack_regs(values[1]);
                    let addr = self.prog.read_addr(i, t, &regs);
                    reads.push(self.layout.smem.at(addr));
                }
                _ => {}
            }
        } else if values.is_empty() {
            reads.push(self.layout.regs.at(i)); // done check
            reads.push(self.layout.staged_regs.at(i));
            reads.push(self.layout.staged_write.at(i));
        }
    }

    fn run(&self, round: Word, i: usize, values: &[Word], writes: &mut WriteSet) -> bool {
        let (t, compute) = Self::phase(round);
        if compute {
            if tag_of(values[0]) == round {
                return true;
            }
            let regs = unpack_regs(values[1]);
            let operand = (values[2] & 0xFFFF_FFFF) as u32;
            let (new_regs, write) = self.prog.step(i, t, &regs, operand);
            // The tagged cell (staged_regs, the doneness witness) is written
            // LAST: a processor stopped between its two atomic word writes
            // must not leave the task looking complete with a stale payload.
            writes.push(self.layout.staged_write.at(i), pack_write(round, write));
            writes.push(self.layout.staged_regs.at(i), pack_regs(round, new_regs));
            false
        } else {
            if tag_of(values[0]) == round {
                return true;
            }
            debug_assert_eq!(tag_of(values[1]), round - 1, "compute round must precede commit");
            let staged_regs = unpack_regs(values[1]);
            // Same ordering rule: the simulated write lands first, the
            // tagged register checkpoint (the doneness witness) last.
            if let SimWrite::Write { addr, value } = unpack_write(values[2]) {
                writes.push(self.layout.smem.at(addr), value as Word);
            }
            writes.push(self.layout.regs.at(i), pack_regs(round, staged_regs));
            false
        }
    }

    fn is_done(&self, mem: &SharedMemory, round: Word, i: usize) -> bool {
        let (_, compute) = Self::phase(round);
        let cell = if compute { self.layout.staged_regs } else { self.layout.regs };
        tag_of(mem.peek(cell.at(i))) == round
    }

    fn max_reads(&self) -> usize {
        3
    }

    fn max_writes(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrips() {
        let r = Regs::new(0x12_3456, 0xAB_CDEF);
        let v = pack_regs(7, r);
        assert_eq!(tag_of(v), 7);
        assert_eq!(unpack_regs(v), r);

        let w = SimWrite::Write { addr: 1234, value: 0xDEAD_BEEF };
        let v = pack_write(9, w);
        assert_eq!(tag_of(v), 9);
        assert_eq!(unpack_write(v), w);

        let v = pack_write(3, SimWrite::Nop);
        assert_eq!(tag_of(v), 3);
        assert_eq!(unpack_write(v), SimWrite::Nop);
    }

    #[test]
    fn rounds_alternate_compute_commit() {
        assert_eq!(SimTasks::<&dyn SimProgram>::phase(1), (0, true));
        assert_eq!(SimTasks::<&dyn SimProgram>::phase(2), (0, false));
        assert_eq!(SimTasks::<&dyn SimProgram>::phase(7), (3, true));
        assert_eq!(SimTasks::<&dyn SimProgram>::phase(8), (3, false));
    }
}
