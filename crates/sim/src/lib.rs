//! # rfsp-sim — fault-tolerant execution of arbitrary PRAM programs
//!
//! Theorem 4.1 of Kanellakis & Shvartsman (PODC 1991): any `N`-processor
//! PRAM algorithm can be executed on a restartable fail-stop `P`-processor
//! CRCW PRAM, with completed work
//! `S = O(min{N + P log²N + M log N, N·P^{0.59}})` per simulated step and
//! overhead ratio `σ = O(log² N)`. The execution is the *iterated
//! Write-All paradigm* of [KPS 90]/[Shv 89]: each simulated step becomes
//! two rounds of `N` idempotent tasks (compute into staging, then commit),
//! driven by the fault-tolerant Write-All engines of `rfsp-core`.
//!
//! * [`program`] — the [`SimProgram`] description of the simulated machine
//!   and a failure-free reference executor.
//! * [`tasks`] — the two-rounds-per-step [`TaskSet`](rfsp_core::TaskSet)
//!   encoding (register checkpoints, staging, round tags).
//! * [`executor`] — [`simulate`]: run a program on `P` faulty processors
//!   under any adversary, with engine choice (X / V / interleaved).
//! * [`programs`] — classic PRAM kernels: reduction, prefix sums, maximum,
//!   odd-even transposition sort, pointer-jumping list ranking.
//!
//! ```
//! use rfsp_sim::{simulate, Engine, programs::ParallelSum};
//! use rfsp_pram::{NoFailures, RunLimits};
//!
//! # fn main() -> Result<(), rfsp_pram::PramError> {
//! let prog = ParallelSum::new(vec![1, 2, 3, 4, 5, 6, 7, 8]);
//! let report = simulate(prog.clone(), 4, Engine::Interleaved,
//!                       &mut NoFailures, RunLimits::default())?;
//! assert_eq!(report.memory[0], prog.expected() as u64);
//! # Ok(())
//! # }
//! ```

pub mod executor;
pub mod program;
pub mod programs;
pub mod tasks;

pub use executor::{
    simulate, simulate_observed, simulate_with_mode, simulate_with_mode_observed, Engine, SimReport,
};
pub use program::{reference_run, Regs, SimProgram, SimWrite, REG_MAX};
pub use tasks::{SimLayout, SimTasks};
