//! Parallel maximum: tree reduction with `max` in `O(log N)` steps.

use rfsp_pram::Word;

use crate::program::{Regs, SimProgram, SimWrite, REG_MAX};

/// Tree-reduction maximum: after the run, simulated cell 0 holds
/// `max(values)`.
#[derive(Clone, Debug)]
pub struct MaxFind {
    values: Vec<u32>,
    n: usize,
}

impl MaxFind {
    /// Find the maximum of these values (each < 2²⁴).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or any value exceeds 24 bits.
    pub fn new(values: Vec<u32>) -> Self {
        assert!(!values.is_empty(), "need at least one value");
        assert!(values.iter().all(|&v| v <= REG_MAX), "values must fit 24-bit registers");
        let n = values.len().next_power_of_two();
        MaxFind { values, n }
    }

    /// The expected result.
    pub fn expected(&self) -> u32 {
        *self.values.iter().max().expect("nonempty")
    }
}

impl SimProgram for MaxFind {
    fn processors(&self) -> usize {
        self.n
    }

    fn memory_size(&self) -> usize {
        self.n
    }

    fn steps(&self) -> usize {
        1 + self.n.trailing_zeros() as usize
    }

    fn init_memory(&self, mem: &mut [Word]) {
        for (i, &v) in self.values.iter().enumerate() {
            mem[i] = v as Word;
        }
        // Padding cells stay zero, the identity for max over u32 inputs.
    }

    fn read_addr(&self, pid: usize, t: usize, _regs: &Regs) -> usize {
        if t == 0 {
            return pid;
        }
        let stride = 1usize << (t - 1);
        if pid.is_multiple_of(stride * 2) {
            pid + stride
        } else {
            pid
        }
    }

    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        if t == 0 {
            return (Regs::new(value, 0), SimWrite::Nop);
        }
        let stride = 1usize << (t - 1);
        if pid.is_multiple_of(stride * 2) {
            let a = regs.a.max(value);
            (Regs::new(a, 0), SimWrite::Write { addr: pid, value: a })
        } else {
            (*regs, SimWrite::Nop)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::reference_run;

    #[test]
    fn reference_max() {
        let prog = MaxFind::new(vec![3, 141, 59, 26, 5]);
        assert_eq!(reference_run(&prog)[0], 141);
        assert_eq!(prog.expected(), 141);
    }

    #[test]
    fn max_at_every_position() {
        for pos in 0..6 {
            let mut v = vec![1u32; 6];
            v[pos] = 1000;
            let prog = MaxFind::new(v);
            assert_eq!(reference_run(&prog)[0], 1000, "pos={pos}");
        }
    }
}
