//! Connected components by label propagation: one processor per vertex.
//!
//! Every vertex starts labeled with its own id and repeatedly takes the
//! minimum of its label and one neighbor's label, scanning its neighbors
//! round-robin (one per step, keeping the kernel COMMON-legal: each cell
//! has a single writer). After enough rounds every vertex carries the
//! minimum vertex id of its component.
//!
//! This is the repository's stress kernel for *dynamic* addressing: the
//! label read of each odd step targets the neighbor id fetched one step
//! earlier.

use rfsp_pram::Word;

use crate::program::{Regs, SimProgram, SimWrite};

/// Connected components of an undirected graph (≤ 2¹² vertices).
///
/// Simulated memory layout: labels in `[0, n)`, then a padded adjacency
/// table `adj[i][j] = neighbor j of vertex i` in row-major order
/// (isolated slots point back at the vertex itself).
#[derive(Clone, Debug)]
pub struct Components {
    adj: Vec<Vec<usize>>,
    n: usize,
    max_deg: usize,
    rounds: usize,
}

impl Components {
    /// Build from an undirected edge list over `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 4096`, or an endpoint is out of range.
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n > 0, "need at least one vertex");
        assert!(n <= 4096, "kernel sized for ≤ 4096 vertices");
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            if u != v {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        let max_deg = adj.iter().map(Vec::len).max().unwrap_or(0).max(1);
        // One round-robin sweep moves each label at most one hop along one
        // incident edge; max_deg sweeps guarantee every edge was scanned,
        // and n such super-rounds cover the longest possible chain.
        let rounds = max_deg * n;
        Components { adj, n, max_deg, rounds }
    }

    /// The expected component label (minimum vertex id) of every vertex,
    /// computed by a sequential union-find-free BFS.
    pub fn expected(&self) -> Vec<Word> {
        let mut label: Vec<usize> = (0..self.n).collect();
        // Repeated relaxation (cheap at these sizes).
        let mut changed = true;
        while changed {
            changed = false;
            for u in 0..self.n {
                for &v in &self.adj[u] {
                    let m = label[u].min(label[v]);
                    if label[u] != m || label[v] != m {
                        label[u] = m;
                        label[v] = m;
                        changed = true;
                    }
                }
            }
        }
        label.into_iter().map(|l| l as Word).collect()
    }

    fn adj_base(&self) -> usize {
        self.n
    }
}

impl SimProgram for Components {
    fn processors(&self) -> usize {
        self.n
    }

    fn memory_size(&self) -> usize {
        self.n + self.n * self.max_deg
    }

    fn steps(&self) -> usize {
        2 * self.rounds
    }

    fn init_memory(&self, mem: &mut [Word]) {
        for i in 0..self.n {
            mem[i] = i as Word;
            for j in 0..self.max_deg {
                let nbr = self.adj[i].get(j).copied().unwrap_or(i);
                mem[self.adj_base() + i * self.max_deg + j] = nbr as Word;
            }
        }
    }

    fn read_addr(&self, pid: usize, t: usize, regs: &Regs) -> usize {
        if t.is_multiple_of(2) {
            // Fetch this round's neighbor id.
            let j = (t / 2) % self.max_deg;
            self.adj_base() + pid * self.max_deg + j
        } else {
            // Fetch that neighbor's label (dynamic address).
            (regs.b as usize).min(self.n - 1)
        }
    }

    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        if t == 0 {
            // Bootstrap: a = own label (= own id), b = first neighbor.
            return (Regs::new(pid as u32, value), SimWrite::Nop);
        }
        if t.is_multiple_of(2) {
            (Regs::new(regs.a, value), SimWrite::Nop)
        } else {
            let a = regs.a.min(value);
            (Regs::new(a, regs.b), SimWrite::Write { addr: pid, value: a })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::reference_run;

    fn labels(prog: &Components) -> Vec<Word> {
        reference_run(prog)[..prog.n].to_vec()
    }

    #[test]
    fn path_graph_is_one_component() {
        let edges: Vec<(usize, usize)> = (0..7).map(|i| (i, i + 1)).collect();
        let prog = Components::new(8, &edges);
        assert_eq!(labels(&prog), vec![0; 8]);
        assert_eq!(prog.expected(), vec![0; 8]);
    }

    #[test]
    fn two_components_and_isolated_vertex() {
        // {0,1,2}, {3,4}, {5}
        let prog = Components::new(6, &[(0, 1), (1, 2), (3, 4)]);
        let expect = vec![0, 0, 0, 3, 3, 5];
        assert_eq!(labels(&prog), expect);
        assert_eq!(prog.expected(), expect);
    }

    #[test]
    fn ring_and_star() {
        let ring: Vec<(usize, usize)> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
        let prog = Components::new(10, &ring);
        assert_eq!(labels(&prog), vec![0; 10]);
        let star: Vec<(usize, usize)> = (1..9).map(|i| (0, i)).collect();
        let prog = Components::new(9, &star);
        assert_eq!(labels(&prog), vec![0; 9]);
    }

    #[test]
    fn self_loops_and_duplicate_edges_are_harmless() {
        let prog = Components::new(4, &[(0, 0), (1, 2), (2, 1)]);
        assert_eq!(labels(&prog), vec![0, 1, 1, 3]);
    }
}
