//! Parallel reduction: sum `N` values in `O(log N)` steps.

use rfsp_pram::Word;

use crate::program::{Regs, SimProgram, SimWrite};

/// Tree reduction over `values`: after the run, simulated cell 0 holds the
/// sum. `N` = number of values (padded internally to a power of two).
///
/// Schedule: step 0 loads `mem[i]` into `a`; step `t ≥ 1` has processor
/// `i` (when `i` is a multiple of `2^t`) read `mem[i + 2^{t-1}]`, add it
/// into `a`, and write `mem[i] = a`.
#[derive(Clone, Debug)]
pub struct ParallelSum {
    values: Vec<u32>,
    n: usize,
}

impl ParallelSum {
    /// Sum these values (at least one; the sum must fit the 24-bit
    /// simulated registers).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or the total exceeds 24 bits.
    pub fn new(values: Vec<u32>) -> Self {
        assert!(!values.is_empty(), "need at least one value");
        let total: u64 = values.iter().map(|&v| v as u64).sum();
        assert!(total <= crate::program::REG_MAX as u64, "sum must fit 24-bit registers");
        let n = values.len().next_power_of_two();
        ParallelSum { values, n }
    }

    /// The expected result.
    pub fn expected(&self) -> u32 {
        self.values.iter().sum()
    }
}

impl SimProgram for ParallelSum {
    fn processors(&self) -> usize {
        self.n
    }

    fn memory_size(&self) -> usize {
        self.n
    }

    fn steps(&self) -> usize {
        1 + self.n.trailing_zeros() as usize
    }

    fn init_memory(&self, mem: &mut [Word]) {
        for (i, &v) in self.values.iter().enumerate() {
            mem[i] = v as Word;
        }
    }

    fn read_addr(&self, pid: usize, t: usize, _regs: &Regs) -> usize {
        if t == 0 {
            return pid;
        }
        let stride = 1usize << (t - 1);
        if pid.is_multiple_of(stride * 2) {
            pid + stride
        } else {
            pid // inactive processors re-read their own cell
        }
    }

    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        if t == 0 {
            return (Regs::new(value, 0), SimWrite::Nop);
        }
        let stride = 1usize << (t - 1);
        if pid.is_multiple_of(stride * 2) {
            let a = regs.a.wrapping_add(value) & crate::program::REG_MAX;
            (Regs::new(a, 0), SimWrite::Write { addr: pid, value: a })
        } else {
            (*regs, SimWrite::Nop)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::reference_run;

    #[test]
    fn reference_sums() {
        let prog = ParallelSum::new(vec![1, 2, 3, 4, 5]);
        let mem = reference_run(&prog);
        assert_eq!(mem[0], 15);
        assert_eq!(prog.expected(), 15);
    }

    #[test]
    fn power_of_two_and_singleton() {
        let prog = ParallelSum::new((1..=16).collect());
        assert_eq!(reference_run(&prog)[0], 136);
        let prog = ParallelSum::new(vec![9]);
        assert_eq!(reference_run(&prog)[0], 9);
    }
}
