//! Odd-even transposition sort: `N` steps on `N` processors.

use rfsp_pram::Word;

use crate::program::{Regs, SimProgram, SimWrite, REG_MAX};

/// Odd-even transposition sort: after the run, the simulated memory holds
/// the input in ascending order.
///
/// Schedule: step 0 loads `mem[i]` into `a`; step `t ≥ 1` compares the
/// pairs `(j, j+1)` with `j ≡ t-1 (mod 2)`: the left partner keeps the
/// minimum, the right the maximum, each writing its own cell (one read,
/// one write per processor — the own value rides in register `a`).
#[derive(Clone, Debug)]
pub struct OddEvenSort {
    values: Vec<u32>,
}

impl OddEvenSort {
    /// Sort these values (each < 2²⁴).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or any value exceeds 24 bits.
    pub fn new(values: Vec<u32>) -> Self {
        assert!(!values.is_empty(), "need at least one value");
        assert!(values.iter().all(|&v| v <= REG_MAX), "values must fit 24-bit registers");
        OddEvenSort { values }
    }

    /// The expected final memory.
    pub fn expected(&self) -> Vec<Word> {
        let mut v: Vec<Word> = self.values.iter().map(|&x| x as Word).collect();
        v.sort_unstable();
        v
    }

    /// This processor's partner at step `t ≥ 1`, if any.
    fn partner(&self, pid: usize, t: usize) -> Option<usize> {
        let n = self.values.len();
        let phase = (t - 1) % 2;
        if pid % 2 == phase {
            (pid + 1 < n).then_some(pid + 1)
        } else {
            pid.checked_sub(1)
        }
    }
}

impl SimProgram for OddEvenSort {
    fn processors(&self) -> usize {
        self.values.len()
    }

    fn memory_size(&self) -> usize {
        self.values.len()
    }

    fn steps(&self) -> usize {
        1 + self.values.len()
    }

    fn init_memory(&self, mem: &mut [Word]) {
        for (i, &v) in self.values.iter().enumerate() {
            mem[i] = v as Word;
        }
    }

    fn read_addr(&self, pid: usize, t: usize, _regs: &Regs) -> usize {
        if t == 0 {
            return pid;
        }
        self.partner(pid, t).unwrap_or(pid)
    }

    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        if t == 0 {
            return (Regs::new(value, 0), SimWrite::Nop);
        }
        match self.partner(pid, t) {
            Some(partner) => {
                let keep = if partner > pid {
                    regs.a.min(value) // left of the pair keeps the min
                } else {
                    regs.a.max(value) // right keeps the max
                };
                (Regs::new(keep, 0), SimWrite::Write { addr: pid, value: keep })
            }
            None => (*regs, SimWrite::Nop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::reference_run;

    #[test]
    fn reference_sorts() {
        let prog = OddEvenSort::new(vec![5, 3, 8, 1, 9, 2, 7, 4, 6]);
        assert_eq!(reference_run(&prog), prog.expected());
    }

    #[test]
    fn already_sorted_and_reverse() {
        let prog = OddEvenSort::new((1..=8).collect());
        assert_eq!(reference_run(&prog), prog.expected());
        let prog = OddEvenSort::new((1..=8).rev().collect());
        assert_eq!(reference_run(&prog), prog.expected());
    }

    #[test]
    fn duplicates_and_singleton() {
        let prog = OddEvenSort::new(vec![2, 2, 1, 1, 3, 3]);
        assert_eq!(reference_run(&prog), prog.expected());
        let prog = OddEvenSort::new(vec![42]);
        assert_eq!(reference_run(&prog), vec![42]);
    }
}
