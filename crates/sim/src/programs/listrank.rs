//! List ranking by pointer jumping: `O(log N)` steps.
//!
//! The canonical *non-oblivious* PRAM kernel: each step's read address
//! depends on a register (the current successor pointer), exercising the
//! simulation's dynamic-addressing path.

use rfsp_pram::Word;

use crate::program::{Regs, SimProgram, SimWrite};

/// Rank every node of a linked list (distance to the list's tail).
///
/// The list is given by a successor array: `succ[i]` is the next node, and
/// the tail points to itself. Simulated cell `i` holds a packed
/// `(succ << 16) | rank`; after `⌈log₂ N⌉` pointer-jumping steps every
/// node's rank is its distance to the tail.
#[derive(Clone, Debug)]
pub struct ListRanking {
    succ: Vec<usize>,
}

impl ListRanking {
    /// Rank the list with this successor array (tail points to itself).
    ///
    /// # Panics
    ///
    /// Panics if the array is empty, too long for 16-bit packing, or not a
    /// valid list (successors out of range).
    pub fn new(succ: Vec<usize>) -> Self {
        assert!(!succ.is_empty(), "need at least one node");
        assert!(succ.len() < (1 << 16), "list must fit 16-bit packing");
        assert!(succ.iter().all(|&s| s < succ.len()), "successors out of range");
        ListRanking { succ }
    }

    /// A straight-line list `0 → 1 → … → n-1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n` overflows 16-bit packing.
    pub fn chain(n: usize) -> Self {
        assert!(n > 0);
        let succ = (0..n).map(|i| (i + 1).min(n - 1)).collect();
        ListRanking::new(succ)
    }

    /// The expected rank of each node (distance to the tail), computed
    /// sequentially.
    pub fn expected_ranks(&self) -> Vec<u32> {
        let n = self.succ.len();
        let mut ranks = vec![0u32; n];
        for (i, rank) in ranks.iter_mut().enumerate() {
            let mut cur = i;
            let mut d = 0u32;
            while self.succ[cur] != cur {
                cur = self.succ[cur];
                d += 1;
                assert!(d as usize <= n, "successor array contains a cycle");
            }
            *rank = d;
        }
        ranks
    }

    /// Unpack a simulated cell into `(succ, rank)`.
    pub fn unpack(cell: Word) -> (usize, u32) {
        (((cell >> 16) & 0xFFFF) as usize, (cell & 0xFFFF) as u32)
    }

    fn pack(succ: usize, rank: u32) -> u32 {
        ((succ as u32) << 16) | (rank & 0xFFFF)
    }
}

impl SimProgram for ListRanking {
    fn processors(&self) -> usize {
        self.succ.len()
    }

    fn memory_size(&self) -> usize {
        self.succ.len()
    }

    fn steps(&self) -> usize {
        let n = self.succ.len();
        let log = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
        1 + log
    }

    fn init_memory(&self, mem: &mut [Word]) {
        for (i, &s) in self.succ.iter().enumerate() {
            let rank = if s == i { 0 } else { 1 };
            mem[i] = Self::pack(s, rank) as Word;
        }
    }

    fn read_addr(&self, pid: usize, t: usize, regs: &Regs) -> usize {
        if t == 0 {
            pid
        } else {
            // Non-oblivious: chase my current successor pointer.
            (regs.b as usize).min(self.succ.len() - 1)
        }
    }

    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        if t == 0 {
            let (succ, rank) = Self::unpack(value as Word);
            return (Regs::new(rank, succ as u32), SimWrite::Nop);
        }
        let (my_rank, my_succ) = (regs.a, regs.b as usize);
        if my_succ == pid {
            // Tail: nothing to do.
            return (*regs, SimWrite::Nop);
        }
        let (succ_succ, succ_rank) = Self::unpack(value as Word);
        // rank += rank(succ); succ = succ(succ). A successor that is its
        // own successor is the tail; jumping to it is idempotent.
        let new_rank = my_rank + succ_rank;
        let new_succ = succ_succ;
        let regs = Regs::new(new_rank, new_succ as u32);
        (regs, SimWrite::Write { addr: pid, value: Self::pack(new_succ, new_rank) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::reference_run;

    fn ranks_from(mem: &[Word]) -> Vec<u32> {
        mem.iter().map(|&c| ListRanking::unpack(c).1).collect()
    }

    #[test]
    fn chain_ranks_are_distances() {
        let prog = ListRanking::chain(8);
        let mem = reference_run(&prog);
        assert_eq!(ranks_from(&mem), vec![7, 6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(prog.expected_ranks(), vec![7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn scrambled_list() {
        // 3 → 0 → 4 → 1 → 2(tail)
        let succ = vec![4, 2, 2, 0, 1];
        let prog = ListRanking::new(succ);
        let mem = reference_run(&prog);
        assert_eq!(ranks_from(&mem), prog.expected_ranks());
        assert_eq!(prog.expected_ranks(), vec![3, 1, 0, 4, 2]);
    }

    #[test]
    fn singleton_list() {
        let prog = ListRanking::chain(1);
        let mem = reference_run(&prog);
        assert_eq!(ranks_from(&mem), vec![0]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_are_rejected_by_expected_ranks() {
        let prog = ListRanking::new(vec![1, 0]);
        let _ = prog.expected_ranks();
    }
}
