//! Dense matrix-vector multiplication: `y = A·x` with one processor per
//! row, `2m` steps (two reads per term: the matrix entry, then the vector
//! entry).

use rfsp_pram::Word;

use crate::program::{Regs, SimProgram, SimWrite, REG_MAX};

/// `y = A·x` for an `n × m` matrix, one simulated processor per row.
///
/// Simulated memory layout: `A` row-major in `[0, n·m)`, `x` in
/// `[n·m, n·m + m)`, `y` in `[n·m + m, n·m + m + n)`.
///
/// Schedule: step `2t` reads `A[row][t]` into register `b`; step `2t+1`
/// reads `x[t]`, accumulates `a += b·x[t]`, and (on the last term) writes
/// `y[row]`.
#[derive(Clone, Debug)]
pub struct MatVec {
    a: Vec<Vec<u32>>,
    x: Vec<u32>,
    n: usize,
    m: usize,
}

impl MatVec {
    /// Multiply `a` (a rectangular `n × m` matrix) by `x` (length `m`).
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged matrix, a mismatched vector, or if any
    /// dot product overflows the 24-bit simulated registers.
    pub fn new(a: Vec<Vec<u32>>, x: Vec<u32>) -> Self {
        assert!(!a.is_empty(), "matrix needs at least one row");
        let m = a[0].len();
        assert!(m > 0, "matrix needs at least one column");
        assert!(a.iter().all(|row| row.len() == m), "matrix must be rectangular");
        assert_eq!(x.len(), m, "vector length must match the column count");
        let n = a.len();
        for row in &a {
            let dot: u64 = row.iter().zip(&x).map(|(&aij, &xj)| aij as u64 * xj as u64).sum();
            assert!(dot <= REG_MAX as u64, "dot product must fit 24-bit registers");
        }
        MatVec { a, x, n, m }
    }

    /// The expected product vector.
    pub fn expected(&self) -> Vec<Word> {
        self.a
            .iter()
            .map(|row| row.iter().zip(&self.x).map(|(&aij, &xj)| (aij * xj) as Word).sum::<Word>())
            .collect()
    }

    /// Where row `i`'s result lands in simulated memory.
    pub fn y_index(&self, i: usize) -> usize {
        self.n * self.m + self.m + i
    }
}

impl SimProgram for MatVec {
    fn processors(&self) -> usize {
        self.n
    }

    fn memory_size(&self) -> usize {
        self.n * self.m + self.m + self.n
    }

    fn steps(&self) -> usize {
        2 * self.m
    }

    fn init_memory(&self, mem: &mut [Word]) {
        for (i, row) in self.a.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                mem[i * self.m + j] = v as Word;
            }
        }
        for (j, &v) in self.x.iter().enumerate() {
            mem[self.n * self.m + j] = v as Word;
        }
    }

    fn read_addr(&self, pid: usize, t: usize, _regs: &Regs) -> usize {
        let term = t / 2;
        if t.is_multiple_of(2) {
            pid * self.m + term // A[pid][term]
        } else {
            self.n * self.m + term // x[term]
        }
    }

    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        let term = t / 2;
        if t.is_multiple_of(2) {
            // Fetch the matrix entry into b; the accumulator rides in a.
            (Regs::new(regs.a, value), SimWrite::Nop)
        } else {
            let acc = (regs.a + regs.b * value) & REG_MAX;
            let write = if term + 1 == self.m {
                SimWrite::Write { addr: self.y_index(pid), value: acc }
            } else {
                SimWrite::Nop
            };
            (Regs::new(acc, 0), write)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::reference_run;

    #[test]
    fn reference_multiplies() {
        let a = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let x = vec![10, 100];
        let prog = MatVec::new(a, x);
        let mem = reference_run(&prog);
        let y: Vec<Word> = (0..3).map(|i| mem[prog.y_index(i)]).collect();
        assert_eq!(y, vec![210, 430, 650]);
        assert_eq!(prog.expected(), vec![210, 430, 650]);
    }

    #[test]
    fn identity_matrix() {
        let n = 5;
        let a: Vec<Vec<u32>> =
            (0..n).map(|i| (0..n).map(|j| u32::from(i == j)).collect()).collect();
        let x: Vec<u32> = (1..=n as u32).collect();
        let prog = MatVec::new(a, x.clone());
        let mem = reference_run(&prog);
        let y: Vec<Word> = (0..n).map(|i| mem[prog.y_index(i)]).collect();
        assert_eq!(y, x.iter().map(|&v| v as Word).collect::<Vec<_>>());
    }

    #[test]
    fn single_row_and_column() {
        let prog = MatVec::new(vec![vec![7]], vec![6]);
        let mem = reference_run(&prog);
        assert_eq!(mem[prog.y_index(0)], 42);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_matrix_rejected() {
        let _ = MatVec::new(vec![vec![1, 2], vec![3]], vec![1, 1]);
    }
}
