//! Classic synchronous PRAM kernels to simulate.
//!
//! Each program follows the same convention: step 0 loads the processor's
//! own cell into register `a` (the standard fetch into local registers),
//! and subsequent steps are the textbook data-parallel schedule. All
//! programs are COMMON-CRCW legal and come with closed-form expected
//! outputs used by tests and experiments.

pub mod components;
pub mod listrank;
pub mod matvec;
pub mod maxfind;
pub mod prefix;
pub mod sort;
pub mod sum;

pub use components::Components;
pub use listrank::ListRanking;
pub use matvec::MatVec;
pub use maxfind::MaxFind;
pub use prefix::PrefixSums;
pub use sort::OddEvenSort;
pub use sum::ParallelSum;
