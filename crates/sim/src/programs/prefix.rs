//! Parallel prefix sums by recursive doubling: `O(log N)` steps.

use rfsp_pram::Word;

use crate::program::{Regs, SimProgram, SimWrite, REG_MAX};

/// Inclusive prefix sums: after the run, simulated cell `i` holds
/// `values[0] + … + values[i]`.
///
/// Schedule (Hillis–Steele doubling): step 0 loads `mem[i]` into `a`;
/// step `t ≥ 1` has processor `i` read `mem[i - 2^{t-1}]` (when
/// `i ≥ 2^{t-1}`), add it into `a`, and write `mem[i] = a`.
#[derive(Clone, Debug)]
pub struct PrefixSums {
    values: Vec<u32>,
}

impl PrefixSums {
    /// Prefix-sum these values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or the total exceeds 24 bits.
    pub fn new(values: Vec<u32>) -> Self {
        assert!(!values.is_empty(), "need at least one value");
        let total: u64 = values.iter().map(|&v| v as u64).sum();
        assert!(total <= REG_MAX as u64, "sums must fit 24-bit registers");
        PrefixSums { values }
    }

    /// The expected final memory.
    pub fn expected(&self) -> Vec<Word> {
        self.values
            .iter()
            .scan(0u32, |acc, &v| {
                *acc += v;
                Some(*acc as Word)
            })
            .collect()
    }
}

impl SimProgram for PrefixSums {
    fn processors(&self) -> usize {
        self.values.len()
    }

    fn memory_size(&self) -> usize {
        self.values.len()
    }

    fn steps(&self) -> usize {
        let n = self.values.len();
        1 + (usize::BITS - (n - 1).leading_zeros()).max(1) as usize
    }

    fn init_memory(&self, mem: &mut [Word]) {
        for (i, &v) in self.values.iter().enumerate() {
            mem[i] = v as Word;
        }
    }

    fn read_addr(&self, pid: usize, t: usize, _regs: &Regs) -> usize {
        if t == 0 {
            return pid;
        }
        let stride = 1usize << (t - 1);
        pid.saturating_sub(stride)
    }

    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        if t == 0 {
            return (Regs::new(value, 0), SimWrite::Write { addr: pid, value });
        }
        let stride = 1usize << (t - 1);
        if pid >= stride {
            let a = (regs.a + value) & REG_MAX;
            (Regs::new(a, 0), SimWrite::Write { addr: pid, value: a })
        } else {
            (*regs, SimWrite::Write { addr: pid, value: regs.a })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::reference_run;

    #[test]
    fn reference_prefix_sums() {
        let prog = PrefixSums::new(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        assert_eq!(reference_run(&prog), prog.expected());
        assert_eq!(prog.expected(), vec![3, 4, 8, 9, 14, 23, 25, 31]);
    }

    #[test]
    fn non_power_of_two_lengths() {
        for n in [1usize, 2, 3, 5, 7, 13] {
            let prog = PrefixSums::new((1..=n as u32).collect());
            assert_eq!(reference_run(&prog), prog.expected(), "n={n}");
        }
    }
}
