//! The fault-tolerant simulation driver (Theorem 4.1).
//!
//! Wires a [`SimProgram`] through [`SimTasks`] into one of the Write-All
//! engines of `rfsp-core` and runs it on the restartable fail-stop machine
//! under an arbitrary adversary. The choice of engine maps onto the
//! paper's results:
//!
//! * [`Engine::X`] — terminates under **any** failure/restart pattern with
//!   sub-quadratic work (`O(N·P^{0.59})` per step);
//! * [`Engine::V`] — `O(N + P log²N + M log N)` per step, the efficient
//!   half;
//! * [`Engine::Interleaved`] — both at once: the Theorem 4.1/4.9 strategy,
//!   `S = O(min{N + P log²N + M log N, N·P^{0.59}})` per simulated step
//!   and overhead ratio `O(log² N)`.

use rfsp_core::{AlgoV, AlgoX, Interleaved, XOptions};
use rfsp_pram::{
    Adversary, LayoutBuilder, Machine, NoopObserver, Observer, PramError, Program, RunLimits,
    RunReport, Word, WriteMode,
};

use crate::program::SimProgram;
use crate::tasks::SimTasks;

/// Which Write-All engine drives the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Algorithm X: guaranteed termination under any adversary.
    X,
    /// Algorithm V: efficient when failures are bounded.
    V,
    /// Interleaved V+X (the paper's Theorem 4.1 configuration).
    #[default]
    Interleaved,
}

/// Result of a fault-tolerant simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// The machine-level run report (completed work, pattern, …).
    pub run: RunReport,
    /// Final simulated shared memory.
    pub memory: Vec<Word>,
    /// Number of simulated processors `N`.
    pub sim_processors: usize,
    /// Number of simulated steps `τ`.
    pub sim_steps: usize,
}

impl SimReport {
    /// The work-optimality ratio of Corollary 4.12: completed work divided
    /// by the simulated `Parallel-time × Processors` product `τ·N`.
    pub fn work_ratio(&self) -> f64 {
        self.run.stats.completed_work() as f64
            / (self.sim_steps as f64 * self.sim_processors as f64).max(1.0)
    }
}

/// Run `prog` on `p` restartable fail-stop processors under `adversary`.
///
/// The simulated machine's COMMON CRCW semantics are enforced end-to-end:
/// concurrent simulated writes become concurrent machine writes in the
/// commit rounds. Use [`simulate_with_mode`] for ARBITRARY simulated
/// programs (simulated on a machine of the same type, per Theorem 4.1's
/// statement).
///
/// # Errors
///
/// Any [`PramError`] from the underlying machine; notably
/// [`PramError::CycleLimit`] if `limits` are exhausted.
pub fn simulate<P, A>(
    prog: P,
    p: usize,
    engine: Engine,
    adversary: &mut A,
    limits: RunLimits,
) -> Result<SimReport, PramError>
where
    P: SimProgram + Sync + Clone,
    A: Adversary,
{
    simulate_with_mode(prog, p, engine, adversary, limits, WriteMode::Common)
}

/// [`simulate`] streaming every machine event of the simulating run to
/// `observer` (see `rfsp_pram::trace`).
///
/// # Errors
///
/// Any [`PramError`] from the underlying machine.
pub fn simulate_observed<P, A>(
    prog: P,
    p: usize,
    engine: Engine,
    adversary: &mut A,
    limits: RunLimits,
    observer: &mut dyn Observer,
) -> Result<SimReport, PramError>
where
    P: SimProgram + Sync + Clone,
    A: Adversary,
{
    simulate_with_mode_observed(prog, p, engine, adversary, limits, WriteMode::Common, observer)
}

/// [`simulate`] with explicit machine write semantics.
///
/// # Errors
///
/// Any [`PramError`] from the underlying machine.
pub fn simulate_with_mode<P, A>(
    prog: P,
    p: usize,
    engine: Engine,
    adversary: &mut A,
    limits: RunLimits,
    mode: WriteMode,
) -> Result<SimReport, PramError>
where
    P: SimProgram + Sync + Clone,
    A: Adversary,
{
    simulate_with_mode_observed(prog, p, engine, adversary, limits, mode, &mut NoopObserver)
}

/// [`simulate_with_mode`] with an event stream.
///
/// # Errors
///
/// Any [`PramError`] from the underlying machine.
pub fn simulate_with_mode_observed<P, A>(
    prog: P,
    p: usize,
    engine: Engine,
    adversary: &mut A,
    limits: RunLimits,
    mode: WriteMode,
    observer: &mut dyn Observer,
) -> Result<SimReport, PramError>
where
    P: SimProgram + Sync + Clone,
    A: Adversary,
{
    if mode == WriteMode::Priority {
        // Remark 4 of the paper: PRIORITY CRCW PRAMs cannot be directly
        // simulated with this framework — algorithm X lacks the processor
        // allocation monotonicity that would map higher-numbered simulating
        // processors onto higher-numbered simulated ones.
        return Err(PramError::InvalidConfig {
            detail: "PRIORITY CRCW programs cannot be directly simulated (paper Remark 4)".into(),
        });
    }
    let sim_processors = prog.processors();
    let sim_steps = prog.steps();
    let mut layout = LayoutBuilder::new();
    let tasks = SimTasks::new(&mut layout, prog);

    // A small shim is needed because each engine is a different Program
    // type; macro-free dispatch via three arms.
    match engine {
        Engine::X => {
            let algo = XSim { inner: AlgoX::new(&mut layout, tasks, p, XOptions::default()) };
            let budget = algo.inner.required_budget();
            let mut machine = Machine::new(&algo, p, budget)?;
            machine.set_write_mode(mode);
            let run = machine.run_observed(adversary, limits, observer)?;
            let memory = algo.inner.tasks().extract_memory(machine.memory());
            Ok(SimReport { run, memory, sim_processors, sim_steps })
        }
        Engine::V => {
            let algo = VSim { inner: AlgoV::new(&mut layout, tasks, p) };
            let budget = algo.inner.required_budget();
            let mut machine = Machine::new(&algo, p, budget)?;
            machine.set_write_mode(mode);
            let run = machine.run_observed(adversary, limits, observer)?;
            let memory = algo.inner.tasks().extract_memory(machine.memory());
            Ok(SimReport { run, memory, sim_processors, sim_steps })
        }
        Engine::Interleaved => {
            let algo = ISim { inner: Interleaved::new(&mut layout, tasks, p) };
            let budget = algo.inner.required_budget();
            let mut machine = Machine::new(&algo, p, budget)?;
            machine.set_write_mode(mode);
            let run = machine.run_observed(adversary, limits, observer)?;
            let memory = algo.inner.x_half().tasks().extract_memory(machine.memory());
            Ok(SimReport { run, memory, sim_processors, sim_steps })
        }
    }
}

// The engines' `init_memory` initializes their own bookkeeping; the shims
// additionally initialize the simulated input.
macro_rules! sim_shim {
    ($name:ident, $inner:ty) => {
        struct $name<P: SimProgram + Sync + Clone> {
            inner: $inner,
        }

        impl<P: SimProgram + Sync + Clone> Program for $name<P> {
            type Private = <$inner as Program>::Private;

            fn shared_size(&self) -> usize {
                self.inner.shared_size()
            }

            fn init_memory(&self, mem: &mut rfsp_pram::SharedMemory) {
                self.inner.init_memory(mem);
                self.tasks().init_memory(mem);
            }

            fn on_start(&self, pid: rfsp_pram::Pid) -> Self::Private {
                self.inner.on_start(pid)
            }

            fn plan(
                &self,
                pid: rfsp_pram::Pid,
                state: &Self::Private,
                values: &[Word],
                reads: &mut rfsp_pram::ReadSet,
            ) {
                self.inner.plan(pid, state, values, reads)
            }

            fn execute(
                &self,
                pid: rfsp_pram::Pid,
                state: &mut Self::Private,
                values: &[Word],
                writes: &mut rfsp_pram::WriteSet,
            ) -> rfsp_pram::Step {
                self.inner.execute(pid, state, values, writes)
            }

            fn is_complete(&self, mem: &rfsp_pram::SharedMemory) -> bool {
                self.inner.is_complete(mem)
            }

            fn completion_hint(&self, addr: usize, value: Word) -> rfsp_pram::CompletionHint {
                self.inner.completion_hint(addr, value)
            }
        }
    };
}

sim_shim!(XSim, AlgoX<SimTasks<P>>);
sim_shim!(VSim, AlgoV<SimTasks<P>>);
sim_shim!(ISim, Interleaved<SimTasks<P>>);

impl<P: SimProgram + Sync + Clone> XSim<P> {
    fn tasks(&self) -> &SimTasks<P> {
        self.inner.tasks()
    }
}
impl<P: SimProgram + Sync + Clone> VSim<P> {
    fn tasks(&self) -> &SimTasks<P> {
        self.inner.tasks()
    }
}
impl<P: SimProgram + Sync + Clone> ISim<P> {
    fn tasks(&self) -> &SimTasks<P> {
        self.inner.x_half().tasks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{reference_run, Regs, SimWrite};
    use rfsp_pram::NoFailures;

    /// Doubling counter: each processor increments its own cell twice.
    #[derive(Clone)]
    struct Inc {
        n: usize,
    }
    impl SimProgram for Inc {
        fn processors(&self) -> usize {
            self.n
        }
        fn memory_size(&self) -> usize {
            self.n
        }
        fn steps(&self) -> usize {
            2
        }
        fn init_memory(&self, _mem: &mut [Word]) {}
        fn read_addr(&self, pid: usize, _t: usize, _r: &Regs) -> usize {
            pid
        }
        fn step(&self, pid: usize, _t: usize, _r: &Regs, v: u32) -> (Regs, SimWrite) {
            (Regs::default(), SimWrite::Write { addr: pid, value: v + 1 })
        }
    }

    #[test]
    fn all_engines_match_the_reference() {
        let prog = Inc { n: 8 };
        let expected = reference_run(&prog);
        for engine in [Engine::X, Engine::V, Engine::Interleaved] {
            let report =
                simulate(prog.clone(), 4, engine, &mut NoFailures, RunLimits::default()).unwrap();
            assert_eq!(report.memory, expected, "engine {engine:?}");
        }
    }

    #[test]
    fn priority_simulation_is_rejected_per_remark_4() {
        let prog = Inc { n: 4 };
        let err = simulate_with_mode(
            prog,
            2,
            Engine::X,
            &mut NoFailures,
            RunLimits::default(),
            WriteMode::Priority,
        )
        .unwrap_err();
        assert!(matches!(err, rfsp_pram::PramError::InvalidConfig { .. }));
        assert!(err.to_string().contains("Remark 4"));
    }

    #[test]
    fn arbitrary_simulation_is_allowed() {
        let prog = Inc { n: 4 };
        let report = simulate_with_mode(
            prog.clone(),
            2,
            Engine::X,
            &mut NoFailures,
            RunLimits::default(),
            WriteMode::Arbitrary,
        )
        .unwrap();
        assert_eq!(report.memory, reference_run(&prog));
    }

    #[test]
    fn work_ratio_is_reported() {
        let prog = Inc { n: 8 };
        let report = simulate(prog, 2, Engine::X, &mut NoFailures, RunLimits::default()).unwrap();
        assert!(report.work_ratio() > 0.0);
        assert_eq!(report.sim_processors, 8);
        assert_eq!(report.sim_steps, 2);
    }
}
