//! The simulated machine: a synchronous, failure-free `N`-processor PRAM.
//!
//! Theorem 4.1 executes *any* `N`-processor PRAM algorithm on a restartable
//! fail-stop `P`-processor CRCW PRAM. [`SimProgram`] is the description of
//! the algorithm being simulated: a fixed number of synchronous steps, each
//! of which lets every simulated processor read one shared cell, update a
//! small register file, and write one shared cell — the standard
//! fetch/decode/execute decomposition the paper's §4.3 relies on ("these
//! steps are decomposed into a fixed number of assignments corresponding
//! to the standard fetch/decode/execute RAM instruction cycles in which
//! the data words are moved between the shared memory and the internal
//! processor registers").

use rfsp_pram::Word;

/// A simulated processor's register file: two 24-bit registers.
///
/// Registers are checkpointed to shared memory between simulated steps
/// (simulated processors must survive real-processor failures), packed
/// into one machine word together with a step tag — hence the 24-bit
/// width. Two registers suffice for the classic PRAM kernels shipped in
/// [`programs`](crate::programs); wider state can always be kept in the
/// simulated shared memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Regs {
    /// Accumulator.
    pub a: u32,
    /// Auxiliary register (pointer/partner).
    pub b: u32,
}

/// Maximum register value (24 bits).
pub const REG_MAX: u32 = (1 << 24) - 1;

impl Regs {
    /// Build a register file, masking to 24 bits.
    pub fn new(a: u32, b: u32) -> Self {
        Regs { a: a & REG_MAX, b: b & REG_MAX }
    }
}

/// The write half of a simulated step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimWrite {
    /// Write `value` to simulated cell `addr`.
    Write {
        /// Simulated address (< 65 535).
        addr: usize,
        /// Value (32 bits; simulated cells hold 32-bit values).
        value: u32,
    },
    /// No shared write this step.
    Nop,
}

/// A synchronous `N`-processor PRAM algorithm to simulate.
///
/// Semantics per step `t`: every simulated processor `pid` *concurrently*
/// reads `sim_mem[read_addr(pid, t, regs)]` (the memory state after step
/// `t-1`), then computes `step(pid, t, regs, value)`, producing its new
/// registers and at most one write. All writes of a step are applied
/// simultaneously (COMMON CRCW: concurrent writers of a cell must agree).
pub trait SimProgram {
    /// Number of simulated processors `N`.
    fn processors(&self) -> usize;

    /// Simulated shared-memory size (< 65 535 cells).
    fn memory_size(&self) -> usize;

    /// Number of synchronous steps `τ` (≤ 32 766).
    fn steps(&self) -> usize;

    /// Input: initialize the simulated memory.
    fn init_memory(&self, mem: &mut [Word]);

    /// The address simulated processor `pid` reads at step `t`. May depend
    /// on the current registers (non-oblivious algorithms like pointer
    /// jumping).
    fn read_addr(&self, pid: usize, t: usize, regs: &Regs) -> usize;

    /// One step of simulated processor `pid`: consume the read value,
    /// produce new registers and an optional write.
    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite);
}

impl<P: SimProgram + ?Sized> SimProgram for &P {
    fn processors(&self) -> usize {
        (**self).processors()
    }
    fn memory_size(&self) -> usize {
        (**self).memory_size()
    }
    fn steps(&self) -> usize {
        (**self).steps()
    }
    fn init_memory(&self, mem: &mut [Word]) {
        (**self).init_memory(mem)
    }
    fn read_addr(&self, pid: usize, t: usize, regs: &Regs) -> usize {
        (**self).read_addr(pid, t, regs)
    }
    fn step(&self, pid: usize, t: usize, regs: &Regs, value: u32) -> (Regs, SimWrite) {
        (**self).step(pid, t, regs, value)
    }
}

/// Reference executor: run the simulated program directly on a perfect
/// synchronous PRAM (no faults, no simulation layer). Used by tests and
/// experiments as ground truth.
///
/// # Panics
///
/// Panics if a simulated write conflicts under COMMON semantics (two
/// processors writing different values to one cell in one step) or if a
/// read/write address is out of range — both indicate a bug in the
/// simulated program.
pub fn reference_run<P: SimProgram>(prog: &P) -> Vec<Word> {
    let n = prog.processors();
    let mut mem = vec![0; prog.memory_size()];
    prog.init_memory(&mut mem);
    let mut regs = vec![Regs::default(); n];
    for t in 0..prog.steps() {
        // Concurrent reads against the pre-step memory.
        let reads: Vec<u32> = (0..n)
            .map(|pid| {
                let addr = prog.read_addr(pid, t, &regs[pid]);
                mem[addr] as u32
            })
            .collect();
        // Compute, then commit all writes simultaneously with COMMON checks.
        let mut pending: Vec<(usize, u32)> = Vec::new();
        for pid in 0..n {
            let (new_regs, write) = prog.step(pid, t, &regs[pid], reads[pid]);
            regs[pid] = new_regs;
            if let SimWrite::Write { addr, value } = write {
                pending.push((addr, value));
            }
        }
        pending.sort_unstable();
        for w in pending.windows(2) {
            assert!(
                w[0].0 != w[1].0 || w[0].1 == w[1].1,
                "COMMON write conflict at simulated cell {} in step {t}",
                w[0].0
            );
        }
        for (addr, value) in pending {
            mem[addr] = value as Word;
        }
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy program: every processor increments its own cell each step.
    struct Inc {
        n: usize,
        steps: usize,
    }
    impl SimProgram for Inc {
        fn processors(&self) -> usize {
            self.n
        }
        fn memory_size(&self) -> usize {
            self.n
        }
        fn steps(&self) -> usize {
            self.steps
        }
        fn init_memory(&self, _mem: &mut [Word]) {}
        fn read_addr(&self, pid: usize, _t: usize, _regs: &Regs) -> usize {
            pid
        }
        fn step(&self, pid: usize, _t: usize, _regs: &Regs, value: u32) -> (Regs, SimWrite) {
            (Regs::default(), SimWrite::Write { addr: pid, value: value + 1 })
        }
    }

    #[test]
    fn reference_executor_runs_steps() {
        let mem = reference_run(&Inc { n: 4, steps: 3 });
        assert_eq!(mem, vec![3, 3, 3, 3]);
    }

    #[test]
    fn regs_mask_to_24_bits() {
        let r = Regs::new(u32::MAX, 5);
        assert_eq!(r.a, REG_MAX);
        assert_eq!(r.b, 5);
    }

    #[test]
    #[should_panic(expected = "COMMON write conflict")]
    fn reference_executor_checks_common() {
        struct Clash;
        impl SimProgram for Clash {
            fn processors(&self) -> usize {
                2
            }
            fn memory_size(&self) -> usize {
                1
            }
            fn steps(&self) -> usize {
                1
            }
            fn init_memory(&self, _mem: &mut [Word]) {}
            fn read_addr(&self, _pid: usize, _t: usize, _regs: &Regs) -> usize {
                0
            }
            fn step(&self, pid: usize, _t: usize, _r: &Regs, _v: u32) -> (Regs, SimWrite) {
                (Regs::default(), SimWrite::Write { addr: 0, value: pid as u32 })
            }
        }
        let _ = reference_run(&Clash);
    }
}
