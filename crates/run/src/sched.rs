//! A FIFO round-robin turn queue: many sessions, one worker pool,
//! bounded starvation.
//!
//! The daemon runs each job on its own thread, but all jobs share one
//! [`SharedPool`](rfsp_pram::SharedPool) — only the turn-holder may drive
//! tick segments on it. The scheduler hands the turn out in strict FIFO
//! order and a yielding job goes to the back of the queue, so with `N`
//! runnable jobs no job waits more than `N − 1` quanta for its next turn.
//! That bound is the fairness claim the daemon tests assert.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

struct State {
    /// Jobs waiting for the turn, front = next to run.
    queue: VecDeque<u64>,
    /// The job currently holding the turn.
    running: Option<u64>,
}

/// FIFO round-robin turn arbiter. Clone-free: share it via `Arc`.
pub struct Scheduler {
    inner: Mutex<State>,
    cv: Condvar,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            inner: Mutex::new(State { queue: VecDeque::new(), running: None }),
            cv: Condvar::new(),
        }
    }

    /// Join the queue and block until `job` holds the turn.
    pub fn acquire(&self, job: u64) {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        state.queue.push_back(job);
        while !(state.running.is_none() && state.queue.front() == Some(&job)) {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.queue.pop_front();
        state.running = Some(job);
    }

    /// Give the turn up (end of a quantum) and block until it comes round
    /// again. With other jobs queued this re-enters at the back — strict
    /// round-robin; alone, it reacquires immediately.
    pub fn yield_turn(&self, job: u64) {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert_eq!(state.running, Some(job));
        state.running = None;
        state.queue.push_back(job);
        self.cv.notify_all();
        while !(state.running.is_none() && state.queue.front() == Some(&job)) {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.queue.pop_front();
        state.running = Some(job);
    }

    /// Leave the scheduler for good (job finished, stopped, or failed).
    /// Also removes a queued-but-not-running `job`, so cancellation while
    /// waiting for the turn is safe.
    pub fn release(&self, job: u64) {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if state.running == Some(job) {
            state.running = None;
        } else {
            state.queue.retain(|&j| j != job);
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// N jobs × K quanta through one scheduler: the grant log must be
    /// round-robin, which bounds any job's starvation at N − 1 grants
    /// between two of its own turns.
    #[test]
    fn round_robin_bounds_starvation() {
        const JOBS: u64 = 4;
        const QUANTA: usize = 6;
        let sched = Arc::new(Scheduler::new());
        let grants = Arc::new(Mutex::new(Vec::new()));

        let handles: Vec<_> = (0..JOBS)
            .map(|job| {
                let sched = Arc::clone(&sched);
                let grants = Arc::clone(&grants);
                std::thread::spawn(move || {
                    sched.acquire(job);
                    for quantum in 0..QUANTA {
                        grants.lock().unwrap().push(job);
                        if quantum + 1 < QUANTA {
                            sched.yield_turn(job);
                        }
                    }
                    sched.release(job);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let grants = grants.lock().unwrap();
        assert_eq!(grants.len(), JOBS as usize * QUANTA);
        // Max gap between consecutive grants to the same job, counted in
        // other jobs' grants. FIFO round-robin guarantees ≤ JOBS − 1.
        for job in 0..JOBS {
            let turns: Vec<usize> =
                grants.iter().enumerate().filter(|(_, &j)| j == job).map(|(i, _)| i).collect();
            assert_eq!(turns.len(), QUANTA);
            for pair in turns.windows(2) {
                let gap = pair[1] - pair[0] - 1;
                assert!(
                    gap <= (JOBS - 1) as usize,
                    "job {job} starved for {gap} grants: {grants:?}"
                );
            }
        }
    }

    /// Releasing a queued (never-granted) job must unblock the rest.
    #[test]
    fn release_while_queued_is_safe() {
        let sched = Arc::new(Scheduler::new());
        sched.acquire(1);
        let s2 = Arc::clone(&sched);
        let waiter = std::thread::spawn(move || {
            s2.acquire(2);
            s2.release(2);
        });
        // Job 3 joins the queue behind 2, then withdraws.
        sched.release(3);
        sched.release(1);
        waiter.join().unwrap();
    }
}
