//! The on-disk session checkpoint: config + machine snapshot + events
//! offset + cumulative wasted-work telemetry.
//!
//! This is the format `rfsp experiment --checkpoint` has written since
//! PR 4 (the struct moved here from the CLI verbatim; the field names and
//! version tag are unchanged, so existing checkpoints keep working).

use rfsp_pram::{Checkpoint, WastedWork};
use serde::{Deserialize, Serialize};

use crate::{atomic::write_atomic, io_err, RunConfig, RunError};

/// Version tag of the on-disk session checkpoint (wraps the machine's own
/// versioned [`Checkpoint`]).
///
/// * v1 — config + events offset + machine snapshot.
/// * v2 — adds cumulative [`WastedWork`] telemetry; the wrapped machine
///   checkpoint is v4 and carries the policy-engine state.
pub const SESSION_CHECKPOINT_VERSION: u32 = 2;

/// What a checkpoint file holds: everything a resumed process needs —
/// config, machine snapshot, and how many event bytes had been flushed
/// when the snapshot was taken.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Format version ([`SESSION_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The run's full configuration.
    pub config: RunConfig,
    /// Flushed length of the events file at snapshot time; resume
    /// truncates the file back to this before continuing.
    pub events_offset: u64,
    /// Cumulative fault-tolerance overhead up to (not including) this
    /// snapshot; a resumed run keeps accumulating on top of it.
    pub wasted: WastedWork,
    /// The machine + adversary + policy-engine snapshot.
    pub machine: Checkpoint,
}

impl SessionCheckpoint {
    /// Publish to `path` via [`write_atomic`]. Returns the size in bytes.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn store(&self, path: &str) -> Result<u64, RunError> {
        write_atomic(path, &serde::json::to_string_pretty(&self.to_value()))
    }

    /// Read and validate a checkpoint file.
    ///
    /// # Errors
    ///
    /// Unreadable files, malformed JSON, and version mismatches.
    pub fn load(path: &str) -> Result<Self, RunError> {
        let text = std::fs::read_to_string(path).map_err(|e| io_err("read", path, &e))?;
        let value = serde::json::from_str(&text)
            .map_err(|e| RunError(format!("{path}: not valid JSON: {e}")))?;
        let ck = SessionCheckpoint::from_value(&value)
            .map_err(|e| RunError(format!("{path}: malformed checkpoint: {e}")))?;
        if ck.version != SESSION_CHECKPOINT_VERSION {
            return Err(RunError(format!(
                "{path}: checkpoint version {} (this build reads {SESSION_CHECKPOINT_VERSION})",
                ck.version
            )));
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_rejects_garbage_and_version_skew() {
        let dir = std::env::temp_dir().join("rfsp-run-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        let path_s = path.to_str().unwrap();

        assert!(SessionCheckpoint::load(path_s).unwrap_err().0.contains("cannot read"));
        std::fs::write(&path, "{not json").unwrap();
        assert!(SessionCheckpoint::load(path_s).unwrap_err().0.contains("not valid JSON"));
        std::fs::write(&path, "{\"version\":1}").unwrap();
        assert!(SessionCheckpoint::load(path_s).unwrap_err().0.contains("malformed"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
