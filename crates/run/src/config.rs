//! The full run configuration — everything needed to rebuild a run's
//! program and adversary from scratch — plus the adversary factory.
//!
//! [`RunConfig`] is stored verbatim inside every [`SessionCheckpoint`]
//! (so `--resume` and the daemon's spool re-adoption need no other flags)
//! and travels the daemon wire protocol inside
//! [`Request::Submit`](crate::Request::Submit).

use rfsp_adversary::{BurstyFaults, RandomFaults};
use rfsp_pram::{Adversary, NoFailures, PolicyKind, RunLimits, ScheduledAdversary};
use serde::{Deserialize, Serialize};

use crate::{io_err, pattern_io, RunError};

/// One crash-safe run, fully described: algorithm, instance, adversary,
/// checkpoint policy, and where the durable artifacts live.
///
/// Serialized inside checkpoints since experiment-checkpoint v1; the
/// field names are part of the on-disk format.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RunConfig {
    /// Algorithm name (as accepted by the CLI's `--algo`).
    pub algo: String,
    /// Instance size.
    pub n: u64,
    /// Processor count.
    pub p: u64,
    /// Tick-engine worker threads (1 = sequential).
    pub threads: u64,
    /// Adversary kind: `none`, `random`, `bursty`, or `replay`.
    pub adversary: String,
    /// `random`: per-tick failure probability. `bursty`: the burst-mode
    /// failure probability (the calm mode stays near-quiet).
    pub rate: f64,
    /// `random`/`bursty`: per-tick restart probability.
    pub restart_rate: f64,
    /// `random`/`bursty`: RNG seed (the checkpoint carries the live RNG
    /// state; the seed only matters for a from-scratch start).
    pub seed: u64,
    /// `replay`: path of the failure-pattern file.
    pub replay_pattern: Option<String>,
    /// Checkpoint cadence in ticks for the fixed policy (must be ≥ 1).
    pub every: u64,
    /// Checkpoint policy tag: `fixed` (interval = `every`) or `adaptive`.
    pub policy: String,
    /// Tick budget.
    pub max_cycles: u64,
    /// Checkpoint file path.
    pub checkpoint: Option<String>,
    /// Events JSONL file path.
    pub events: Option<String>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            algo: "x".to_string(),
            n: 1024,
            p: 64,
            threads: 1,
            adversary: "none".to_string(),
            rate: 0.05,
            restart_rate: 0.5,
            seed: 0,
            replay_pattern: None,
            every: 100,
            policy: "fixed".to_string(),
            max_cycles: RunLimits::default().max_cycles,
            checkpoint: None,
            events: None,
        }
    }
}

impl RunConfig {
    /// The policy this config names, as the engine understands it.
    pub fn policy_kind(&self) -> PolicyKind {
        if self.policy == "adaptive" {
            PolicyKind::Adaptive
        } else {
            PolicyKind::Fixed(self.every)
        }
    }

    /// The tick budget as the machine understands it.
    pub fn limits(&self) -> RunLimits {
        RunLimits { max_cycles: self.max_cycles }
    }

    /// Reject configurations no session can honour: a zero cadence, zero
    /// threads, or a checkpoint on an algorithm whose program-level state
    /// a resumed run cannot recover.
    ///
    /// # Errors
    ///
    /// [`RunError`] naming the offending field.
    pub fn validate(&self) -> Result<(), RunError> {
        if self.every == 0 {
            return Err(RunError(
                "--every 0 is a degenerate cadence: the run would never checkpoint and a crash \
                 would lose everything; give a positive tick interval (or use --policy adaptive)"
                    .into(),
            ));
        }
        if self.threads == 0 {
            return Err(RunError("--threads must be at least 1".into()));
        }
        if self.algo == "acc" && self.checkpoint.is_some() {
            return Err(RunError(
                "--checkpoint does not support --algo acc: its incarnation counter is \
                 program-level state a resumed run cannot recover"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Build the adversary a [`RunConfig`] names, from scratch (a checkpoint
/// restore then rehydrates its mutable cursor/RNG state).
///
/// # Errors
///
/// Unknown adversary kinds, and unreadable or illegal replay patterns.
pub fn build_adversary(cfg: &RunConfig) -> Result<Box<dyn Adversary>, RunError> {
    Ok(match cfg.adversary.as_str() {
        "none" => Box::new(NoFailures),
        "random" => Box::new(RandomFaults::new(cfg.rate, cfg.restart_rate, cfg.seed)),
        // Same hidden-mode chain as BurstyFaults::preset, but honouring
        // the configured restart rate.
        "bursty" => {
            Box::new(BurstyFaults::new(0.002, cfg.rate, cfg.restart_rate, 0.02, 0.10, cfg.seed))
        }
        "replay" => {
            let path = cfg
                .replay_pattern
                .as_deref()
                .ok_or_else(|| RunError("--adversary replay needs --replay-pattern FILE".into()))?;
            let text = std::fs::read_to_string(path).map_err(|e| io_err("read", path, &e))?;
            let pattern = pattern_io::decode(&text)?;
            Box::new(
                ScheduledAdversary::try_new(pattern)
                    .map_err(|e| RunError(format!("{path}: {e}")))?,
            )
        }
        other => {
            return Err(RunError(format!(
                "unknown long-run adversary '{other}' (expected one of: none, random, bursty, \
                 replay)"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_configs() {
        let ok = RunConfig::default();
        ok.validate().unwrap();
        assert_eq!(ok.policy_kind(), PolicyKind::Fixed(100));

        let bad = RunConfig { every: 0, ..RunConfig::default() };
        assert!(bad.validate().unwrap_err().0.contains("degenerate"));
        let bad = RunConfig { threads: 0, ..RunConfig::default() };
        assert!(bad.validate().is_err());
        let bad = RunConfig {
            algo: "acc".into(),
            checkpoint: Some("ck.json".into()),
            ..RunConfig::default()
        };
        assert!(bad.validate().unwrap_err().0.contains("acc"));
    }

    #[test]
    fn config_serde_roundtrips() {
        let cfg = RunConfig {
            policy: "adaptive".into(),
            events: Some("run.jsonl".into()),
            ..RunConfig::default()
        };
        let back = RunConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.policy_kind(), PolicyKind::Adaptive);
    }

    #[test]
    fn adversary_factory_covers_the_table() {
        let mut cfg = RunConfig::default();
        for kind in ["none", "random", "bursty"] {
            cfg.adversary = kind.into();
            build_adversary(&cfg).unwrap();
        }
        cfg.adversary = "replay".into();
        let Err(err) = build_adversary(&cfg) else { panic!("replay without pattern accepted") };
        assert!(err.0.contains("--replay-pattern"), "{err}");
        cfg.adversary = "martian".into();
        let Err(err) = build_adversary(&cfg) else { panic!("unknown adversary accepted") };
        assert!(err.0.contains("unknown long-run adversary 'martian'"), "{err}");
    }
}
