//! A line-oriented text codec for failure patterns, so adversarial runs
//! can be saved to disk and replayed (`--record-pattern` /
//! `--replay-pattern`).
//!
//! Format, one event per line (`#` lines are comments):
//!
//! ```text
//! F <pid> <time> before-reads|before-writes|after-write:<k>
//! R <pid> <time>
//! ```

use rfsp_pram::{FailPoint, FailureEvent, FailureKind, FailurePattern};

use crate::RunError;

/// Render a pattern in the text format.
pub fn encode(pattern: &FailurePattern) -> String {
    let mut out = String::from("# rfsp failure pattern v1\n");
    for e in pattern.events() {
        match e.kind {
            FailureKind::Failure { point } => {
                let p = match point {
                    FailPoint::BeforeReads => "before-reads".to_string(),
                    FailPoint::BeforeWrites => "before-writes".to_string(),
                    FailPoint::AfterWrite(k) => format!("after-write:{k}"),
                };
                out.push_str(&format!("F {} {} {}\n", e.pid, e.time, p));
            }
            FailureKind::Restart => {
                out.push_str(&format!("R {} {}\n", e.pid, e.time));
            }
        }
    }
    out
}

/// Parse the text format and validate that the result is a *legal* fault
/// schedule (time-ordered, no double failures, no restarts of live
/// processors, no `after-write:0`) — a hand-edited replay file fails here
/// with the offending line, not deep inside a run.
///
/// # Errors
///
/// Reports the first malformed or semantically illegal line.
pub fn decode(text: &str) -> Result<FailurePattern, RunError> {
    let mut pattern = FailurePattern::new();
    // Source line of each event, for mapping validation errors back.
    let mut event_lines: Vec<usize> = Vec::new();
    let mut last_time = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = |what: &str| RunError(format!("pattern line {}: {what}", lineno + 1));
        let tag = parts.next().ok_or_else(|| bad("missing tag"))?;
        let pid: usize =
            parts.next().ok_or_else(|| bad("missing pid"))?.parse().map_err(|_| bad("bad pid"))?;
        let time: u64 = parts
            .next()
            .ok_or_else(|| bad("missing time"))?
            .parse()
            .map_err(|_| bad("bad time"))?;
        let kind = match tag {
            "F" => {
                let point = match parts.next().ok_or_else(|| bad("missing fail point"))? {
                    "before-reads" => FailPoint::BeforeReads,
                    "before-writes" => FailPoint::BeforeWrites,
                    other => {
                        let k = other
                            .strip_prefix("after-write:")
                            .and_then(|k| k.parse().ok())
                            .ok_or_else(|| bad("bad fail point"))?;
                        FailPoint::AfterWrite(k)
                    }
                };
                FailureKind::Failure { point }
            }
            "R" => FailureKind::Restart,
            _ => return Err(bad("unknown tag (expected F or R)")),
        };
        if parts.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        // Ordering is checked here (not left to `FailurePattern::push`,
        // which would panic) so the error names the line.
        if time < last_time {
            return Err(bad(&format!(
                "time {time} after time {last_time} (events must be sorted)"
            )));
        }
        last_time = time;
        pattern.push(FailureEvent { kind, pid, time });
        event_lines.push(lineno + 1);
    }
    if let Err(e) = pattern.validate(None) {
        let detail = &e.detail;
        return Err(match e.event.and_then(|i| event_lines.get(i)) {
            Some(line) => RunError(format!("pattern line {line}: {detail}")),
            None => RunError(format!("invalid failure pattern: {detail}")),
        });
    }
    Ok(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailurePattern {
        let mut p = FailurePattern::new();
        p.push(FailureEvent {
            kind: FailureKind::Failure { point: FailPoint::BeforeReads },
            pid: 3,
            time: 0,
        });
        p.push(FailureEvent {
            kind: FailureKind::Failure { point: FailPoint::AfterWrite(1) },
            pid: 5,
            time: 2,
        });
        p.push(FailureEvent { kind: FailureKind::Restart, pid: 3, time: 4 });
        p
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let text = encode(&p);
        let back = decode(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nF 0 1 before-writes\n  \n";
        let p = decode(text).unwrap();
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn malformed_lines_are_reported_with_location() {
        let err = decode("F 0 zzz before-writes").unwrap_err();
        assert!(err.0.contains("line 1"));
        assert!(decode("X 0 0").is_err());
        assert!(decode("F 0 0 during-write").is_err());
        assert!(decode("F 0 0 before-writes extra").is_err());
    }

    #[test]
    fn semantically_illegal_schedules_name_the_line() {
        // Unsorted times: caught at parse time, names line 3.
        let err = decode("# hdr\nF 0 5 before-reads\nF 1 2 before-reads").unwrap_err();
        assert!(err.0.contains("line 3"), "{err}");
        assert!(err.0.contains("sorted"), "{err}");

        // Double failure of P0: the second F line is the offender.
        let err = decode("F 0 1 before-reads\nF 0 2 before-writes").unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
        assert!(err.0.contains("already failed"), "{err}");

        // Restart of a processor that never failed.
        let err = decode("R 4 1").unwrap_err();
        assert!(err.0.contains("line 1"), "{err}");
        assert!(err.0.contains("non-failed"), "{err}");

        // after-write:0 parses but is not a legal fail point.
        let err = decode("F 0 1 after-write:0").unwrap_err();
        assert!(err.0.contains("line 1"), "{err}");
        assert!(err.0.contains("after-write:0"), "{err}");
    }
}
