//! [`RunHost`] — the machine-shape abstraction the session layer runs on.
//!
//! A [`RunSession`](crate::RunSession) does not care whether it is driving
//! the word-model [`Machine`] or the §3 [`SnapshotMachine`]; it needs a
//! handful of capabilities — run with a pause hook, run armored (panic
//! isolation + a choice of tick engine), checkpoint, restore — expressed
//! here as object-safe-ish methods over `&mut dyn Adversary` (the
//! adversary blanket impls for `&mut A` make the concrete machines'
//! generic entry points accept that shape directly).

use rfsp_pram::snapshot::SnapshotMachine;
use rfsp_pram::{
    Adversary, Checkpoint, Machine, Observer, PanicPolicy, PramError, Program, RunControl,
    RunLimits, RunReport, RunStatus, SharedMemory, SharedPool, SnapshotProgram,
};
use serde::{Deserialize, Serialize};

/// Which tick engine an armored run segment uses.
#[derive(Clone, Copy)]
pub enum ExecMode<'a> {
    /// The sequential engine (with panic catching).
    Sequential,
    /// A private per-run worker pool of this many threads (1 = sequential).
    Threads(usize),
    /// A caller-owned [`SharedPool`], time-shared between sessions; the
    /// driving thread holds the pool's turn for the whole segment.
    Pool(&'a SharedPool),
}

/// What the session layer needs from a machine.
pub trait RunHost {
    /// Plain sequential run with a pause hook (the engine the soak
    /// harness's reference lanes use).
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    fn host_run_controlled(
        &mut self,
        adversary: &mut dyn Adversary,
        limits: RunLimits,
        observer: &mut dyn Observer,
        control: &mut dyn FnMut(u64) -> RunControl,
    ) -> Result<RunStatus, PramError>;

    /// Plain sequential run to completion.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    fn host_run(
        &mut self,
        adversary: &mut dyn Adversary,
        limits: RunLimits,
        observer: &mut dyn Observer,
    ) -> Result<RunReport, PramError>;

    /// The armored run: panic isolation under `policy`, the tick engine
    /// `exec` names, and a pause hook at every tick boundary. Machines
    /// without a threaded engine (the snapshot model) run sequentially and
    /// ignore `exec`/`policy`.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    fn host_run_armored(
        &mut self,
        adversary: &mut dyn Adversary,
        limits: RunLimits,
        exec: ExecMode<'_>,
        policy: PanicPolicy,
        observer: &mut dyn Observer,
        control: &mut dyn FnMut(u64) -> RunControl,
    ) -> Result<RunStatus, PramError>;

    /// Snapshot machine + adversary state at a tick boundary.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    fn host_save_checkpoint(
        &self,
        adversary: &dyn SaveableAdversary,
    ) -> Result<Checkpoint, PramError>;

    /// Rehydrate machine + adversary from a checkpoint.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    fn host_restore_checkpoint(
        &mut self,
        ck: &Checkpoint,
        adversary: &mut dyn Adversary,
    ) -> Result<(), PramError>;

    /// Current tick number.
    fn host_cycle(&self) -> u64;

    /// The shared memory (for postcondition checks).
    fn host_memory(&self) -> &SharedMemory;
}

/// The save-side adversary capability: [`Adversary::save_state`] through a
/// shared reference (saving must not disturb the adversary).
pub trait SaveableAdversary {
    /// See [`Adversary::save_state`].
    fn save(&self) -> Option<serde::Value>;
}

impl<A: Adversary + ?Sized> SaveableAdversary for A {
    fn save(&self) -> Option<serde::Value> {
        self.save_state()
    }
}

/// Adapter giving a `&dyn SaveableAdversary` the [`Adversary`] surface the
/// machines' generic `save_checkpoint` expects (only `save_state` is ever
/// consulted on the save path).
struct SaveView<'a>(&'a dyn SaveableAdversary);

impl Adversary for SaveView<'_> {
    fn decide(&mut self, _view: &rfsp_pram::MachineView<'_>) -> rfsp_pram::Decisions {
        unreachable!("save_checkpoint never consults decide")
    }

    fn save_state(&self) -> Option<serde::Value> {
        self.0.save()
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        unreachable!("save_checkpoint never restores")
    }
}

impl<'p, P> RunHost for Machine<'p, P>
where
    P: Program + Sync,
    P::Private: Send + Serialize + Deserialize,
{
    fn host_run_controlled(
        &mut self,
        mut adversary: &mut dyn Adversary,
        limits: RunLimits,
        observer: &mut dyn Observer,
        control: &mut dyn FnMut(u64) -> RunControl,
    ) -> Result<RunStatus, PramError> {
        self.run_controlled(&mut adversary, limits, observer, control)
    }

    fn host_run(
        &mut self,
        mut adversary: &mut dyn Adversary,
        limits: RunLimits,
        observer: &mut dyn Observer,
    ) -> Result<RunReport, PramError> {
        self.run_observed(&mut adversary, limits, observer)
    }

    fn host_run_armored(
        &mut self,
        mut adversary: &mut dyn Adversary,
        limits: RunLimits,
        exec: ExecMode<'_>,
        policy: PanicPolicy,
        observer: &mut dyn Observer,
        control: &mut dyn FnMut(u64) -> RunControl,
    ) -> Result<RunStatus, PramError> {
        match exec {
            ExecMode::Sequential => self.run_threaded_isolated_controlled(
                &mut adversary,
                limits,
                1,
                policy,
                observer,
                control,
            ),
            ExecMode::Threads(threads) => self.run_threaded_isolated_controlled(
                &mut adversary,
                limits,
                threads,
                policy,
                observer,
                control,
            ),
            ExecMode::Pool(pool) => self.run_pooled_isolated_controlled(
                &mut adversary,
                limits,
                pool,
                policy,
                observer,
                control,
            ),
        }
    }

    fn host_save_checkpoint(
        &self,
        adversary: &dyn SaveableAdversary,
    ) -> Result<Checkpoint, PramError> {
        self.save_checkpoint(&SaveView(adversary))
    }

    fn host_restore_checkpoint(
        &mut self,
        ck: &Checkpoint,
        mut adversary: &mut dyn Adversary,
    ) -> Result<(), PramError> {
        self.restore_checkpoint(ck, &mut adversary)
    }

    fn host_cycle(&self) -> u64 {
        self.cycle()
    }

    fn host_memory(&self) -> &SharedMemory {
        self.memory()
    }
}

impl<'p, P> RunHost for SnapshotMachine<'p, P>
where
    P: SnapshotProgram,
    P::Private: Serialize + Deserialize,
{
    fn host_run_controlled(
        &mut self,
        mut adversary: &mut dyn Adversary,
        limits: RunLimits,
        observer: &mut dyn Observer,
        control: &mut dyn FnMut(u64) -> RunControl,
    ) -> Result<RunStatus, PramError> {
        self.run_controlled(&mut adversary, limits, observer, control)
    }

    fn host_run(
        &mut self,
        mut adversary: &mut dyn Adversary,
        limits: RunLimits,
        observer: &mut dyn Observer,
    ) -> Result<RunReport, PramError> {
        self.run_observed(&mut adversary, limits, observer)
    }

    fn host_run_armored(
        &mut self,
        adversary: &mut dyn Adversary,
        limits: RunLimits,
        _exec: ExecMode<'_>,
        _policy: PanicPolicy,
        observer: &mut dyn Observer,
        control: &mut dyn FnMut(u64) -> RunControl,
    ) -> Result<RunStatus, PramError> {
        // The snapshot engine is sequential-only; there is no pool to
        // isolate panics on, so the armored run is the plain run.
        self.host_run_controlled(adversary, limits, observer, control)
    }

    fn host_save_checkpoint(
        &self,
        adversary: &dyn SaveableAdversary,
    ) -> Result<Checkpoint, PramError> {
        self.save_checkpoint(&SaveView(adversary))
    }

    fn host_restore_checkpoint(
        &mut self,
        ck: &Checkpoint,
        mut adversary: &mut dyn Adversary,
    ) -> Result<(), PramError> {
        self.restore_checkpoint(ck, &mut adversary)
    }

    fn host_cycle(&self) -> u64 {
        self.cycle()
    }

    fn host_memory(&self) -> &SharedMemory {
        self.memory()
    }
}
