//! The `rfsp serve` wire protocol: newline-delimited JSON over a local
//! Unix socket.
//!
//! One request line, one response line — except `Watch`, where the `Ok`
//! acknowledgment is followed by a stream of raw telemetry lines until
//! the job ends or the client hangs up. Requests and responses are
//! externally-tagged enum JSON (`{"Submit":{"config":{...}}}`), so the
//! protocol is greppable and scriptable with a shell and `nc`.

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use crate::{RunConfig, RunError};

/// Client → daemon.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Queue a run; responds [`Response::Submitted`].
    Submit {
        /// The run to execute (artifact paths are rewritten into the
        /// daemon's spool).
        config: RunConfig,
    },
    /// List all jobs the daemon knows; responds [`Response::JobList`].
    Jobs,
    /// Stop a job at its next pause boundary (checkpointed, so a later
    /// resubmission of the spooled config resumes it); responds
    /// [`Response::Done`].
    Cancel {
        /// Job id from [`Response::Submitted`] / [`Response::JobList`].
        job: u64,
    },
    /// Subscribe to a job's live telemetry; after the [`Response::Done`]
    /// acknowledgment the connection carries one JSON event per line.
    Watch {
        /// Job id to follow.
        job: u64,
    },
    /// Checkpoint and stop every job, then exit the daemon.
    Shutdown,
}

/// Where a job is in its life cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted, waiting for its first turn.
    Queued,
    /// Holding or contending for the pool turn.
    Running,
    /// Ran to completion (postconditions verified).
    Completed,
    /// Stopped at a checkpoint by [`Request::Cancel`] or shutdown.
    Stopped,
    /// Died with an error (recorded in the spool).
    Failed,
}

/// One row of [`Response::JobList`].
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct JobInfo {
    /// Daemon-assigned id.
    pub job: u64,
    /// Life-cycle state.
    pub state: JobState,
    /// Last tick the daemon saw the job pause at.
    pub cycle: u64,
    /// Algorithm (from the job's config).
    pub algo: String,
    /// Instance size.
    pub n: u64,
    /// Processor count.
    pub p: u64,
}

/// Daemon → client.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Response {
    /// [`Request::Submit`] accepted; the job is queued.
    Submitted {
        /// The id to cancel/watch by.
        job: u64,
    },
    /// [`Request::Jobs`] answer.
    JobList {
        /// All jobs, oldest first.
        jobs: Vec<JobInfo>,
    },
    /// Generic success.
    Done,
    /// Generic failure; the request had no effect.
    Err {
        /// Human-readable reason.
        message: String,
    },
}

/// Write one protocol value as a JSON line.
///
/// # Errors
///
/// Socket I/O failures.
pub fn write_line<T: Serialize>(out: &mut dyn Write, value: &T) -> Result<(), RunError> {
    let mut line = serde::json::to_string(&value.to_value());
    line.push('\n');
    out.write_all(line.as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| RunError(format!("socket write failed: {e}")))
}

/// Read one protocol value from a JSON line. Returns `None` on a clean
/// EOF (peer hung up between messages).
///
/// # Errors
///
/// Socket I/O failures and lines that do not parse as a `T`.
pub fn read_line<T: Deserialize>(input: &mut dyn BufRead) -> Result<Option<T>, RunError> {
    let mut line = String::new();
    let n = input.read_line(&mut line).map_err(|e| RunError(format!("socket read failed: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    let value = serde::json::from_str(line.trim_end())
        .map_err(|e| RunError(format!("bad protocol line: {e}")))?;
    T::from_value(&value).map(Some).map_err(|e| RunError(format!("bad protocol message: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_responses_roundtrip_the_wire() {
        let mut wire = Vec::new();
        let reqs = vec![
            Request::Submit { config: RunConfig::default() },
            Request::Jobs,
            Request::Cancel { job: 7 },
            Request::Watch { job: 7 },
            Request::Shutdown,
        ];
        for r in &reqs {
            write_line(&mut wire, r).unwrap();
        }
        let mut reader = std::io::BufReader::new(wire.as_slice());
        for want in &reqs {
            let got: Request = read_line(&mut reader).unwrap().unwrap();
            assert_eq!(&got, want);
        }
        assert_eq!(read_line::<Request>(&mut reader).unwrap(), None);

        let resp = Response::JobList {
            jobs: vec![JobInfo {
                job: 1,
                state: JobState::Running,
                cycle: 42,
                algo: "x".into(),
                n: 1024,
                p: 64,
            }],
        };
        let mut wire = Vec::new();
        write_line(&mut wire, &resp).unwrap();
        let got: Response =
            read_line(&mut std::io::BufReader::new(wire.as_slice())).unwrap().unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn garbage_lines_are_decorated_errors() {
        let mut reader = std::io::BufReader::new(&b"{oops\n"[..]);
        let err = read_line::<Request>(&mut reader).unwrap_err();
        assert!(err.0.contains("bad protocol line"), "{err}");
        let mut reader = std::io::BufReader::new(&b"{\"NoSuchVariant\":{}}\n"[..]);
        let err = read_line::<Request>(&mut reader).unwrap_err();
        assert!(err.0.contains("bad protocol message"), "{err}");
    }
}
