//! # rfsp-run — the crash-safe run-session layer
//!
//! PRs 4–9 made a *single* long run crash-safe: versioned machine
//! checkpoints, atomic on-disk persistence, events-JSONL offset-truncate
//! resume, adaptive checkpoint cadence, panic-isolating engines. The
//! orchestration gluing those pieces together, however, was copy-pasted
//! across the CLI's long-run mode, the soak harness's kill/resume lanes,
//! and the bench runners. This crate extracts it into one place:
//!
//! * [`RunSession`] — owns a machine (through the [`RunHost`] trait, so
//!   both the word-model [`Machine`](rfsp_pram::Machine) and the §3
//!   [`SnapshotMachine`](rfsp_pram::SnapshotMachine) qualify), its
//!   adversary, its [`PolicyEngine`](rfsp_pram::PolicyEngine), its events
//!   log and its durable checkpoints, and implements the *one* crash-safe
//!   run loop: pause at tick boundaries, checkpoint on the policy's
//!   cadence (and on demand), rewind-and-replay after surfaced worker
//!   panics, stream every event to the log and to a caller observer.
//! * [`run_with_cut`] — the in-memory kill/checkpoint/JSON-round-trip/
//!   restore/resume cross-check used by the soak harness's crash-recovery
//!   lanes.
//! * [`Scheduler`] — a FIFO round-robin turn queue multiplexing many
//!   sessions over one shared worker pool, with bounded starvation.
//! * [`protocol`] / [`Spool`] — the `rfsp serve` daemon's newline-delimited
//!   JSON wire protocol and its on-disk job spool (the unit of daemon
//!   crash recovery: every job directory is resumable from its config and
//!   last checkpoint alone).
//!
//! The service-level picture mirrors the paper: the job queue is itself a
//! Do-All instance — independent tasks that must all complete even though
//! the workers (here: the daemon process) can fail and restart — and the
//! spool is what makes progress *survivable* rather than merely parallel.

pub mod atomic;
pub mod checkpoint;
pub mod config;
pub mod events;
pub mod host;
pub mod pattern_io;
pub mod protocol;
pub mod sched;
pub mod session;
pub mod spool;

pub use atomic::write_atomic;
pub use checkpoint::{SessionCheckpoint, SESSION_CHECKPOINT_VERSION};
pub use config::{build_adversary, RunConfig};
pub use events::{count_tick_starts, EventLog};
pub use host::{ExecMode, RunHost};
pub use protocol::{read_line, write_line, JobInfo, JobState, Request, Response};
pub use sched::Scheduler;
pub use session::{run_with_cut, CutOutcome, PauseFlow, PauseInfo, RunSession, SessionEnd};
pub use spool::{DoneMarker, Spool, SpoolJob};

use std::fmt;

/// A user-facing session-layer error with a printable message.
///
/// The CLI converts these to its own `ArgError`; the daemon sends them
/// down the wire as [`Response::Err`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunError(pub String);

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RunError {}

/// Decorate an I/O-ish error with the operation and path it came from.
pub(crate) fn io_err(what: &str, path: &str, e: &dyn fmt::Display) -> RunError {
    RunError(format!("cannot {what} {path}: {e}"))
}

/// Decorate a machine error.
pub(crate) fn machine_err(e: &dyn fmt::Display) -> RunError {
    RunError(format!("machine error: {e}"))
}
