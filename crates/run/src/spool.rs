//! The daemon's on-disk job spool — the unit of daemon crash recovery.
//!
//! Every job lives in its own directory under the spool root:
//!
//! ```text
//! spool/
//!   job-000001/
//!     config.json    # the RunConfig, paths rewritten into this directory
//!     ck.json        # latest session checkpoint (atomic tmp+rename)
//!     events.jsonl   # the job's event stream
//!     done.json      # terminal marker: {"state": "...", "detail": "..."}
//! ```
//!
//! A restarted daemon scans the root and re-adopts everything it finds:
//! jobs with a `done.json` are history, jobs with a `ck.json` resume from
//! it (byte-identical event streams, same guarantee as `--resume`), and
//! jobs with only a `config.json` start from scratch. Nothing else — no
//! database, no lock files — so `kill -9` mid-write loses at most the
//! work since the last checkpoint, exactly like a machine crash in the
//! paper's fail-stop model.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::atomic::write_atomic;
use crate::checkpoint::SessionCheckpoint;
use crate::{io_err, RunConfig, RunError};

/// Terminal marker for a finished job.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DoneMarker {
    /// `"completed"`, `"stopped"`, or `"failed"`.
    pub state: String,
    /// Human-readable detail (summary line or error message).
    pub detail: String,
}

/// One re-adopted job, as the startup scan sees it.
pub struct SpoolJob {
    /// The id encoded in the directory name.
    pub job: u64,
    /// The job's configuration (paths already point into the spool).
    pub config: RunConfig,
    /// The latest checkpoint, if one was published.
    pub resume: Option<SessionCheckpoint>,
    /// The terminal marker, if the job already finished.
    pub done: Option<DoneMarker>,
}

/// The spool root.
pub struct Spool {
    root: PathBuf,
}

impl Spool {
    /// Open (creating if needed) the spool at `root`.
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory.
    pub fn open(root: &Path) -> Result<Self, RunError> {
        std::fs::create_dir_all(root)
            .map_err(|e| io_err("create spool directory", &root.display().to_string(), &e))?;
        Ok(Spool { root: root.to_path_buf() })
    }

    fn job_dir(&self, job: u64) -> PathBuf {
        self.root.join(format!("job-{job:06}"))
    }

    /// The job's checkpoint path (inside its spool directory).
    pub fn checkpoint_path(&self, job: u64) -> String {
        self.job_dir(job).join("ck.json").display().to_string()
    }

    /// The job's events path (inside its spool directory).
    pub fn events_path(&self, job: u64) -> String {
        self.job_dir(job).join("events.jsonl").display().to_string()
    }

    /// Materialize a new job directory: rewrite the config's artifact
    /// paths into the spool and durably publish `config.json`. Returns
    /// the rewritten config the job must run with.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn create_job(&self, job: u64, mut config: RunConfig) -> Result<RunConfig, RunError> {
        let dir = self.job_dir(job);
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err("create job directory", &dir.display().to_string(), &e))?;
        config.checkpoint = Some(self.checkpoint_path(job));
        config.events = Some(self.events_path(job));
        let path = dir.join("config.json");
        write_atomic(
            path.to_str().ok_or_else(|| RunError("non-UTF-8 spool path".into()))?,
            &serde::json::to_string_pretty(&config.to_value()),
        )?;
        Ok(config)
    }

    /// Durably publish a job's terminal marker.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn mark_done(&self, job: u64, state: &str, detail: &str) -> Result<(), RunError> {
        let path = self.job_dir(job).join("done.json");
        let marker = DoneMarker { state: state.to_string(), detail: detail.to_string() };
        write_atomic(
            path.to_str().ok_or_else(|| RunError("non-UTF-8 spool path".into()))?,
            &serde::json::to_string_pretty(&marker.to_value()),
        )?;
        Ok(())
    }

    /// Scan the spool: every `job-NNNNNN` directory with a readable
    /// `config.json` becomes a [`SpoolJob`], sorted by id. Unreadable or
    /// torn checkpoints are reported as errors — a daemon must refuse to
    /// silently restart a job whose checkpoint it cannot parse.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed spool contents.
    pub fn scan(&self) -> Result<Vec<SpoolJob>, RunError> {
        let mut jobs = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| io_err("read spool directory", &self.root.display().to_string(), &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| {
                io_err("read spool directory", &self.root.display().to_string(), &e)
            })?;
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(|n| n.strip_prefix("job-")) else { continue };
            let Ok(job) = id.parse::<u64>() else { continue };
            let dir = entry.path();
            let config_path = dir.join("config.json");
            let text = std::fs::read_to_string(&config_path)
                .map_err(|e| io_err("read", &config_path.display().to_string(), &e))?;
            let config = serde::json::from_str(&text)
                .ok()
                .and_then(|v| RunConfig::from_value(&v).ok())
                .ok_or_else(|| {
                    RunError(format!("{}: malformed job config", config_path.display()))
                })?;
            let ck_path = dir.join("ck.json");
            let resume = if ck_path.exists() {
                Some(SessionCheckpoint::load(
                    ck_path.to_str().ok_or_else(|| RunError("non-UTF-8 spool path".into()))?,
                )?)
            } else {
                None
            };
            let done_path = dir.join("done.json");
            let done = if done_path.exists() {
                let text = std::fs::read_to_string(&done_path)
                    .map_err(|e| io_err("read", &done_path.display().to_string(), &e))?;
                serde::json::from_str(&text).ok().and_then(|v| DoneMarker::from_value(&v).ok())
            } else {
                None
            };
            jobs.push(SpoolJob { job, config, resume, done });
        }
        jobs.sort_by_key(|j| j.job);
        Ok(jobs)
    }

    /// The next unused job id (one past the highest spooled id).
    ///
    /// # Errors
    ///
    /// I/O failures while scanning.
    pub fn next_job_id(&self) -> Result<u64, RunError> {
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| io_err("read spool directory", &self.root.display().to_string(), &e))?;
        let mut max = 0;
        for entry in entries.flatten() {
            if let Some(id) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|n| n.parse::<u64>().ok())
            {
                max = max.max(id);
            }
        }
        Ok(max + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_scan_and_mark_done_roundtrip() {
        let root = std::env::temp_dir().join("rfsp-run-spool-test");
        let _ = std::fs::remove_dir_all(&root);
        let spool = Spool::open(&root).unwrap();
        assert_eq!(spool.next_job_id().unwrap(), 1);
        assert!(spool.scan().unwrap().is_empty());

        let cfg = spool.create_job(1, RunConfig::default()).unwrap();
        assert_eq!(cfg.checkpoint.as_deref(), Some(spool.checkpoint_path(1).as_str()));
        assert_eq!(cfg.events.as_deref(), Some(spool.events_path(1).as_str()));
        spool.create_job(2, RunConfig::default()).unwrap();
        spool.mark_done(2, "completed", "all cells written").unwrap();
        assert_eq!(spool.next_job_id().unwrap(), 3);

        let jobs = spool.scan().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!((jobs[0].job, jobs[1].job), (1, 2));
        assert!(jobs[0].done.is_none() && jobs[0].resume.is_none());
        let done = jobs[1].done.as_ref().unwrap();
        assert_eq!(done.state, "completed");

        // A torn checkpoint must fail the scan loudly, not silently
        // restart the job from scratch.
        std::fs::write(root.join("job-000001").join("ck.json"), "{torn").unwrap();
        assert!(spool.scan().is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
