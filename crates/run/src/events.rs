//! The events-JSONL sink with offset-truncate resume.
//!
//! Every machine event is rendered as one JSON line. The log tracks the
//! byte offset of everything *flushed* — the only prefix a checkpoint may
//! safely reference — and a resumed run truncates the file back to the
//! checkpointed offset before continuing, so the final stream is
//! byte-identical to an uninterrupted run's.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Seek, SeekFrom, Write};

use rfsp_pram::{Observer, TraceEvent};

use crate::{io_err, RunError};

/// How many tick boundaries a discarded event tail described — the ticks
/// a rewound run is about to re-execute.
pub fn count_tick_starts(bytes: &[u8]) -> u64 {
    const NEEDLE: &[u8] = b"\"TickStart\"";
    bytes.windows(NEEDLE.len()).filter(|w| *w == NEEDLE).count() as u64
}

/// Streams events as JSONL, tracking the flushed byte offset.
struct EventWriter {
    path: String,
    out: BufWriter<File>,
    bytes: u64,
    err: Option<std::io::Error>,
}

impl EventWriter {
    fn flush(&mut self) -> Result<u64, RunError> {
        if let Err(e) = self.out.flush() {
            self.err.get_or_insert(e);
        }
        match self.err.take() {
            Some(e) => Err(io_err("write events to", &self.path, &e)),
            None => Ok(self.bytes),
        }
    }
}

impl Observer for EventWriter {
    fn event(&mut self, event: TraceEvent) {
        if self.err.is_some() {
            return;
        }
        let mut line = serde::json::to_string(&event);
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.err = Some(e);
        } else {
            self.bytes += line.len() as u64;
        }
    }
}

/// The events sink: a real JSONL writer, or nothing (events discarded).
pub struct EventLog(Option<EventWriter>);

impl EventLog {
    /// Open the sink at `path` (`None` = discard events).
    ///
    /// With `resume_offset`, truncates the file back to that flushed
    /// prefix — everything after it describes ticks the resumed machine
    /// will re-execute — and returns how many tick boundaries the dropped
    /// tail held.
    ///
    /// # Errors
    ///
    /// I/O failures, and a file shorter than the resume offset (the log
    /// was rewritten behind the checkpoint's back).
    pub fn open(path: Option<&str>, resume_offset: Option<u64>) -> Result<(Self, u64), RunError> {
        let Some(path) = path else { return Ok((EventLog(None), 0)) };
        let mut replayed = 0;
        let file = if let Some(offset) = resume_offset {
            let meta = std::fs::metadata(path).map_err(|e| io_err("stat", path, &e))?;
            if meta.len() < offset {
                return Err(RunError(format!(
                    "events file {path} is shorter ({}) than the checkpoint's offset ({offset}) \
                     — was it rewritten since the checkpoint?",
                    meta.len()
                )));
            }
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(path)
                .map_err(|e| io_err("open", path, &e))?;
            f.seek(SeekFrom::Start(offset)).map_err(|e| io_err("seek", path, &e))?;
            let mut tail = Vec::new();
            f.read_to_end(&mut tail).map_err(|e| io_err("read", path, &e))?;
            replayed = count_tick_starts(&tail);
            f.set_len(offset).map_err(|e| io_err("truncate", path, &e))?;
            f.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", path, &e))?;
            f
        } else {
            File::create(path).map_err(|e| io_err("create", path, &e))?
        };
        let writer = EventWriter {
            path: path.to_string(),
            out: BufWriter::new(file),
            bytes: resume_offset.unwrap_or(0),
            err: None,
        };
        Ok((EventLog(Some(writer)), replayed))
    }

    /// Flush and report the stable byte offset (0 when no file).
    ///
    /// # Errors
    ///
    /// Deferred write errors surface here.
    pub fn checkpointable_offset(&mut self) -> Result<u64, RunError> {
        match &mut self.0 {
            Some(w) => w.flush(),
            None => Ok(0),
        }
    }

    /// Drop everything past `offset` — the in-process analogue of the
    /// resume-time truncation, used when a surfaced worker panic rewinds
    /// the run to its last checkpoint.
    ///
    /// # Errors
    ///
    /// I/O failures while truncating.
    pub fn rewind_to(&mut self, offset: u64) -> Result<(), RunError> {
        let Some(w) = &mut self.0 else { return Ok(()) };
        w.flush()?;
        let path = w.path.clone();
        let f = w.out.get_mut();
        f.set_len(offset).map_err(|e| io_err("truncate", &path, &e))?;
        f.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", &path, &e))?;
        w.bytes = offset;
        Ok(())
    }
}

impl Observer for EventLog {
    fn event(&mut self, event: TraceEvent) {
        if let Some(w) = &mut self.0 {
            w.event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_tick_starts_in_tails() {
        assert_eq!(count_tick_starts(b""), 0);
        let tail =
            b"{\"TickStart\":{\"cycle\":3}}\n{\"Failure\":{}}\n{\"TickStart\":{\"cycle\":4}}\n{\"torn";
        assert_eq!(count_tick_starts(tail), 2);
    }

    #[test]
    fn resume_truncates_and_counts_the_tail() {
        let dir = std::env::temp_dir().join("rfsp-run-events-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path_s = path.to_str().unwrap();

        let (mut log, replayed) = EventLog::open(Some(path_s), None).unwrap();
        assert_eq!(replayed, 0);
        log.event(TraceEvent::TickStart { cycle: 0 });
        log.event(TraceEvent::TickStart { cycle: 1 });
        let offset = log.checkpointable_offset().unwrap();
        log.event(TraceEvent::TickStart { cycle: 2 });
        log.checkpointable_offset().unwrap();
        drop(log);

        // Resume at the two-tick offset: the one-tick tail is dropped.
        let (mut log, replayed) = EventLog::open(Some(path_s), Some(offset)).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(log.checkpointable_offset().unwrap(), offset);
        drop(log);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), offset);

        // A log shorter than the checkpointed offset is refused.
        let Err(err) = EventLog::open(Some(path_s), Some(offset + 999)) else {
            panic!("over-long resume offset accepted")
        };
        assert!(err.0.contains("shorter"), "{err}");

        // No path: a black hole that reports offset 0.
        let (mut log, replayed) = EventLog::open(None, None).unwrap();
        assert_eq!(replayed, 0);
        log.event(TraceEvent::TickStart { cycle: 0 });
        assert_eq!(log.checkpointable_offset().unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
