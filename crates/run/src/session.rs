//! [`RunSession`] — the one implementation of "run this crash-safely" —
//! and [`run_with_cut`], the in-memory kill/checkpoint/resume cross-check.
//!
//! The session loop is the orchestration `rfsp experiment --run writeall`
//! pioneered (PR 4) and the policy engine refined (PR 9), extracted so the
//! CLI, the soak harness, and the `rfsp serve` daemon all drive the exact
//! same code:
//!
//! 1. run an armored segment until the policy's next checkpoint is due, a
//!    caller pause fires (SIGINT, preemption quantum, cancellation), or
//!    the run completes;
//! 2. at each pause, flush the events log and — when the cadence or an
//!    external pause demands it — publish a durable checkpoint atomically;
//! 3. hand control to the caller (`on_pause`), who may stop the session
//!    (checkpointed, resumable) or let it continue;
//! 4. on a surfaced worker panic, rewind machine + adversary + policy
//!    engine + events log to the last checkpoint and replay, with the
//!    wasted-work counters recording the overhead.

use std::time::Instant;

use rfsp_pram::{
    Adversary, Observer, PolicyEngine, PolicyKind, PramError, RunLimits, RunReport, RunStatus,
    SharedMemory, Tee, WastedWork,
};

use crate::checkpoint::{SessionCheckpoint, SESSION_CHECKPOINT_VERSION};
use crate::config::{build_adversary, RunConfig};
use crate::events::EventLog;
use crate::host::{ExecMode, RunHost};
use crate::{machine_err, RunError};
use serde::Serialize as _;

/// What the caller decides at a pause.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PauseFlow {
    /// Keep running.
    Continue,
    /// Stop the session here (the state is checkpointed if a checkpoint
    /// path is configured — the run is resumable).
    Stop,
}

/// What the session tells the caller at a pause.
#[derive(Debug)]
pub struct PauseInfo<'a> {
    /// The tick boundary the machine is paused at.
    pub cycle: u64,
    /// Whether this pause published a durable checkpoint.
    pub checkpointed: bool,
    /// Whether the pause was requested by the caller's `pause_when` hook
    /// (as opposed to the checkpoint cadence alone).
    pub external: bool,
    /// Cumulative fault-tolerance overhead so far.
    pub wasted: &'a WastedWork,
}

/// How a session ended.
#[derive(Debug)]
pub enum SessionEnd {
    /// The program ran to completion.
    Completed(RunReport),
    /// The caller stopped the session at a pause (resumable).
    Stopped {
        /// The tick boundary the session stopped at.
        cycle: u64,
    },
}

/// One crash-safe run: machine + adversary + policy engine + events log +
/// durable checkpoints, driven by the canonical session loop.
///
/// Generic over the machine shape (see [`RunHost`]) and parameterized by
/// an [`ExecMode`] naming the tick engine. The `rebuild` factory recreates
/// the machine from scratch — the from-scratch leg of panic recovery when
/// no checkpoint exists yet.
pub struct RunSession<'a, M: RunHost> {
    cfg: RunConfig,
    machine: M,
    adversary: Box<dyn Adversary>,
    engine: PolicyEngine,
    events: EventLog,
    wasted: WastedWork,
    /// The last published snapshot, kept in memory: a surfaced worker
    /// panic is handled like a crash — rewind to it and replay.
    last_saved: Option<SessionCheckpoint>,
    last_pause: Option<u64>,
    exec: ExecMode<'a>,
    rebuild: Box<dyn FnMut() -> Result<M, PramError> + 'a>,
}

impl<'a, M: RunHost> RunSession<'a, M> {
    /// Start a fresh session from `cfg`. `rebuild` constructs the machine
    /// (it is called once now, and again if a panic forces a from-scratch
    /// restart before the first checkpoint).
    ///
    /// # Errors
    ///
    /// Machine construction, adversary construction, and events-log I/O.
    pub fn new(
        cfg: RunConfig,
        exec: ExecMode<'a>,
        mut rebuild: Box<dyn FnMut() -> Result<M, PramError> + 'a>,
    ) -> Result<Self, RunError> {
        let machine = rebuild().map_err(|e| machine_err(&e))?;
        let adversary = build_adversary(&cfg)?;
        let engine = PolicyEngine::new(cfg.policy_kind());
        let (events, _) = EventLog::open(cfg.events.as_deref(), None)?;
        Ok(RunSession {
            cfg,
            machine,
            adversary,
            engine,
            events,
            wasted: WastedWork::default(),
            last_saved: None,
            last_pause: None,
            exec,
            rebuild,
        })
    }

    /// Resume a session from a loaded checkpoint: rebuild the machine and
    /// adversary from the checkpoint's config, rehydrate their state,
    /// truncate the events log back to the checkpointed offset, and count
    /// the dropped tail as ticks to replay.
    ///
    /// # Errors
    ///
    /// Construction and I/O as [`RunSession::new`], plus restore refusals
    /// (cross-policy or cross-layout checkpoints, version skew).
    pub fn resume(
        ck: SessionCheckpoint,
        exec: ExecMode<'a>,
        mut rebuild: Box<dyn FnMut() -> Result<M, PramError> + 'a>,
    ) -> Result<Self, RunError> {
        let cfg = ck.config.clone();
        let mut machine = rebuild().map_err(|e| machine_err(&e))?;
        let mut adversary = build_adversary(&cfg)?;
        let mut engine = PolicyEngine::new(cfg.policy_kind());
        let (events, replayed_tail) =
            EventLog::open(cfg.events.as_deref(), Some(ck.events_offset))?;
        // Engine first: its restore refuses cross-policy checkpoints
        // before anything is mutated.
        engine.restore_state(&ck.machine.policy).map_err(|e| machine_err(&e))?;
        machine
            .host_restore_checkpoint(&ck.machine, &mut *adversary)
            .map_err(|e| machine_err(&e))?;
        let mut wasted = ck.wasted;
        wasted.restores += 1;
        wasted.replayed_ticks += replayed_tail;
        eprintln!(
            "resumed from tick {} ({} event bytes kept, {replayed_tail} ticks to replay)",
            ck.machine.cycle, ck.events_offset
        );
        Ok(RunSession {
            cfg,
            machine,
            adversary,
            engine,
            events,
            wasted,
            last_saved: Some(ck),
            last_pause: None,
            exec,
            rebuild,
        })
    }

    /// The run's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// The machine's current tick.
    pub fn cycle(&self) -> u64 {
        self.machine.host_cycle()
    }

    /// Cumulative fault-tolerance overhead.
    pub fn wasted(&self) -> &WastedWork {
        &self.wasted
    }

    /// The policy kind in force (for reporting).
    pub fn policy_kind(&self) -> PolicyKind {
        self.engine.kind()
    }

    /// The machine's shared memory (for postcondition checks).
    pub fn memory(&self) -> &SharedMemory {
        self.machine.host_memory()
    }

    /// Drive the session until completion or a caller-requested stop.
    ///
    /// * `pause_when` is consulted at every tick boundary (cheap!): return
    ///   `true` to force a pause — SIGINT, a preemption quantum expiring,
    ///   a cancellation flag. An externally requested pause always writes
    ///   a checkpoint (when a path is configured), even off-cadence, so
    ///   stopping is always resumable.
    /// * `on_pause` runs while the machine is paused at a tick boundary,
    ///   after any due checkpoint was published; return
    ///   [`PauseFlow::Stop`] to end the session there.
    /// * `telemetry` sees every machine event, after the events log and
    ///   the policy engine (daemon subscribers hang off this).
    ///
    /// # Errors
    ///
    /// Machine errors and checkpoint/events I/O. Surfaced worker panics
    /// are *not* errors: the session rewinds to its last checkpoint (or
    /// restarts from scratch) and replays, escalating the panic policy as
    /// the engine dictates.
    pub fn run(
        &mut self,
        pause_when: &mut dyn FnMut(u64) -> bool,
        on_pause: &mut dyn FnMut(PauseInfo<'_>) -> PauseFlow,
        telemetry: &mut dyn Observer,
    ) -> Result<SessionEnd, RunError> {
        let limits = self.cfg.limits();
        let cadence = self.cfg.checkpoint.is_some();
        loop {
            let lp = self.last_pause;
            // The engine only moves its due point when a checkpoint is
            // recorded — at a pause — so the target is stable for the
            // whole run segment.
            let due_at = self.engine.next_due();
            // Whether the segment's pause was externally requested (such
            // pauses force a checkpoint and are reported to `on_pause`).
            let mut external = false;
            let policy = self.engine.panic_policy();
            let status = {
                let mut inner = Tee(&mut self.events, &mut self.engine);
                let mut observer = Tee(&mut inner, telemetry);
                self.machine.host_run_armored(
                    &mut *self.adversary,
                    limits,
                    self.exec,
                    policy,
                    &mut observer,
                    &mut |cycle| {
                        let ext = pause_when(cycle);
                        if (ext || (cadence && cycle >= due_at)) && lp != Some(cycle) {
                            external = ext;
                            rfsp_pram::RunControl::Pause
                        } else {
                            rfsp_pram::RunControl::Continue
                        }
                    },
                )
            };
            let status = match status {
                Ok(status) => status,
                Err(e @ PramError::WorkerPanic { .. }) => {
                    self.recover_from_panic(&e)?;
                    continue;
                }
                Err(e) => return Err(machine_err(&e)),
            };
            match status {
                RunStatus::Completed(report) => {
                    self.events.checkpointable_offset()?;
                    return Ok(SessionEnd::Completed(report));
                }
                RunStatus::Paused { cycle } => {
                    self.last_pause = Some(cycle);
                    let checkpointed = self.checkpoint_if_due(cycle, external)?;
                    let info = PauseInfo { cycle, checkpointed, external, wasted: &self.wasted };
                    match on_pause(info) {
                        PauseFlow::Continue => {}
                        PauseFlow::Stop => return Ok(SessionEnd::Stopped { cycle }),
                    }
                }
            }
        }
    }

    /// Publish a checkpoint if the cadence is due at `cycle` — or
    /// unconditionally when the pause was `forced` externally — and keep
    /// it in memory as the panic-rewind target.
    fn checkpoint_if_due(&mut self, cycle: u64, forced: bool) -> Result<bool, RunError> {
        let offset = self.events.checkpointable_offset()?;
        let Some(path) = self.cfg.checkpoint.as_deref() else { return Ok(false) };
        if !(self.engine.checkpoint_due(cycle) || forced) {
            return Ok(false);
        }
        let started = Instant::now();
        let mut machine_ck =
            self.machine.host_save_checkpoint(&self.adversary).map_err(|e| machine_err(&e))?;
        // Feed the cost model the machine snapshot alone (policy field
        // still Null): a pure function of machine state, identical in a
        // resumed and an uninterrupted run.
        let machine_bytes = serde::json::to_string(&machine_ck.to_value()).len() as u64;
        self.engine.record_checkpoint(cycle, machine_bytes);
        machine_ck.policy = self.engine.save_state();
        let ck = SessionCheckpoint {
            version: SESSION_CHECKPOINT_VERSION,
            config: self.cfg.clone(),
            events_offset: offset,
            wasted: self.wasted,
            machine: machine_ck,
        };
        let file_bytes = ck.store(path)?;
        self.wasted.checkpoints += 1;
        self.wasted.checkpoint_bytes += file_bytes;
        self.wasted.checkpoint_ns += started.elapsed().as_nanos() as u64;
        self.last_saved = Some(ck);
        Ok(true)
    }

    /// Crash-style panic recovery: the isolating engine restored the
    /// pre-tick state, so the machine stands at the failed tick's
    /// boundary. Rewind to the last durable checkpoint (or the start) and
    /// replay, under whatever panic policy the engine now dictates —
    /// after enough repeats it escalates to the sequential fallback.
    fn recover_from_panic(&mut self, e: &PramError) -> Result<(), RunError> {
        let escalated = self.engine.record_panic();
        let panicked_at = self.machine.host_cycle();
        self.wasted.restores += 1;
        match &self.last_saved {
            Some(saved) => {
                self.engine.restore_state(&saved.machine.policy).map_err(|e| machine_err(&e))?;
                self.machine
                    .host_restore_checkpoint(&saved.machine, &mut *self.adversary)
                    .map_err(|e| machine_err(&e))?;
                self.events.rewind_to(saved.events_offset)?;
                self.wasted.replayed_ticks += panicked_at.saturating_sub(saved.machine.cycle);
                eprintln!(
                    "{e}; rewound from tick {panicked_at} to checkpointed tick {} \
                     (next attempt: {escalated:?})",
                    saved.machine.cycle
                );
            }
            None => {
                self.machine = (self.rebuild)().map_err(|e| machine_err(&e))?;
                self.adversary = build_adversary(&self.cfg)?;
                self.engine.reset_preserving_panics();
                self.wasted.replayed_ticks += panicked_at;
                eprintln!(
                    "{e}; no checkpoint yet — restarted from scratch at tick 0 \
                     (next attempt: {escalated:?})"
                );
            }
        }
        self.last_pause = None;
        Ok(())
    }
}

/// Outcome of a [`run_with_cut`] kill/checkpoint/resume cross-check.
pub struct CutOutcome<M> {
    /// The (resumed or uninterrupted) run's report.
    pub report: RunReport,
    /// The machine that produced it, for memory/postcondition inspection.
    pub machine: M,
    /// Adaptive-policy cuts only: the uninterrupted and the resumed
    /// engine's serialized final states (`None` if the run completed
    /// before the kill tick — nothing was cut).
    pub policy_states: Option<(String, String)>,
}

/// Kill a run at a tick boundary, checkpoint it **through the JSON
/// codec** (the on-disk format is part of what callers certify), restore
/// into a freshly built machine + adversary, and run to completion — the
/// soak harness's crash-recovery lane, for any [`RunHost`].
///
/// With `policy` set, an adaptive [`PolicyEngine`] of that kind observes
/// an uninterrupted reference run and the killed/resumed run; the engine
/// state rides the checkpoint's policy payload and both serialized final
/// states are returned for bit-equality checks (the policy-determinism
/// claim: decisions are a pure function of the event stream).
///
/// # Errors
///
/// See [`PramError`].
pub fn run_with_cut<M: RunHost>(
    mut build: impl FnMut() -> Result<M, PramError>,
    mut make_adversary: impl FnMut() -> Box<dyn Adversary>,
    limits: RunLimits,
    kill_at: u64,
    policy: Option<PolicyKind>,
) -> Result<CutOutcome<M>, PramError> {
    let mut ref_engine = policy.map(PolicyEngine::new);
    if let Some(engine) = &mut ref_engine {
        // Uninterrupted run with the engine observing: the
        // decision-stream reference.
        let mut straight = build()?;
        let mut adv = make_adversary();
        straight.host_run(&mut *adv, limits, engine)?;
    }

    let mut first = build()?;
    let mut adv = make_adversary();
    let mut engine = policy.map(PolicyEngine::new);
    let mut armed = true;
    let mut control = |cycle: u64| {
        if armed && cycle >= kill_at {
            armed = false;
            rfsp_pram::RunControl::Pause
        } else {
            rfsp_pram::RunControl::Continue
        }
    };
    let status = match &mut engine {
        Some(e) => first.host_run_controlled(&mut *adv, limits, e, &mut control)?,
        None => first.host_run_controlled(
            &mut *adv,
            limits,
            &mut rfsp_pram::NoopObserver,
            &mut control,
        )?,
    };
    match status {
        // Finished before the kill tick: nothing to resume.
        RunStatus::Completed(report) => {
            Ok(CutOutcome { report, machine: first, policy_states: None })
        }
        RunStatus::Paused { .. } => {
            let mut ck = first.host_save_checkpoint(&adv)?;
            if let Some(e) = &engine {
                ck.policy = e.save_state();
            }
            // Round-trip through JSON: the on-disk format — including the
            // policy payload when present — is part of what callers
            // certify.
            let ck = rfsp_pram::Checkpoint::from_json(&ck.to_json())?;
            drop(first);
            let mut second = build()?;
            // The replacement adversary is rebuilt from config, as a
            // resuming process would; the checkpoint rehydrates its
            // mutable cursor.
            let mut adv2 = make_adversary();
            let mut resumed_engine = policy.map(PolicyEngine::new);
            if let Some(e) = &mut resumed_engine {
                e.restore_state(&ck.policy)?;
            }
            second.host_restore_checkpoint(&ck, &mut *adv2)?;
            let report = match &mut resumed_engine {
                Some(e) => second.host_run(&mut *adv2, limits, e)?,
                None => second.host_run(&mut *adv2, limits, &mut rfsp_pram::NoopObserver)?,
            };
            let policy_states = match (&ref_engine, &resumed_engine) {
                (Some(r), Some(g)) => Some((
                    serde::json::to_string(&r.save_state()),
                    serde::json::to_string(&g.save_state()),
                )),
                _ => None,
            };
            Ok(CutOutcome { report, machine: second, policy_states })
        }
    }
}
