//! Durable atomic file publication — the tmp + fsync + rename dance.
//!
//! Both the long-run checkpoint writer and the soak harness used to carry
//! private copies of this sequence; this is the one shared implementation
//! (ISSUE 10, satellite 2).

use std::fs::File;
use std::io::Write;

use crate::{io_err, RunError};

/// Write `text` to `path` durably and atomically: write a sibling tmp
/// file, fsync it, rename it over `path`, then fsync the parent directory
/// so the rename itself survives a power cut. A reader (or a kill at any
/// instant) sees either the old file or the complete new one — never a
/// torn write. Returns the published size in bytes.
///
/// # Errors
///
/// Any I/O failure, decorated with the operation and path.
pub fn write_atomic(path: &str, text: &str) -> Result<u64, RunError> {
    let tmp = format!("{path}.tmp");
    let bytes = text.len() as u64;
    let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, &e))?;
    f.write_all(text.as_bytes()).map_err(|e| io_err("write", &tmp, &e))?;
    // The data must be on disk before the rename publishes it, or a crash
    // could leave a fully-named but empty file.
    f.sync_all().map_err(|e| io_err("fsync", &tmp, &e))?;
    drop(f);
    // The rename is atomic: a reader (or a kill) never sees a torn file.
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, &e))?;
    // The rename lives in the directory entry; fsync the parent so the
    // publication itself is durable.
    let parent = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    File::open(parent)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("fsync parent directory of", path, &e))?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_content_and_reports_size() {
        let dir = std::env::temp_dir().join("rfsp-run-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let path_s = path.to_str().unwrap();
        let n = write_atomic(path_s, "{\"a\":1}").unwrap();
        assert_eq!(n, 7);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}");
        // Overwrite: the old content is replaced wholesale, and no tmp
        // residue survives a successful publication.
        write_atomic(path_s, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!dir.join("out.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_parent_directory_is_a_decorated_error() {
        let path = std::env::temp_dir().join("rfsp-run-atomic-nodir/sub/out.json");
        let err = write_atomic(path.to_str().unwrap(), "x").unwrap_err();
        assert!(err.0.contains("cannot create"), "{err}");
        assert!(err.0.contains(".tmp"), "{err}");
    }
}
