//! End-to-end certification of the session layer, independent of the CLI:
//! a killed-and-resumed [`RunSession`] must produce a byte-identical event
//! stream to an uninterrupted one, and [`run_with_cut`] must agree with a
//! straight run.

use rfsp_adversary::RandomFaults;
use rfsp_core::{AlgoX, WriteAllTasks, XOptions};
use rfsp_pram::{CycleBudget, LayoutBuilder, Machine, PolicyKind, RunLimits};
use rfsp_run::{
    run_with_cut, ExecMode, PauseFlow, RunConfig, RunSession, SessionCheckpoint, SessionEnd,
};

fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rfsp-run-session-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &std::path::Path, tag: &str) -> RunConfig {
    RunConfig {
        algo: "x".into(),
        n: 64,
        p: 8,
        adversary: "random".into(),
        rate: 0.2,
        restart_rate: 0.6,
        seed: 11,
        every: 5,
        checkpoint: Some(dir.join(format!("{tag}-ck.json")).display().to_string()),
        events: Some(dir.join(format!("{tag}.jsonl")).display().to_string()),
        ..RunConfig::default()
    }
}

/// Run a full session over algorithm X with the given config; `kill_at`
/// stops it at the first pause at or after that tick (externally, so a
/// checkpoint is forced). Returns whether it completed.
fn drive(cfg: &RunConfig, kill_at: Option<u64>, resume: bool) -> bool {
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, cfg.n as usize);
    let prog = AlgoX::new(&mut layout, tasks, cfg.p as usize, XOptions::default());
    let build = Box::new(|| Machine::new(&prog, cfg.p as usize, CycleBudget::PAPER));

    let mut session = if resume {
        let ck = SessionCheckpoint::load(cfg.checkpoint.as_deref().unwrap()).unwrap();
        RunSession::resume(ck, ExecMode::Sequential, build).unwrap()
    } else {
        RunSession::new(cfg.clone(), ExecMode::Sequential, build).unwrap()
    };

    let end = session
        .run(
            &mut |cycle| kill_at.is_some_and(|k| cycle >= k),
            &mut |pause| if pause.external { PauseFlow::Stop } else { PauseFlow::Continue },
            &mut rfsp_pram::NoopObserver,
        )
        .unwrap();
    match end {
        SessionEnd::Completed(_) => {
            assert!(tasks.all_written(session.memory()), "postcondition violated");
            true
        }
        SessionEnd::Stopped { cycle } => {
            assert!(kill_at.is_some_and(|k| cycle >= k));
            false
        }
    }
}

#[test]
fn killed_session_resumes_to_byte_identical_events() {
    let dir = test_dir("resume");

    let base = config(&dir, "base");
    assert!(drive(&base, None, false), "baseline must complete");

    let cut = config(&dir, "cut");
    assert!(!drive(&cut, Some(7), false), "killed run must stop");
    assert!(drive(&cut, None, true), "resumed run must complete");

    let want = std::fs::read(base.events.as_deref().unwrap()).unwrap();
    let got = std::fs::read(cut.events.as_deref().unwrap()).unwrap();
    assert!(!want.is_empty());
    assert_eq!(want, got, "resumed event stream diverged from the uninterrupted run");

    let dropped = test_dir("resume"); // second killed run against a fresh dir
    let cut2 = config(&dropped, "cut");
    assert!(!drive(&cut2, Some(7), false));
    // Resume carries the wasted-work ledger forward: the checkpoint on
    // disk already records at least one checkpoint written.
    let ck = SessionCheckpoint::load(cut2.checkpoint.as_deref().unwrap()).unwrap();
    assert!(ck.wasted.checkpoints >= 1);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dropped);
}

#[test]
fn run_with_cut_matches_a_straight_run() {
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, 64);
    let prog = AlgoX::new(&mut layout, tasks, 8, XOptions::default());
    let limits = RunLimits::default();

    let mut straight = Machine::new(&prog, 8, CycleBudget::PAPER).unwrap();
    let straight_report =
        straight.run_with_limits(&mut RandomFaults::new(0.2, 0.6, 11), limits).unwrap();

    let outcome = run_with_cut(
        || Machine::new(&prog, 8, CycleBudget::PAPER),
        || Box::new(RandomFaults::new(0.2, 0.6, 11)),
        limits,
        6,
        None,
    )
    .unwrap();
    assert!(outcome.policy_states.is_none());
    assert_eq!(outcome.report.stats, straight_report.stats);
    assert!(tasks.all_written(outcome.machine.memory()));

    // With an adaptive policy riding the checkpoint, the resumed engine's
    // final state must be bit-identical to the uninterrupted reference's.
    let outcome = run_with_cut(
        || Machine::new(&prog, 8, CycleBudget::PAPER),
        || Box::new(RandomFaults::new(0.2, 0.6, 11)),
        limits,
        6,
        Some(PolicyKind::Adaptive),
    )
    .unwrap();
    let (reference, resumed) = outcome.policy_states.expect("cut must happen before completion");
    assert_eq!(reference, resumed, "policy engine diverged across the cut");
}
