//! Minimal SIGINT handling for long-running commands.
//!
//! The crash-safe experiment runner checks [`interrupted`] at every tick
//! boundary; the handler merely sets an atomic flag, so the run can pause
//! cleanly — flush telemetry, write a final checkpoint — instead of dying
//! mid-tick. On non-Unix targets installation is a no-op and the flag
//! simply never trips.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Whether a SIGINT has arrived since [`install`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Arm (or re-arm) the flag; used by tests and by runs started after an
/// earlier interrupted run in the same process.
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // A store to a static atomic is async-signal-safe.
        super::INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGINT handler (idempotent).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_resets() {
        install();
        reset();
        assert!(!interrupted());
        INTERRUPTED.store(true, std::sync::atomic::Ordering::SeqCst);
        assert!(interrupted());
        reset();
        assert!(!interrupted());
    }

    /// A real SIGINT (not a direct store) must trip the flag: certifies
    /// the handler is installed and async-signal-safe in practice.
    #[cfg(unix)]
    #[test]
    fn delivered_sigint_trips_the_flag() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // Install FIRST: raising SIGINT under the default disposition
        // would kill the test process.
        install();
        reset();
        let rc = unsafe { raise(2) };
        assert_eq!(rc, 0, "raise(SIGINT) failed");
        // Signal delivery to the raising thread is synchronous on Linux,
        // but spin briefly to stay portable.
        for _ in 0..1000 {
            if interrupted() {
                break;
            }
            std::thread::yield_now();
        }
        assert!(interrupted(), "SIGINT handler did not set the flag");
        reset();
    }
}
