//! # rfsp-cli — drive the restartable fail-stop PRAM toolkit from a shell
//!
//! ```text
//! rfsp writeall   --algo x --n 1024 --p 64 --adversary random --rate 0.05
//! rfsp writeall   --algo x --adversary xkiller --record-pattern killer.pat
//! rfsp writeall   --algo v --adversary replay --replay-pattern killer.pat
//! rfsp simulate   --kernel prefix --n 512 --p 16 --engine vx
//! rfsp lockfree   --n 65536 --threads 8 --fault-rate 0.01
//! rfsp trace      --algo v --n 256 --adversary random --rate 0.1 --metrics -
//! rfsp experiment --id e7
//! ```
//!
//! The binary is a thin shell over the workspace crates; everything it can
//! do is equally available as a library API.

pub mod args;
pub mod commands;
pub mod signals;

// The failure-pattern codec moved into the `rfsp-run` session layer (the
// daemon needs it too); this re-export keeps the CLI's historical path.
pub use rfsp_run::pattern_io;

use args::{ArgError, Args};

/// How a successfully dispatched command ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CliOutcome {
    /// The command ran to completion (exit code 0).
    Done,
    /// A long run was interrupted by SIGINT after flushing telemetry and
    /// writing its final checkpoint (exit code 3 — distinct from errors,
    /// so wrappers can tell "resume me" from "I broke").
    Interrupted,
}

/// Usage text.
pub const USAGE: &str = "\
rfsp — efficient parallel algorithms on restartable fail-stop processors
       (Kanellakis & Shvartsman, PODC 1991)

USAGE: rfsp <COMMAND> [--key value]... [--flag]...

COMMANDS:
  writeall     solve a Write-All instance under an adversary
               --algo x|v|w|vx|x-inplace|acc   --n SIZE --p PROCS
               --adversary none|thrashing|pigeonhole|pigeonhole-failstop|
                           random|offline|xkiller|stalking|replay
               --rate F --restart-rate F --seed S --fault-budget M
               --target CELL --no-restarts
               --record-pattern FILE --replay-pattern FILE --max-cycles C
               --threads T        tick engine: 1 = sequential (default),
                                  T > 1 = persistent worker pool
               --banks B          partition shared memory into B banks
                                  (default 1 = flat); runs are bit-
                                  identical across layouts
               --interleave I     cells per block in the block-cyclic
                                  bank mapping (default 1 = word)
               --batch-width W    tentative-phase batch width (default:
                                  machine default; 1 = scalar reference
                                  path); behavior-invariant
  simulate     execute a PRAM kernel fault-tolerantly (Theorem 4.1)
               --kernel prefix|sum|max|sort|listrank|matvec|components
               --n SIZE --p PROCS --engine x|v|vx
               --adversary none|random --rate F --restart-rate F --seed S
  lockfree     run algorithm X on real OS threads over atomics
               --n SIZE --threads T --fault-rate F --seed S
  trace        run a Write-All instance under full telemetry and export it
               (same instance/adversary options as writeall, plus:)
               --events FILE|-    raw machine-event stream, JSONL
               --metrics FILE|-   per-tick metrics series
               --format csv|jsonl metrics format (default csv)
               --tail K           keep only the last K events
  experiment   reproduce a paper result  --id e1..e13|all
               or run the crash-safe long-run mode:
               --run writeall     --algo/--n/--p/--threads as writeall
               --adversary none|random|bursty|replay --rate F
               --restart-rate F --seed S --replay-pattern FILE
               --checkpoint FILE  write a resumable snapshot (atomic
                                  tmp+fsync+rename) on the policy's
                                  cadence and on SIGINT
               --policy P         checkpoint policy: fixed:K (snapshot
                                  every K ticks) or adaptive (steer the
                                  interval toward the Young/Daly optimum
                                  from the live failure intensity)
               --every K          fixed-policy cadence in ticks
                                  (default 100; must be >= 1)
               --events FILE      stream raw machine events as JSONL; a
                                  resumed run truncates it to the
                                  checkpointed offset, so the final stream
                                  is byte-identical to an uninterrupted run
               --resume CK        continue from a checkpoint file (all
                                  other flags come from the checkpoint)
  soak         randomized chaos harness: fuzz program x adversary x engine
               x injected host faults and cross-check equivalences
               --cases K --seed S --verbose
               --replay-out FILE  where to write a failing case
                                  (default soak-failure.json)
               --replay FILE      reproduce a failure from its replay file
  serve        run the multi-tenant experiment daemon over a local socket
               --spool DIR        job spool (default rfsp-spool); every job
                                  directory is independently resumable, so
                                  a restarted daemon re-adopts all of them
               --socket PATH      Unix socket (default <spool>/rfsp.sock)
               --workers T        shared tick-pool worker threads
                                  (default 2; jobs with --threads 1 run on
                                  the sequential engine instead)
               --quantum K        scheduling quantum in ticks (default 50);
                                  jobs are preempted only at checkpoint
                                  boundaries, round-robin, so no job waits
                                  more than (jobs - 1) quanta for a turn
  submit       queue a run on the daemon  --socket PATH, then the same
               flags as 'experiment --run writeall'; add --watch to stream
               the job's live telemetry to stdout
  jobs         list the daemon's jobs     --socket PATH
  cancel       stop a job at its next checkpoint  --socket PATH --job N
               (--shutdown instead stops every job and exits the daemon)
  help         show this text

EXIT CODES:
  0  success
  1  runtime error (I/O, machine error, failed cross-check, daemon refusal)
  2  usage error (unknown command or malformed command line)
  3  long run interrupted by SIGINT; telemetry flushed and, when
     --checkpoint is set, a final checkpoint written for --resume
";

/// Every subcommand `dispatch` accepts, for usage errors and docs.
pub const COMMANDS: &[&str] = &[
    "writeall",
    "simulate",
    "lockfree",
    "trace",
    "experiment",
    "soak",
    "serve",
    "submit",
    "jobs",
    "cancel",
    "help",
];

/// The unified "unknown X" error: name what was given and what would have
/// been accepted, the same shape for commands, algorithms, adversaries,
/// kernels, and formats.
pub fn unknown(what: &str, got: &str, expected: &[&str]) -> ArgError {
    ArgError(format!("unknown {what} '{got}' (expected one of: {})", expected.join(", ")))
}

/// Dispatch a parsed command line.
///
/// # Errors
///
/// Every user-facing problem is an [`ArgError`] with a printable message.
pub fn dispatch(args: &Args) -> Result<CliOutcome, ArgError> {
    let done = |r: Result<(), ArgError>| r.map(|()| CliOutcome::Done);
    match args.command.as_deref() {
        Some("writeall") => done(commands::writeall::run(args)),
        Some("simulate") => done(commands::simulate::run(args)),
        Some("lockfree") => done(commands::lockfree::run(args)),
        Some("trace") => done(commands::trace::run(args)),
        Some("experiment") => commands::experiment::run(args),
        Some("soak") => done(commands::soak::run(args)),
        Some("serve") => done(commands::serve::serve(args)),
        Some("submit") => done(commands::serve::submit(args)),
        Some("jobs") => done(commands::serve::jobs(args)),
        Some("cancel") => done(commands::serve::cancel(args)),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(CliOutcome::Done)
        }
        Some(other) => Err(unknown("command", other, COMMANDS)),
    }
}

/// The whole CLI as a function: parse, dispatch, and map the outcome to
/// the documented exit-code table (see `EXIT CODES` in [`USAGE`]).
///
/// * `0` — success.
/// * `1` — runtime error (I/O, machine error, failed cross-check).
/// * `2` — usage error: malformed command line or unknown command.
/// * `3` — long run interrupted by SIGINT after checkpointing.
pub fn run_cli<I, S>(raw: I) -> u8
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try 'rfsp help'");
            return 2;
        }
    };
    let usage_error = args.command.as_deref().is_some_and(|c| !COMMANDS.contains(&c));
    match dispatch(&args) {
        Ok(CliOutcome::Done) => 0,
        // Interrupted-with-checkpoint: distinct from errors so callers can
        // script "rerun with --resume".
        Ok(CliOutcome::Interrupted) => 3,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try 'rfsp help'");
            if usage_error {
                2
            } else {
                1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_commands() {
        let a = Args::parse(Vec::<String>::new()).unwrap();
        dispatch(&a).unwrap();
        let a = Args::parse(["bogus"]).unwrap();
        let Err(e) = dispatch(&a) else { panic!("unknown command accepted") };
        assert!(e.0.contains("unknown command 'bogus'"), "{e}");
        assert!(e.0.contains("expected one of"), "{e}");
    }

    #[test]
    fn exit_codes_follow_the_documented_table() {
        // 0 — success.
        assert_eq!(run_cli(["help"]), 0);
        assert_eq!(run_cli(["writeall", "--n", "32", "--p", "8"]), 0);
        // 2 — usage: unknown command, malformed command line.
        assert_eq!(run_cli(["bogus"]), 2);
        assert_eq!(run_cli(["writeall", "stray-positional"]), 2);
        // 1 — runtime: a known command that fails while running.
        assert_eq!(run_cli(["writeall", "--algo", "zzz"]), 1);
        assert_eq!(run_cli(["experiment", "--resume", "/no/such/ck.json"]), 1);
        // 3 — interrupted-with-checkpoint — exercised against the real
        // binary (signal delivery) in tests/exit_codes.rs.
    }

    #[test]
    fn small_writeall_runs_end_to_end() {
        let a = Args::parse([
            "writeall",
            "--n",
            "32",
            "--p",
            "8",
            "--algo",
            "x",
            "--adversary",
            "random",
            "--rate",
            "0.1",
            "--seed",
            "7",
        ])
        .unwrap();
        dispatch(&a).unwrap();
    }

    #[test]
    fn pooled_writeall_runs_end_to_end() {
        let a = Args::parse(["writeall", "--n", "32", "--p", "8", "--algo", "x", "--threads", "3"])
            .unwrap();
        dispatch(&a).unwrap();
        let a = Args::parse(["writeall", "--n", "32", "--p", "8", "--threads", "0"]).unwrap();
        assert!(dispatch(&a).is_err());
    }

    #[test]
    fn banked_writeall_runs_end_to_end() {
        let a = Args::parse([
            "writeall",
            "--n",
            "32",
            "--p",
            "8",
            "--algo",
            "x",
            "--banks",
            "4",
            "--interleave",
            "2",
        ])
        .unwrap();
        dispatch(&a).unwrap();
        let a = Args::parse(["writeall", "--n", "32", "--p", "8", "--banks", "0"]).unwrap();
        assert!(dispatch(&a).is_err());
    }

    #[test]
    fn small_simulation_runs_end_to_end() {
        let a =
            Args::parse(["simulate", "--kernel", "sum", "--n", "16", "--p", "4", "--engine", "x"])
                .unwrap();
        dispatch(&a).unwrap();
    }

    #[test]
    fn lockfree_runs_end_to_end() {
        let a = Args::parse(["lockfree", "--n", "256", "--threads", "2"]).unwrap();
        dispatch(&a).unwrap();
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("rfsp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pattern.pat");
        let path_s = path.to_str().unwrap();
        let a = Args::parse([
            "writeall",
            "--n",
            "32",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.2",
            "--seed",
            "3",
            "--record-pattern",
            path_s,
        ])
        .unwrap();
        dispatch(&a).unwrap();
        let a = Args::parse([
            "writeall",
            "--n",
            "32",
            "--p",
            "8",
            "--adversary",
            "replay",
            "--replay-pattern",
            path_s,
        ])
        .unwrap();
        dispatch(&a).unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn trace_exports_events_and_metrics() {
        let dir = std::env::temp_dir().join("rfsp-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("run.jsonl");
        let metrics = dir.join("run.csv");
        let a = Args::parse([
            "trace",
            "--n",
            "32",
            "--p",
            "8",
            "--algo",
            "v",
            "--adversary",
            "random",
            "--rate",
            "0.1",
            "--seed",
            "7",
            "--events",
            events.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        dispatch(&a).unwrap();
        let ev = std::fs::read_to_string(&events).unwrap();
        assert!(ev.lines().next().unwrap().contains("TickStart"));
        let mx = std::fs::read_to_string(&metrics).unwrap();
        assert!(mx.starts_with(rfsp_pram::TickMetrics::CSV_HEADER));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_tail_keeps_a_bounded_window() {
        let a = Args::parse([
            "trace",
            "--n",
            "64",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.2",
            "--seed",
            "1",
            "--tail",
            "10",
            "--format",
            "jsonl",
            "--metrics",
            std::env::temp_dir().join("rfsp-trace-tail.jsonl").to_str().unwrap(),
        ])
        .unwrap();
        dispatch(&a).unwrap();
        let _ = std::fs::remove_file(std::env::temp_dir().join("rfsp-trace-tail.jsonl"));
    }

    #[test]
    fn bad_arguments_are_reported() {
        let a = Args::parse(["writeall", "--algo", "zzz"]).unwrap();
        assert!(dispatch(&a).is_err());
        let a = Args::parse(["simulate", "--kernel", "zzz"]).unwrap();
        assert!(dispatch(&a).is_err());
        let a = Args::parse(["experiment", "--id", "e99"]).unwrap();
        assert!(dispatch(&a).is_err());
        let a = Args::parse(["lockfree", "--fault-rate", "2.0"]).unwrap();
        assert!(dispatch(&a).is_err());
    }
}
