//! A line-oriented text codec for failure patterns, so adversarial runs
//! can be saved to disk and replayed (`--record-pattern` /
//! `--replay-pattern`).
//!
//! Format, one event per line (`#` lines are comments):
//!
//! ```text
//! F <pid> <time> before-reads|before-writes|after-write:<k>
//! R <pid> <time>
//! ```

use rfsp_pram::{FailPoint, FailureEvent, FailureKind, FailurePattern};

use crate::args::ArgError;

/// Render a pattern in the text format.
pub fn encode(pattern: &FailurePattern) -> String {
    let mut out = String::from("# rfsp failure pattern v1\n");
    for e in pattern.events() {
        match e.kind {
            FailureKind::Failure { point } => {
                let p = match point {
                    FailPoint::BeforeReads => "before-reads".to_string(),
                    FailPoint::BeforeWrites => "before-writes".to_string(),
                    FailPoint::AfterWrite(k) => format!("after-write:{k}"),
                };
                out.push_str(&format!("F {} {} {}\n", e.pid, e.time, p));
            }
            FailureKind::Restart => {
                out.push_str(&format!("R {} {}\n", e.pid, e.time));
            }
        }
    }
    out
}

/// Parse the text format.
///
/// # Errors
///
/// Reports the first malformed line.
pub fn decode(text: &str) -> Result<FailurePattern, ArgError> {
    let mut pattern = FailurePattern::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = |what: &str| ArgError(format!("pattern line {}: {what}", lineno + 1));
        let tag = parts.next().ok_or_else(|| bad("missing tag"))?;
        let pid: usize =
            parts.next().ok_or_else(|| bad("missing pid"))?.parse().map_err(|_| bad("bad pid"))?;
        let time: u64 = parts
            .next()
            .ok_or_else(|| bad("missing time"))?
            .parse()
            .map_err(|_| bad("bad time"))?;
        let kind = match tag {
            "F" => {
                let point = match parts.next().ok_or_else(|| bad("missing fail point"))? {
                    "before-reads" => FailPoint::BeforeReads,
                    "before-writes" => FailPoint::BeforeWrites,
                    other => {
                        let k = other
                            .strip_prefix("after-write:")
                            .and_then(|k| k.parse().ok())
                            .ok_or_else(|| bad("bad fail point"))?;
                        FailPoint::AfterWrite(k)
                    }
                };
                FailureKind::Failure { point }
            }
            "R" => FailureKind::Restart,
            _ => return Err(bad("unknown tag (expected F or R)")),
        };
        if parts.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        pattern.push(FailureEvent { kind, pid, time });
    }
    Ok(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailurePattern {
        let mut p = FailurePattern::new();
        p.push(FailureEvent {
            kind: FailureKind::Failure { point: FailPoint::BeforeReads },
            pid: 3,
            time: 0,
        });
        p.push(FailureEvent {
            kind: FailureKind::Failure { point: FailPoint::AfterWrite(1) },
            pid: 5,
            time: 2,
        });
        p.push(FailureEvent { kind: FailureKind::Restart, pid: 3, time: 4 });
        p
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let text = encode(&p);
        let back = decode(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nF 0 1 before-writes\n  \n";
        let p = decode(text).unwrap();
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn malformed_lines_are_reported_with_location() {
        let err = decode("F 0 zzz before-writes").unwrap_err();
        assert!(err.0.contains("line 1"));
        assert!(decode("X 0 0").is_err());
        assert!(decode("F 0 0 during-write").is_err());
        assert!(decode("F 0 0 before-writes extra").is_err());
    }
}
