//! `rfsp simulate` — run a PRAM kernel fault-tolerantly (Theorem 4.1) and
//! verify its output against the failure-free reference.

use rfsp_adversary::RandomFaults;
use rfsp_pram::{NoFailures, RunLimits};
use rfsp_sim::programs::{
    Components, ListRanking, MatVec, MaxFind, OddEvenSort, ParallelSum, PrefixSums,
};
use rfsp_sim::{reference_run, simulate, Engine, SimProgram, SimReport};

use crate::args::{ArgError, Args};

fn parse_engine(name: &str) -> Result<Engine, ArgError> {
    Ok(match name {
        "x" => Engine::X,
        "v" => Engine::V,
        "vx" | "interleaved" => Engine::Interleaved,
        other => return Err(crate::unknown("engine", other, &["x", "v", "vx"])),
    })
}

fn run_kernel<P: SimProgram + Sync + Clone>(prog: P, args: &Args) -> Result<SimReport, ArgError> {
    let p: usize = args.get_parsed("p", 16)?;
    let engine = parse_engine(args.get_or("engine", "vx"))?;
    let expected = reference_run(&prog);
    let report = match args.get_or("adversary", "random") {
        "none" => simulate(prog, p, engine, &mut NoFailures, RunLimits::default()),
        "random" => {
            let rate: f64 = args.get_parsed("rate", 0.02)?;
            let restart: f64 = args.get_parsed("restart-rate", 0.6)?;
            let seed: u64 = args.get_parsed("seed", 0)?;
            let mut adv = RandomFaults::new(rate, restart, seed);
            simulate(prog, p, engine, &mut adv, RunLimits::default())
        }
        other => return Err(crate::unknown("adversary", other, &["none", "random"])),
    }
    .map_err(|e| ArgError(format!("machine error: {e}")))?;
    if report.memory != expected {
        return Err(ArgError("simulated output differs from the reference run".into()));
    }
    Ok(report)
}

/// Execute the subcommand.
///
/// # Errors
///
/// Reports bad arguments and verification failures as [`ArgError`].
pub fn run(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.get_parsed("n", 256)?;
    let kernel = args.get_or("kernel", "prefix");
    let report = match kernel {
        "prefix" => run_kernel(PrefixSums::new((0..n as u32).map(|i| i % 9).collect()), args)?,
        "sum" => run_kernel(ParallelSum::new((0..n as u32).map(|i| i % 5).collect()), args)?,
        "max" => run_kernel(MaxFind::new((0..n as u32).map(|i| (i * 37) % 1000).collect()), args)?,
        "sort" => run_kernel(OddEvenSort::new((0..n as u32).rev().collect()), args)?,
        "listrank" => run_kernel(ListRanking::chain(n), args)?,
        "components" => {
            // A ring plus chords: one component.
            let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            edges.extend((0..n / 3).map(|i| (i, (i * 7 + 2) % n)));
            run_kernel(Components::new(n.max(2), &edges), args)?
        }
        "matvec" => {
            let m = 8usize.min(n.max(1));
            let a = (0..n).map(|i| (0..m).map(|j| ((i + j) % 5) as u32).collect()).collect();
            let x = (0..m as u32).map(|j| j % 3 + 1).collect();
            run_kernel(MatVec::new(a, x), args)?
        }
        other => {
            return Err(crate::unknown(
                "kernel",
                other,
                &["prefix", "sum", "max", "sort", "listrank", "matvec", "components"],
            ))
        }
    };
    println!("kernel           : {kernel}");
    println!("simulated        : N = {}, τ = {} steps", report.sim_processors, report.sim_steps);
    println!("output           : verified against failure-free reference ✔");
    println!("completed work S : {}", report.run.stats.completed_work());
    println!("|F|              : {}", report.run.stats.pattern_size());
    println!("S / (τ·N)        : {:.2}", report.work_ratio());
    println!("overhead ratio σ : {:.3}", report.run.overhead_ratio(report.sim_processors as u64));
    Ok(())
}
