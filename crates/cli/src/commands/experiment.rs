//! `rfsp experiment` — run one of the paper-reproduction experiments, or
//! (with `--run` / `--resume`) the crash-safe long-run mode of
//! [`longrun`](crate::commands::longrun).

use rfsp_bench::experiments;

use crate::args::{ArgError, Args};
use crate::commands::longrun;
use crate::CliOutcome;

/// Execute the subcommand.
///
/// # Errors
///
/// Reports an unknown experiment id as [`ArgError`].
pub fn run(args: &Args) -> Result<CliOutcome, ArgError> {
    if args.get("run").is_some() || args.get("resume").is_some() {
        return longrun::run(args);
    }
    match args.get_or("id", "all") {
        "all" => experiments::run_all(),
        "e1" => experiments::e1::run(),
        "e2" => experiments::e2::run(),
        "e3" => experiments::e3::run(),
        "e4" => experiments::e4::run(),
        "e5" => experiments::e5::run(),
        "e6" => experiments::e6::run(),
        "e7" => experiments::e7::run(),
        "e8" => experiments::e8::run(),
        "e9" => experiments::e9::run(),
        "e10" => experiments::e10::run(),
        "e11" => experiments::e11::run(),
        "e12" => experiments::e12::run(),
        "e13" => experiments::e13::run(),
        other => {
            return Err(crate::unknown(
                "experiment",
                other,
                &[
                    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
                    "e13", "all",
                ],
            ))
        }
    }
    Ok(CliOutcome::Done)
}
