//! `rfsp lockfree` — algorithm X on real OS threads over atomics.

use std::time::Instant;

use rfsp_core::{run_lockfree_x, LockfreeOptions};

use crate::args::{ArgError, Args};

/// Execute the subcommand.
///
/// # Errors
///
/// Reports bad arguments as [`ArgError`].
pub fn run(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.get_parsed("n", 65_536)?;
    let threads: usize = args.get_parsed("threads", 4)?;
    let fault_rate: f64 = args.get_parsed("fault-rate", 0.0)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    if !(0.0..1.0).contains(&fault_rate) {
        return Err(ArgError("--fault-rate must be in [0, 1)".into()));
    }
    let start = Instant::now();
    let report = run_lockfree_x(n, threads, LockfreeOptions { fault_rate, seed });
    let wall = start.elapsed();
    println!("lock-free algorithm X: N = {n}, {threads} threads");
    println!("completed cycles : {}", report.completed_cycles);
    println!("cycles per cell  : {:.2}", report.completed_cycles as f64 / n as f64);
    println!("injected faults  : {}", report.failures);
    println!("wall time        : {wall:.1?}");
    println!("postcondition    : verified ✔ (asserted internally)");
    Ok(())
}
