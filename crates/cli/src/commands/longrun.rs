//! `rfsp experiment --run writeall` — the crash-safe long-run mode.
//!
//! Unlike `rfsp writeall` (one shot, in memory), this mode is built to
//! survive its host: the machine runs on the panic-isolating engine with
//! graceful sequential degradation, writes a versioned checkpoint on the
//! cadence a policy engine dictates (and on SIGINT) via an atomic
//! tmp-file + fsync + rename, and streams raw machine events to a JSONL
//! file whose flushed length is recorded in each checkpoint.
//! `rfsp experiment --resume ck.json` reconstructs everything from the
//! checkpoint alone — config, machine, adversary cursor, policy-engine
//! state — truncates the events file back to the recorded offset, and
//! continues; the resulting event stream, stats, and final memory are
//! bit-identical to an uninterrupted run.
//!
//! All of that machinery lives in [`rfsp_run::RunSession`] (shared with
//! the soak harness's crash-recovery lanes and the `rfsp serve` daemon);
//! this module is only the CLI skin: flag parsing, the program visitor,
//! SIGINT wiring, and the completion summary.
//!
//! Two checkpoint policies are available (`--policy`):
//!
//! * `fixed:K` — snapshot every `K` ticks, the classic cadence.
//! * `adaptive` — a [`PolicyEngine`](rfsp_pram::PolicyEngine) watches the
//!   live event stream, tracks an EWMA failure intensity and a
//!   checkpoint-cost estimate, and steers the interval toward the
//!   Young/Daly optimum `√(2C/λ)`. Its whole state rides in the
//!   checkpoint, so a resumed run makes the same decisions the
//!   uninterrupted run would have.
//!
//! ```text
//! rfsp experiment --run writeall --algo x --n 100000 --p 128 \
//!     --adversary bursty --rate 0.4 --seed 7 --policy adaptive \
//!     --checkpoint ck.json --events run.jsonl
//! # ^C, power loss, SIGKILL ... then:
//! rfsp experiment --resume ck.json
//! ```

use rfsp_bench::{with_write_all_program, WriteAllSetup, WriteAllVisitor};
use rfsp_pram::{CycleBudget, Machine, NoopObserver, PolicyKind, Program, RunLimits};
use rfsp_run::{ExecMode, PauseFlow, RunSession, SessionEnd};
use serde::{Deserialize, Serialize};

use crate::args::{ArgError, Args};
use crate::commands::writeall::parse_algo;
use crate::{signals, CliOutcome};

// The long-run types and helpers now live in the `rfsp-run` session
// layer; these aliases keep the CLI's historical names (and the on-disk
// format they describe) stable for users of this module.
pub use rfsp_run::{
    count_tick_starts, RunConfig as LongRunConfig, SessionCheckpoint as ExperimentCheckpoint,
    SESSION_CHECKPOINT_VERSION as EXPERIMENT_CHECKPOINT_VERSION,
};

struct LongRun<'a> {
    cfg: &'a LongRunConfig,
    resume: Option<&'a ExperimentCheckpoint>,
}

impl WriteAllVisitor for LongRun<'_> {
    type Out = Result<CliOutcome, ArgError>;

    fn visit<P>(self, prog: &P, setup: &WriteAllSetup, budget: CycleBudget) -> Self::Out
    where
        P: Program + Sync,
        P::Private: Send + Serialize + Deserialize,
    {
        let cfg = self.cfg;
        let procs = cfg.p as usize;
        let build = Box::new(move || Machine::new(prog, procs, budget));
        let exec = ExecMode::Threads(cfg.threads as usize);
        let mut session = match self.resume {
            Some(ck) => RunSession::resume(ck.clone(), exec, build)?,
            None => RunSession::new(cfg.clone(), exec, build)?,
        };

        // SIGINT is the only external pause source here: it forces a
        // checkpoint (when configured) and stops the session.
        let end = session.run(
            &mut |_| signals::interrupted(),
            &mut |pause| if pause.external { PauseFlow::Stop } else { PauseFlow::Continue },
            &mut NoopObserver,
        )?;
        match end {
            SessionEnd::Completed(report) => {
                if !setup.tasks.all_written(session.memory()) {
                    return Err(ArgError("postcondition failed: array not fully written".into()));
                }
                let wasted = session.wasted();
                println!("algorithm       : {}", cfg.algo);
                println!("instance        : N = {}, P = {}", cfg.n, cfg.p);
                println!("adversary       : {}", cfg.adversary);
                println!("policy          : {}", session.policy_kind());
                println!("completed work S: {}", report.stats.completed_work());
                println!("S' (with partial): {}", report.stats.s_prime());
                println!("parallel time τ : {}", report.stats.parallel_time);
                println!("|F| (fail+restart): {}", report.stats.pattern_size());
                println!(
                    "checkpoints     : {} ({} bytes, {} µs)",
                    wasted.checkpoints,
                    wasted.checkpoint_bytes,
                    wasted.checkpoint_ns / 1_000
                );
                println!(
                    "restores        : {} ({} ticks replayed)",
                    wasted.restores, wasted.replayed_ticks
                );
                Ok(CliOutcome::Done)
            }
            SessionEnd::Stopped { cycle } => {
                match cfg.checkpoint.as_deref() {
                    Some(path) => eprintln!(
                        "interrupted at tick {cycle}; resume with: rfsp experiment --resume {path}"
                    ),
                    None => eprintln!(
                        "interrupted at tick {cycle}; no --checkpoint configured, run cannot be \
                         resumed"
                    ),
                }
                Ok(CliOutcome::Interrupted)
            }
        }
    }
}

pub(crate) fn config_from_args(args: &Args) -> Result<LongRunConfig, ArgError> {
    let mut every = args.get_parsed("every", 100u64)?;
    let policy = match args.get("policy") {
        None => "fixed".to_string(),
        Some(text) => match PolicyKind::parse(text).map_err(ArgError)? {
            PolicyKind::Adaptive => {
                if args.get("every").is_some() {
                    return Err(ArgError(
                        "--policy adaptive chooses its own cadence; drop --every".into(),
                    ));
                }
                "adaptive".to_string()
            }
            PolicyKind::Fixed(k) => {
                if args.get("every").is_some() {
                    return Err(ArgError(
                        "--policy fixed:K already names the cadence; drop --every".into(),
                    ));
                }
                every = k;
                "fixed".to_string()
            }
        },
    };
    let cfg = LongRunConfig {
        algo: args.get_or("algo", "x").to_string(),
        n: args.get_parsed("n", 1024u64)?,
        p: args.get_parsed("p", 64u64)?,
        threads: args.get_parsed("threads", 1u64)?,
        adversary: args.get_or("adversary", "none").to_string(),
        rate: args.get_parsed("rate", 0.05f64)?,
        restart_rate: args.get_parsed("restart-rate", 0.5f64)?,
        seed: args.get_parsed("seed", 0u64)?,
        replay_pattern: args.get("replay-pattern").map(str::to_string),
        every,
        policy,
        max_cycles: args.get_parsed("max-cycles", RunLimits::default().max_cycles)?,
        checkpoint: args.get("checkpoint").map(str::to_string),
        events: args.get("events").map(str::to_string),
    };
    cfg.validate()?;
    Ok(cfg)
}

/// Entry point for both `--run writeall` and `--resume`.
///
/// # Errors
///
/// Bad arguments, unreadable/mismatched checkpoint or events files, and
/// machine errors, all as [`ArgError`].
pub fn run(args: &Args) -> Result<CliOutcome, ArgError> {
    signals::install();
    signals::reset();
    if let Some(path) = args.get("resume") {
        let ck = ExperimentCheckpoint::load(path)?;
        let algo = parse_algo(&ck.config.algo)?;
        let (n, p) = (ck.config.n as usize, ck.config.p as usize);
        with_write_all_program(algo, n, p, LongRun { cfg: &ck.config, resume: Some(&ck) })
    } else {
        let run = args.get_or("run", "writeall");
        if run != "writeall" {
            return Err(crate::unknown("long-run mode", run, &["writeall"]));
        }
        let cfg = config_from_args(args)?;
        let algo = parse_algo(&cfg.algo)?;
        let (n, p) = (cfg.n as usize, cfg.p as usize);
        with_write_all_program(algo, n, p, LongRun { cfg: &cfg, resume: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips_and_validates() {
        let a = Args::parse([
            "experiment",
            "--run",
            "writeall",
            "--algo",
            "v",
            "--n",
            "64",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.1",
            "--seed",
            "3",
            "--every",
            "10",
        ])
        .unwrap();
        let cfg = config_from_args(&a).unwrap();
        assert_eq!(cfg.algo, "v");
        assert_eq!(cfg.every, 10);
        assert_eq!(cfg.policy, "fixed");
        let back = LongRunConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);

        let a =
            Args::parse(["experiment", "--run", "writeall", "--algo", "acc", "--checkpoint", "x"])
                .unwrap();
        assert!(config_from_args(&a).is_err());
        let a = Args::parse(["experiment", "--run", "writeall", "--threads", "0"]).unwrap();
        assert!(config_from_args(&a).is_err());
    }

    #[test]
    fn rejects_degenerate_cadence_and_policy_conflicts() {
        let parse = |extra: &[&str]| {
            let mut argv = vec!["experiment", "--run", "writeall"];
            argv.extend_from_slice(extra);
            config_from_args(&Args::parse(argv).unwrap())
        };
        let e = parse(&["--every", "0"]).unwrap_err();
        assert!(e.0.contains("degenerate"), "unexpected message: {}", e.0);
        assert!(parse(&["--policy", "fixed:0"]).is_err());
        assert!(parse(&["--policy", "sometimes"]).is_err());
        assert!(parse(&["--policy", "adaptive", "--every", "7"]).is_err());
        assert!(parse(&["--policy", "fixed:12", "--every", "7"]).is_err());

        let cfg = parse(&["--policy", "fixed:12"]).unwrap();
        assert_eq!((cfg.policy.as_str(), cfg.every), ("fixed", 12));
        let cfg = parse(&["--policy", "adaptive"]).unwrap();
        assert_eq!(cfg.policy, "adaptive");
        assert_eq!(cfg.policy_kind(), PolicyKind::Adaptive);
    }

    #[test]
    fn counts_tick_starts_in_tails() {
        assert_eq!(count_tick_starts(b""), 0);
        let tail = b"{\"TickStart\":{\"cycle\":3}}\n{\"Failure\":{}}\n{\"TickStart\":{\"cycle\":4}}\n{\"torn";
        assert_eq!(count_tick_starts(tail), 2);
    }

    fn run_argv(argv: Vec<String>) -> CliOutcome {
        run(&Args::parse(argv).unwrap()).unwrap()
    }

    fn events_triple(dir: &std::path::Path, common: &[&str], tag: &str) -> Vec<u8> {
        // Uninterrupted baseline → checkpointed run → torn resume; returns
        // the baseline bytes after asserting all three streams agree.
        let base = dir.join(format!("{tag}-base.jsonl"));
        let ckpt = dir.join(format!("{tag}-ck.json"));
        let resumed = dir.join(format!("{tag}-resumed.jsonl"));

        let mut argv: Vec<String> = ["experiment"].iter().map(|s| s.to_string()).collect();
        argv.extend(common.iter().map(|s| s.to_string()));
        argv.extend(["--events".to_string(), base.to_str().unwrap().to_string()]);
        assert!(matches!(run_argv(argv), CliOutcome::Done));

        // Checkpoint on cadence, then simulate the kill by resuming from
        // the checkpoint file only.
        let mut argv: Vec<String> = ["experiment"].iter().map(|s| s.to_string()).collect();
        argv.extend(common.iter().map(|s| s.to_string()));
        argv.extend([
            "--events".to_string(),
            resumed.to_str().unwrap().to_string(),
            "--checkpoint".to_string(),
            ckpt.to_str().unwrap().to_string(),
        ]);
        assert!(matches!(run_argv(argv), CliOutcome::Done));
        assert!(ckpt.exists(), "cadenced checkpoints were written");

        // "Crash": scribble garbage after the checkpointed offset, then
        // resume — the tail must be truncated and regenerated exactly.
        let ck = ExperimentCheckpoint::load(ckpt.to_str().unwrap()).unwrap();
        assert_eq!(ck.version, EXPERIMENT_CHECKPOINT_VERSION);
        assert!(
            !matches!(ck.machine.policy, serde::Value::Null),
            "checkpoint carries the policy-engine state"
        );
        let full = std::fs::read(&resumed).unwrap();
        let mut torn = full[..ck.events_offset as usize].to_vec();
        torn.extend_from_slice(b"{\"torn\":");
        std::fs::write(&resumed, &torn).unwrap();
        let argv = ["experiment", "--resume", ckpt.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run_argv(argv), CliOutcome::Done));

        let baseline = std::fs::read(&base).unwrap();
        let after = std::fs::read(&resumed).unwrap();
        assert_eq!(baseline, full, "checkpointed run matches uninterrupted run");
        assert_eq!(baseline, after, "resumed run regenerates the identical stream");
        baseline
    }

    #[test]
    fn checkpointed_run_resumes_to_identical_events() {
        let dir = std::env::temp_dir().join("rfsp-longrun-test");
        std::fs::create_dir_all(&dir).unwrap();
        let common = [
            "--run",
            "writeall",
            "--algo",
            "x",
            "--n",
            "64",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.2",
            "--restart-rate",
            "0.6",
            "--seed",
            "11",
            "--every",
            "5",
        ];
        events_triple(&dir, &common, "fixed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adaptive_policy_run_resumes_to_identical_events() {
        let dir = std::env::temp_dir().join("rfsp-longrun-adaptive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let common = [
            "--run",
            "writeall",
            "--algo",
            "x",
            "--n",
            "512",
            "--p",
            "8",
            "--adversary",
            "bursty",
            "--rate",
            "0.7",
            "--restart-rate",
            "0.5",
            "--seed",
            "23",
            "--policy",
            "adaptive",
        ];
        let baseline = events_triple(&dir, &common, "adaptive");
        assert!(
            count_tick_starts(&baseline) > 128,
            "run long enough for the adaptive cadence to fire at least once"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
