//! `rfsp experiment --run writeall` — the crash-safe long-run mode.
//!
//! Unlike `rfsp writeall` (one shot, in memory), this mode is built to
//! survive its host: the machine runs on the panic-isolating engine with
//! graceful sequential degradation, writes a versioned checkpoint on the
//! cadence a [`PolicyEngine`] dictates (and on SIGINT) via an atomic
//! tmp-file + fsync + rename (the parent directory is fsynced too, so the
//! rename itself survives a power cut), and streams raw machine events to
//! a JSONL file whose flushed length is recorded in each checkpoint.
//! `rfsp experiment --resume ck.json` reconstructs everything from the
//! checkpoint alone — config, machine, adversary cursor, policy-engine
//! state — truncates the events file back to the recorded offset, and
//! continues; the resulting event stream, stats, and final memory are
//! bit-identical to an uninterrupted run.
//!
//! Two checkpoint policies are available (`--policy`):
//!
//! * `fixed:K` — snapshot every `K` ticks, the classic cadence.
//! * `adaptive` — a [`PolicyEngine`] watches the live event stream,
//!   tracks an EWMA failure intensity and a checkpoint-cost estimate, and
//!   steers the interval toward the Young/Daly optimum `√(2C/λ)`. Its
//!   whole state rides in the checkpoint, so a resumed run makes the same
//!   decisions the uninterrupted run would have.
//!
//! Under the adaptive policy worker panics are first *surfaced* (the tick
//! engine restores the pre-tick state), handled like a crash — rewind to
//! the last checkpoint and replay, which the wasted-work counters record
//! — and only after repeated panics does the run degrade permanently to
//! the sequential fallback engine.
//!
//! ```text
//! rfsp experiment --run writeall --algo x --n 100000 --p 128 \
//!     --adversary bursty --rate 0.4 --seed 7 --policy adaptive \
//!     --checkpoint ck.json --events run.jsonl
//! # ^C, power loss, SIGKILL ... then:
//! rfsp experiment --resume ck.json
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Seek, SeekFrom, Write};
use std::time::Instant;

use rfsp_adversary::{BurstyFaults, RandomFaults};
use rfsp_bench::{with_write_all_program, WriteAllSetup, WriteAllVisitor};
use rfsp_pram::{
    Adversary, Checkpoint, CycleBudget, Machine, NoFailures, Observer, PolicyEngine, PolicyKind,
    PramError, Program, RunControl, RunLimits, RunStatus, ScheduledAdversary, Tee, TraceEvent,
    WastedWork,
};
use serde::{Deserialize, Serialize};

use crate::args::{ArgError, Args};
use crate::commands::writeall::parse_algo;
use crate::{pattern_io, signals, CliOutcome};

/// Version tag of the on-disk experiment checkpoint (wraps the machine's
/// own versioned [`Checkpoint`]).
///
/// * v1 — config + events offset + machine snapshot.
/// * v2 — adds cumulative [`WastedWork`] telemetry; the wrapped machine
///   checkpoint is v4 and carries the policy-engine state.
pub const EXPERIMENT_CHECKPOINT_VERSION: u32 = 2;

/// The full run configuration — everything needed to rebuild the program
/// and adversary from scratch. Stored inside the checkpoint so `--resume`
/// needs no other flags.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LongRunConfig {
    /// Algorithm name (as accepted by `--algo`).
    pub algo: String,
    /// Instance size.
    pub n: u64,
    /// Processor count.
    pub p: u64,
    /// Tick-engine worker threads (1 = sequential).
    pub threads: u64,
    /// Adversary kind: `none`, `random`, `bursty`, or `replay`.
    pub adversary: String,
    /// `random`: per-tick failure probability. `bursty`: the burst-mode
    /// failure probability (the calm mode stays near-quiet).
    pub rate: f64,
    /// `random`/`bursty`: per-tick restart probability.
    pub restart_rate: f64,
    /// `random`/`bursty`: RNG seed (the checkpoint carries the live RNG
    /// state; the seed only matters for a from-scratch start).
    pub seed: u64,
    /// `replay`: path of the failure-pattern file.
    pub replay_pattern: Option<String>,
    /// Checkpoint cadence in ticks for the fixed policy (must be ≥ 1).
    pub every: u64,
    /// Checkpoint policy tag: `fixed` (interval = `every`) or `adaptive`.
    pub policy: String,
    /// Tick budget.
    pub max_cycles: u64,
    /// Checkpoint file path.
    pub checkpoint: Option<String>,
    /// Events JSONL file path.
    pub events: Option<String>,
}

impl LongRunConfig {
    /// The policy this config names, as the engine understands it.
    fn policy_kind(&self) -> PolicyKind {
        if self.policy == "adaptive" {
            PolicyKind::Adaptive
        } else {
            PolicyKind::Fixed(self.every)
        }
    }
}

/// What `--checkpoint` writes: config + machine snapshot + how many event
/// bytes had been flushed when the snapshot was taken.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentCheckpoint {
    /// Format version ([`EXPERIMENT_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The run's full configuration.
    pub config: LongRunConfig,
    /// Flushed length of the events file at snapshot time; resume
    /// truncates the file back to this before continuing.
    pub events_offset: u64,
    /// Cumulative fault-tolerance overhead up to (not including) this
    /// snapshot; a resumed run keeps accumulating on top of it.
    pub wasted: WastedWork,
    /// The machine + adversary + policy-engine snapshot.
    pub machine: Checkpoint,
}

fn io_err(what: &str, path: &str, e: &dyn std::fmt::Display) -> ArgError {
    ArgError(format!("cannot {what} {path}: {e}"))
}

/// Streams events as JSONL, tracking the byte offset of everything
/// *flushed* (the only prefix a checkpoint may safely reference).
struct EventWriter {
    path: String,
    out: BufWriter<File>,
    bytes: u64,
    err: Option<std::io::Error>,
}

impl EventWriter {
    fn flush(&mut self) -> Result<u64, ArgError> {
        if let Err(e) = self.out.flush() {
            self.err.get_or_insert(e);
        }
        match self.err.take() {
            Some(e) => Err(io_err("write events to", &self.path, &e)),
            None => Ok(self.bytes),
        }
    }
}

impl Observer for EventWriter {
    fn event(&mut self, event: TraceEvent) {
        if self.err.is_some() {
            return;
        }
        let mut line = serde::json::to_string(&event);
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.err = Some(e);
        } else {
            self.bytes += line.len() as u64;
        }
    }
}

/// How many tick boundaries a discarded event tail described — the ticks
/// a rewound run is about to re-execute.
fn count_tick_starts(bytes: &[u8]) -> u64 {
    const NEEDLE: &[u8] = b"\"TickStart\"";
    bytes.windows(NEEDLE.len()).filter(|w| *w == NEEDLE).count() as u64
}

/// The events sink: a real writer, or nothing.
struct Events(Option<EventWriter>);

impl Events {
    /// Open the sink. On resume, truncates the file back to the
    /// checkpoint's flushed prefix and returns how many tick boundaries
    /// the dropped tail held (they will be replayed).
    fn open(
        cfg: &LongRunConfig,
        resume: Option<&ExperimentCheckpoint>,
    ) -> Result<(Self, u64), ArgError> {
        let Some(path) = cfg.events.as_deref() else { return Ok((Events(None), 0)) };
        let mut replayed = 0;
        let file = if let Some(ck) = resume {
            // Truncate back to the checkpoint's flushed prefix: everything
            // after it describes ticks the resumed machine will re-execute.
            let meta = std::fs::metadata(path).map_err(|e| io_err("stat", path, &e))?;
            if meta.len() < ck.events_offset {
                return Err(ArgError(format!(
                    "events file {path} is shorter ({}) than the checkpoint's offset ({}) — \
                     was it rewritten since the checkpoint?",
                    meta.len(),
                    ck.events_offset
                )));
            }
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(path)
                .map_err(|e| io_err("open", path, &e))?;
            f.seek(SeekFrom::Start(ck.events_offset)).map_err(|e| io_err("seek", path, &e))?;
            let mut tail = Vec::new();
            f.read_to_end(&mut tail).map_err(|e| io_err("read", path, &e))?;
            replayed = count_tick_starts(&tail);
            f.set_len(ck.events_offset).map_err(|e| io_err("truncate", path, &e))?;
            f.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", path, &e))?;
            f
        } else {
            File::create(path).map_err(|e| io_err("create", path, &e))?
        };
        let writer = EventWriter {
            path: path.to_string(),
            out: BufWriter::new(file),
            bytes: resume.map_or(0, |ck| ck.events_offset),
            err: None,
        };
        Ok((Events(Some(writer)), replayed))
    }

    /// Flush and report the stable byte offset (0 when no file).
    fn checkpointable_offset(&mut self) -> Result<u64, ArgError> {
        match &mut self.0 {
            Some(w) => w.flush(),
            None => Ok(0),
        }
    }

    /// Drop everything past `offset` — the in-process analogue of the
    /// resume-time truncation, used when a surfaced worker panic rewinds
    /// the run to its last checkpoint.
    fn rewind_to(&mut self, offset: u64) -> Result<(), ArgError> {
        let Some(w) = &mut self.0 else { return Ok(()) };
        w.flush()?;
        let path = w.path.clone();
        let f = w.out.get_mut();
        f.set_len(offset).map_err(|e| io_err("truncate", &path, &e))?;
        f.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", &path, &e))?;
        w.bytes = offset;
        Ok(())
    }
}

impl Observer for Events {
    fn event(&mut self, event: TraceEvent) {
        if let Some(w) = &mut self.0 {
            w.event(event);
        }
    }
}

fn build_adversary(cfg: &LongRunConfig) -> Result<Box<dyn Adversary>, ArgError> {
    Ok(match cfg.adversary.as_str() {
        "none" => Box::new(NoFailures),
        "random" => Box::new(RandomFaults::new(cfg.rate, cfg.restart_rate, cfg.seed)),
        // Same hidden-mode chain as BurstyFaults::preset, but honouring
        // the configured restart rate.
        "bursty" => {
            Box::new(BurstyFaults::new(0.002, cfg.rate, cfg.restart_rate, 0.02, 0.10, cfg.seed))
        }
        "replay" => {
            let path = cfg
                .replay_pattern
                .as_deref()
                .ok_or_else(|| ArgError("--adversary replay needs --replay-pattern FILE".into()))?;
            let text = std::fs::read_to_string(path).map_err(|e| io_err("read", path, &e))?;
            let pattern = pattern_io::decode(&text)?;
            Box::new(
                ScheduledAdversary::try_new(pattern)
                    .map_err(|e| ArgError(format!("{path}: {e}")))?,
            )
        }
        other => {
            return Err(ArgError(format!(
                "unknown long-run adversary '{other}' (none|random|bursty|replay)"
            )))
        }
    })
}

/// Write the checkpoint durably: tmp file, fsync, atomic rename, then
/// fsync the parent directory so the rename itself survives a power cut.
/// Returns the serialized size in bytes.
fn write_checkpoint(path: &str, ck: &ExperimentCheckpoint) -> Result<u64, ArgError> {
    let tmp = format!("{path}.tmp");
    let text = serde::json::to_string_pretty(&ck.to_value());
    let bytes = text.len() as u64;
    let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, &e))?;
    f.write_all(text.as_bytes()).map_err(|e| io_err("write", &tmp, &e))?;
    // The data must be on disk before the rename publishes it, or a crash
    // could leave a fully-named but empty checkpoint.
    f.sync_all().map_err(|e| io_err("fsync", &tmp, &e))?;
    drop(f);
    // The rename is atomic: a reader (or a kill) never sees a torn file.
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, &e))?;
    // The rename lives in the directory entry; fsync the parent so the
    // publication itself is durable.
    let parent = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    File::open(parent)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("fsync parent directory of", path, &e))?;
    Ok(bytes)
}

struct LongRun<'a> {
    cfg: &'a LongRunConfig,
    resume: Option<&'a ExperimentCheckpoint>,
}

impl WriteAllVisitor for LongRun<'_> {
    type Out = Result<CliOutcome, ArgError>;

    fn visit<P>(self, prog: &P, setup: &WriteAllSetup, budget: CycleBudget) -> Self::Out
    where
        P: Program + Sync,
        P::Private: Send + Serialize + Deserialize,
    {
        let cfg = self.cfg;
        let machine_err = |e: &dyn std::fmt::Display| ArgError(format!("machine error: {e}"));
        let kind = cfg.policy_kind();
        let mut machine =
            Machine::new(prog, cfg.p as usize, budget).map_err(|e| machine_err(&e))?;
        let mut adversary = build_adversary(cfg)?;
        let mut engine = PolicyEngine::new(kind);
        let (mut events, replayed_tail) = Events::open(cfg, self.resume)?;
        let mut wasted = WastedWork::default();
        if let Some(ck) = self.resume {
            // Engine first: its restore refuses cross-policy checkpoints
            // before anything is mutated.
            engine.restore_state(&ck.machine.policy).map_err(|e| machine_err(&e))?;
            machine.restore_checkpoint(&ck.machine, &mut adversary).map_err(|e| machine_err(&e))?;
            wasted = ck.wasted;
            wasted.restores += 1;
            wasted.replayed_ticks += replayed_tail;
            eprintln!(
                "resumed from tick {} ({} event bytes kept, {} ticks to replay)",
                ck.machine.cycle, ck.events_offset, replayed_tail
            );
        }
        // The last published snapshot, kept in memory: a surfaced worker
        // panic is handled like a crash — rewind to it and replay.
        let mut last_saved: Option<ExperimentCheckpoint> = self.resume.cloned();
        let limits = RunLimits { max_cycles: cfg.max_cycles };
        let cadence = cfg.checkpoint.is_some();
        let mut last_pause: Option<u64> = None;
        loop {
            let lp = last_pause;
            // The engine only moves its due point when a checkpoint is
            // recorded — at a pause — so the target is stable for the
            // whole run segment.
            let due_at = engine.next_due();
            let status = machine.run_threaded_isolated_controlled(
                &mut adversary,
                limits,
                cfg.threads as usize,
                engine.panic_policy(),
                &mut Tee(&mut events, &mut engine),
                |cycle| {
                    let due = signals::interrupted() || (cadence && cycle >= due_at);
                    if due && lp != Some(cycle) {
                        RunControl::Pause
                    } else {
                        RunControl::Continue
                    }
                },
            );
            let status = match status {
                Ok(status) => status,
                Err(e @ PramError::WorkerPanic { .. }) => {
                    // The isolating engine restored the pre-tick state, so
                    // the machine stands at the failed tick's boundary.
                    // Treat it like a crash: rewind to the last durable
                    // checkpoint (or the start) and replay, under whatever
                    // panic policy the engine now dictates — after enough
                    // repeats it escalates to the sequential fallback.
                    let escalated = engine.record_panic();
                    let panicked_at = machine.cycle();
                    wasted.restores += 1;
                    match &last_saved {
                        Some(saved) => {
                            engine
                                .restore_state(&saved.machine.policy)
                                .map_err(|e| machine_err(&e))?;
                            machine
                                .restore_checkpoint(&saved.machine, &mut adversary)
                                .map_err(|e| machine_err(&e))?;
                            events.rewind_to(saved.events_offset)?;
                            wasted.replayed_ticks +=
                                panicked_at.saturating_sub(saved.machine.cycle);
                            eprintln!(
                                "{e}; rewound from tick {panicked_at} to checkpointed tick {} \
                                 (next attempt: {escalated:?})",
                                saved.machine.cycle
                            );
                        }
                        None => {
                            machine = Machine::new(prog, cfg.p as usize, budget)
                                .map_err(|e| machine_err(&e))?;
                            adversary = build_adversary(cfg)?;
                            engine.reset_preserving_panics();
                            wasted.replayed_ticks += panicked_at;
                            eprintln!(
                                "{e}; no checkpoint yet — restarted from scratch at tick 0 \
                                 (next attempt: {escalated:?})"
                            );
                        }
                    }
                    last_pause = None;
                    continue;
                }
                Err(e) => return Err(machine_err(&e)),
            };
            match status {
                RunStatus::Completed(report) => {
                    events.checkpointable_offset()?;
                    if !setup.tasks.all_written(machine.memory()) {
                        return Err(ArgError(
                            "postcondition failed: array not fully written".into(),
                        ));
                    }
                    println!("algorithm       : {}", cfg.algo);
                    println!("instance        : N = {}, P = {}", cfg.n, cfg.p);
                    println!("adversary       : {}", cfg.adversary);
                    println!("policy          : {}", engine.kind());
                    println!("completed work S: {}", report.stats.completed_work());
                    println!("S' (with partial): {}", report.stats.s_prime());
                    println!("parallel time τ : {}", report.stats.parallel_time);
                    println!("|F| (fail+restart): {}", report.stats.pattern_size());
                    println!(
                        "checkpoints     : {} ({} bytes, {} µs)",
                        wasted.checkpoints,
                        wasted.checkpoint_bytes,
                        wasted.checkpoint_ns / 1_000
                    );
                    println!(
                        "restores        : {} ({} ticks replayed)",
                        wasted.restores, wasted.replayed_ticks
                    );
                    return Ok(CliOutcome::Done);
                }
                RunStatus::Paused { cycle } => {
                    last_pause = Some(cycle);
                    let offset = events.checkpointable_offset()?;
                    if let Some(path) = cfg.checkpoint.as_deref() {
                        if engine.checkpoint_due(cycle) || signals::interrupted() {
                            let started = Instant::now();
                            let mut machine_ck =
                                machine.save_checkpoint(&adversary).map_err(|e| machine_err(&e))?;
                            // Feed the cost model the machine snapshot
                            // alone (policy field still Null): a pure
                            // function of machine state, identical in a
                            // resumed and an uninterrupted run.
                            let machine_bytes =
                                serde::json::to_string(&machine_ck.to_value()).len() as u64;
                            engine.record_checkpoint(cycle, machine_bytes);
                            machine_ck.policy = engine.save_state();
                            let ck = ExperimentCheckpoint {
                                version: EXPERIMENT_CHECKPOINT_VERSION,
                                config: cfg.clone(),
                                events_offset: offset,
                                wasted,
                                machine: machine_ck,
                            };
                            let file_bytes = write_checkpoint(path, &ck)?;
                            wasted.checkpoints += 1;
                            wasted.checkpoint_bytes += file_bytes;
                            wasted.checkpoint_ns += started.elapsed().as_nanos() as u64;
                            last_saved = Some(ck);
                        }
                    }
                    if signals::interrupted() {
                        match cfg.checkpoint.as_deref() {
                            Some(path) => eprintln!(
                                "interrupted at tick {cycle}; resume with: rfsp experiment --resume {path}"
                            ),
                            None => eprintln!(
                                "interrupted at tick {cycle}; no --checkpoint configured, run cannot be resumed"
                            ),
                        }
                        return Ok(CliOutcome::Interrupted);
                    }
                }
            }
        }
    }
}

fn config_from_args(args: &Args) -> Result<LongRunConfig, ArgError> {
    let mut every = args.get_parsed("every", 100u64)?;
    if every == 0 {
        return Err(ArgError(
            "--every 0 is a degenerate cadence: the run would never checkpoint and a crash \
             would lose everything; give a positive tick interval (or use --policy adaptive)"
                .into(),
        ));
    }
    let policy = match args.get("policy") {
        None => "fixed".to_string(),
        Some(text) => match PolicyKind::parse(text).map_err(ArgError)? {
            PolicyKind::Adaptive => {
                if args.get("every").is_some() {
                    return Err(ArgError(
                        "--policy adaptive chooses its own cadence; drop --every".into(),
                    ));
                }
                "adaptive".to_string()
            }
            PolicyKind::Fixed(k) => {
                if args.get("every").is_some() {
                    return Err(ArgError(
                        "--policy fixed:K already names the cadence; drop --every".into(),
                    ));
                }
                every = k;
                "fixed".to_string()
            }
        },
    };
    let cfg = LongRunConfig {
        algo: args.get_or("algo", "x").to_string(),
        n: args.get_parsed("n", 1024u64)?,
        p: args.get_parsed("p", 64u64)?,
        threads: args.get_parsed("threads", 1u64)?,
        adversary: args.get_or("adversary", "none").to_string(),
        rate: args.get_parsed("rate", 0.05f64)?,
        restart_rate: args.get_parsed("restart-rate", 0.5f64)?,
        seed: args.get_parsed("seed", 0u64)?,
        replay_pattern: args.get("replay-pattern").map(str::to_string),
        every,
        policy,
        max_cycles: args.get_parsed("max-cycles", RunLimits::default().max_cycles)?,
        checkpoint: args.get("checkpoint").map(str::to_string),
        events: args.get("events").map(str::to_string),
    };
    if cfg.threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    if cfg.algo == "acc" && cfg.checkpoint.is_some() {
        return Err(ArgError(
            "--checkpoint does not support --algo acc: its incarnation counter is \
             program-level state a resumed run cannot recover"
                .into(),
        ));
    }
    Ok(cfg)
}

/// Entry point for both `--run writeall` and `--resume`.
///
/// # Errors
///
/// Bad arguments, unreadable/mismatched checkpoint or events files, and
/// machine errors, all as [`ArgError`].
pub fn run(args: &Args) -> Result<CliOutcome, ArgError> {
    signals::install();
    signals::reset();
    if let Some(path) = args.get("resume") {
        let text = std::fs::read_to_string(path).map_err(|e| io_err("read", path, &e))?;
        let value = serde::json::from_str(&text)
            .map_err(|e| ArgError(format!("{path}: not valid JSON: {e}")))?;
        let ck = ExperimentCheckpoint::from_value(&value)
            .map_err(|e| ArgError(format!("{path}: malformed checkpoint: {e}")))?;
        if ck.version != EXPERIMENT_CHECKPOINT_VERSION {
            return Err(ArgError(format!(
                "{path}: checkpoint version {} (this build reads {EXPERIMENT_CHECKPOINT_VERSION})",
                ck.version
            )));
        }
        let algo = parse_algo(&ck.config.algo)?;
        let (n, p) = (ck.config.n as usize, ck.config.p as usize);
        with_write_all_program(algo, n, p, LongRun { cfg: &ck.config, resume: Some(&ck) })
    } else {
        let run = args.get_or("run", "writeall");
        if run != "writeall" {
            return Err(ArgError(format!("unknown long-run mode '{run}' (writeall)")));
        }
        let cfg = config_from_args(args)?;
        let algo = parse_algo(&cfg.algo)?;
        let (n, p) = (cfg.n as usize, cfg.p as usize);
        with_write_all_program(algo, n, p, LongRun { cfg: &cfg, resume: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips_and_validates() {
        let a = Args::parse([
            "experiment",
            "--run",
            "writeall",
            "--algo",
            "v",
            "--n",
            "64",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.1",
            "--seed",
            "3",
            "--every",
            "10",
        ])
        .unwrap();
        let cfg = config_from_args(&a).unwrap();
        assert_eq!(cfg.algo, "v");
        assert_eq!(cfg.every, 10);
        assert_eq!(cfg.policy, "fixed");
        let back = LongRunConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);

        let a =
            Args::parse(["experiment", "--run", "writeall", "--algo", "acc", "--checkpoint", "x"])
                .unwrap();
        assert!(config_from_args(&a).is_err());
        let a = Args::parse(["experiment", "--run", "writeall", "--threads", "0"]).unwrap();
        assert!(config_from_args(&a).is_err());
    }

    #[test]
    fn rejects_degenerate_cadence_and_policy_conflicts() {
        let parse = |extra: &[&str]| {
            let mut argv = vec!["experiment", "--run", "writeall"];
            argv.extend_from_slice(extra);
            config_from_args(&Args::parse(argv).unwrap())
        };
        let e = parse(&["--every", "0"]).unwrap_err();
        assert!(e.0.contains("degenerate"), "unexpected message: {}", e.0);
        assert!(parse(&["--policy", "fixed:0"]).is_err());
        assert!(parse(&["--policy", "sometimes"]).is_err());
        assert!(parse(&["--policy", "adaptive", "--every", "7"]).is_err());
        assert!(parse(&["--policy", "fixed:12", "--every", "7"]).is_err());

        let cfg = parse(&["--policy", "fixed:12"]).unwrap();
        assert_eq!((cfg.policy.as_str(), cfg.every), ("fixed", 12));
        let cfg = parse(&["--policy", "adaptive"]).unwrap();
        assert_eq!(cfg.policy, "adaptive");
        assert_eq!(cfg.policy_kind(), PolicyKind::Adaptive);
    }

    #[test]
    fn counts_tick_starts_in_tails() {
        assert_eq!(count_tick_starts(b""), 0);
        let tail = b"{\"TickStart\":{\"cycle\":3}}\n{\"Failure\":{}}\n{\"TickStart\":{\"cycle\":4}}\n{\"torn";
        assert_eq!(count_tick_starts(tail), 2);
    }

    fn run_argv(argv: Vec<String>) -> CliOutcome {
        run(&Args::parse(argv).unwrap()).unwrap()
    }

    fn events_triple(dir: &std::path::Path, common: &[&str], tag: &str) -> Vec<u8> {
        // Uninterrupted baseline → checkpointed run → torn resume; returns
        // the baseline bytes after asserting all three streams agree.
        let base = dir.join(format!("{tag}-base.jsonl"));
        let ckpt = dir.join(format!("{tag}-ck.json"));
        let resumed = dir.join(format!("{tag}-resumed.jsonl"));

        let mut argv: Vec<String> = ["experiment"].iter().map(|s| s.to_string()).collect();
        argv.extend(common.iter().map(|s| s.to_string()));
        argv.extend(["--events".to_string(), base.to_str().unwrap().to_string()]);
        assert!(matches!(run_argv(argv), CliOutcome::Done));

        // Checkpoint on cadence, then simulate the kill by resuming from
        // the checkpoint file only.
        let mut argv: Vec<String> = ["experiment"].iter().map(|s| s.to_string()).collect();
        argv.extend(common.iter().map(|s| s.to_string()));
        argv.extend([
            "--events".to_string(),
            resumed.to_str().unwrap().to_string(),
            "--checkpoint".to_string(),
            ckpt.to_str().unwrap().to_string(),
        ]);
        assert!(matches!(run_argv(argv), CliOutcome::Done));
        assert!(ckpt.exists(), "cadenced checkpoints were written");

        // "Crash": scribble garbage after the checkpointed offset, then
        // resume — the tail must be truncated and regenerated exactly.
        let ck_text = std::fs::read_to_string(&ckpt).unwrap();
        let ck =
            ExperimentCheckpoint::from_value(&serde::json::from_str(&ck_text).unwrap()).unwrap();
        assert_eq!(ck.version, EXPERIMENT_CHECKPOINT_VERSION);
        assert!(
            !matches!(ck.machine.policy, serde::Value::Null),
            "checkpoint carries the policy-engine state"
        );
        let full = std::fs::read(&resumed).unwrap();
        let mut torn = full[..ck.events_offset as usize].to_vec();
        torn.extend_from_slice(b"{\"torn\":");
        std::fs::write(&resumed, &torn).unwrap();
        let argv = ["experiment", "--resume", ckpt.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run_argv(argv), CliOutcome::Done));

        let baseline = std::fs::read(&base).unwrap();
        let after = std::fs::read(&resumed).unwrap();
        assert_eq!(baseline, full, "checkpointed run matches uninterrupted run");
        assert_eq!(baseline, after, "resumed run regenerates the identical stream");
        baseline
    }

    #[test]
    fn checkpointed_run_resumes_to_identical_events() {
        let dir = std::env::temp_dir().join("rfsp-longrun-test");
        std::fs::create_dir_all(&dir).unwrap();
        let common = [
            "--run",
            "writeall",
            "--algo",
            "x",
            "--n",
            "64",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.2",
            "--restart-rate",
            "0.6",
            "--seed",
            "11",
            "--every",
            "5",
        ];
        events_triple(&dir, &common, "fixed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adaptive_policy_run_resumes_to_identical_events() {
        let dir = std::env::temp_dir().join("rfsp-longrun-adaptive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let common = [
            "--run",
            "writeall",
            "--algo",
            "x",
            "--n",
            "512",
            "--p",
            "8",
            "--adversary",
            "bursty",
            "--rate",
            "0.7",
            "--restart-rate",
            "0.5",
            "--seed",
            "23",
            "--policy",
            "adaptive",
        ];
        let baseline = events_triple(&dir, &common, "adaptive");
        assert!(
            count_tick_starts(&baseline) > 128,
            "run long enough for the adaptive cadence to fire at least once"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
