//! `rfsp experiment --run writeall` — the crash-safe long-run mode.
//!
//! Unlike `rfsp writeall` (one shot, in memory), this mode is built to
//! survive its host: the machine runs on the panic-isolating engine with
//! graceful sequential degradation, writes a versioned checkpoint every
//! `--every` ticks (and on SIGINT) via an atomic tmp-file + rename, and
//! streams raw machine events to a JSONL file whose flushed length is
//! recorded in each checkpoint. `rfsp experiment --resume ck.json`
//! reconstructs everything from the checkpoint alone — config, machine,
//! adversary cursor — truncates the events file back to the recorded
//! offset, and continues; the resulting event stream, stats, and final
//! memory are bit-identical to an uninterrupted run.
//!
//! ```text
//! rfsp experiment --run writeall --algo x --n 100000 --p 128 \
//!     --adversary random --rate 0.05 --seed 7 \
//!     --checkpoint ck.json --every 500 --events run.jsonl
//! # ^C, power loss, SIGKILL ... then:
//! rfsp experiment --resume ck.json
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};

use rfsp_adversary::RandomFaults;
use rfsp_bench::{with_write_all_program, WriteAllSetup, WriteAllVisitor};
use rfsp_pram::{
    Adversary, Checkpoint, CycleBudget, Machine, NoFailures, Observer, PanicPolicy, Program,
    RunControl, RunLimits, RunStatus, ScheduledAdversary, TraceEvent,
};
use serde::{Deserialize, Serialize};

use crate::args::{ArgError, Args};
use crate::commands::writeall::parse_algo;
use crate::{pattern_io, signals, CliOutcome};

/// Version tag of the on-disk experiment checkpoint (wraps the machine's
/// own versioned [`Checkpoint`]).
pub const EXPERIMENT_CHECKPOINT_VERSION: u32 = 1;

/// The full run configuration — everything needed to rebuild the program
/// and adversary from scratch. Stored inside the checkpoint so `--resume`
/// needs no other flags.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LongRunConfig {
    /// Algorithm name (as accepted by `--algo`).
    pub algo: String,
    /// Instance size.
    pub n: u64,
    /// Processor count.
    pub p: u64,
    /// Tick-engine worker threads (1 = sequential).
    pub threads: u64,
    /// Adversary kind: `none`, `random`, or `replay`.
    pub adversary: String,
    /// `random`: per-tick failure probability.
    pub rate: f64,
    /// `random`: per-tick restart probability.
    pub restart_rate: f64,
    /// `random`: RNG seed (the checkpoint carries the live RNG state; the
    /// seed only matters for a from-scratch start).
    pub seed: u64,
    /// `replay`: path of the failure-pattern file.
    pub replay_pattern: Option<String>,
    /// Checkpoint cadence in ticks (0 = only on SIGINT).
    pub every: u64,
    /// Tick budget.
    pub max_cycles: u64,
    /// Checkpoint file path.
    pub checkpoint: Option<String>,
    /// Events JSONL file path.
    pub events: Option<String>,
}

/// What `--checkpoint` writes: config + machine snapshot + how many event
/// bytes had been flushed when the snapshot was taken.
#[derive(Debug, Serialize, Deserialize)]
pub struct ExperimentCheckpoint {
    /// Format version ([`EXPERIMENT_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The run's full configuration.
    pub config: LongRunConfig,
    /// Flushed length of the events file at snapshot time; resume
    /// truncates the file back to this before continuing.
    pub events_offset: u64,
    /// The machine + adversary snapshot.
    pub machine: Checkpoint,
}

fn io_err(what: &str, path: &str, e: &dyn std::fmt::Display) -> ArgError {
    ArgError(format!("cannot {what} {path}: {e}"))
}

/// Streams events as JSONL, tracking the byte offset of everything
/// *flushed* (the only prefix a checkpoint may safely reference).
struct EventWriter {
    path: String,
    out: BufWriter<File>,
    bytes: u64,
    err: Option<std::io::Error>,
}

impl EventWriter {
    fn flush(&mut self) -> Result<u64, ArgError> {
        if let Err(e) = self.out.flush() {
            self.err.get_or_insert(e);
        }
        match self.err.take() {
            Some(e) => Err(io_err("write events to", &self.path, &e)),
            None => Ok(self.bytes),
        }
    }
}

impl Observer for EventWriter {
    fn event(&mut self, event: TraceEvent) {
        if self.err.is_some() {
            return;
        }
        let mut line = serde::json::to_string(&event);
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.err = Some(e);
        } else {
            self.bytes += line.len() as u64;
        }
    }
}

/// The events sink: a real writer, or nothing.
struct Events(Option<EventWriter>);

impl Events {
    fn open(cfg: &LongRunConfig, resume: Option<&ExperimentCheckpoint>) -> Result<Self, ArgError> {
        let Some(path) = cfg.events.as_deref() else { return Ok(Events(None)) };
        let file = if let Some(ck) = resume {
            // Truncate back to the checkpoint's flushed prefix: everything
            // after it describes ticks the resumed machine will re-execute.
            let meta = std::fs::metadata(path).map_err(|e| io_err("stat", path, &e))?;
            if meta.len() < ck.events_offset {
                return Err(ArgError(format!(
                    "events file {path} is shorter ({}) than the checkpoint's offset ({}) — \
                     was it rewritten since the checkpoint?",
                    meta.len(),
                    ck.events_offset
                )));
            }
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(path)
                .map_err(|e| io_err("open", path, &e))?;
            f.set_len(ck.events_offset).map_err(|e| io_err("truncate", path, &e))?;
            f.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", path, &e))?;
            f
        } else {
            File::create(path).map_err(|e| io_err("create", path, &e))?
        };
        Ok(Events(Some(EventWriter {
            path: path.to_string(),
            out: BufWriter::new(file),
            bytes: resume.map_or(0, |ck| ck.events_offset),
            err: None,
        })))
    }

    /// Flush and report the stable byte offset (0 when no file).
    fn checkpointable_offset(&mut self) -> Result<u64, ArgError> {
        match &mut self.0 {
            Some(w) => w.flush(),
            None => Ok(0),
        }
    }
}

impl Observer for Events {
    fn event(&mut self, event: TraceEvent) {
        if let Some(w) = &mut self.0 {
            w.event(event);
        }
    }
}

fn build_adversary(cfg: &LongRunConfig) -> Result<Box<dyn Adversary>, ArgError> {
    Ok(match cfg.adversary.as_str() {
        "none" => Box::new(NoFailures),
        "random" => Box::new(RandomFaults::new(cfg.rate, cfg.restart_rate, cfg.seed)),
        "replay" => {
            let path = cfg
                .replay_pattern
                .as_deref()
                .ok_or_else(|| ArgError("--adversary replay needs --replay-pattern FILE".into()))?;
            let text = std::fs::read_to_string(path).map_err(|e| io_err("read", path, &e))?;
            let pattern = pattern_io::decode(&text)?;
            Box::new(
                ScheduledAdversary::try_new(pattern)
                    .map_err(|e| ArgError(format!("{path}: {e}")))?,
            )
        }
        other => {
            return Err(ArgError(format!(
                "unknown long-run adversary '{other}' (none|random|replay)"
            )))
        }
    })
}

fn write_checkpoint(path: &str, ck: &ExperimentCheckpoint) -> Result<(), ArgError> {
    let tmp = format!("{path}.tmp");
    let text = serde::json::to_string_pretty(&ck.to_value());
    std::fs::write(&tmp, text).map_err(|e| io_err("write", &tmp, &e))?;
    // The rename is atomic: a reader (or a kill) never sees a torn file.
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, &e))
}

struct LongRun<'a> {
    cfg: &'a LongRunConfig,
    resume: Option<&'a ExperimentCheckpoint>,
}

impl WriteAllVisitor for LongRun<'_> {
    type Out = Result<CliOutcome, ArgError>;

    fn visit<P>(self, prog: &P, setup: &WriteAllSetup, budget: CycleBudget) -> Self::Out
    where
        P: Program + Sync,
        P::Private: Send + Serialize + Deserialize,
    {
        let cfg = self.cfg;
        let machine_err = |e: &dyn std::fmt::Display| ArgError(format!("machine error: {e}"));
        let mut machine =
            Machine::new(prog, cfg.p as usize, budget).map_err(|e| machine_err(&e))?;
        let mut adversary = build_adversary(cfg)?;
        let mut events = Events::open(cfg, self.resume)?;
        if let Some(ck) = self.resume {
            machine.restore_checkpoint(&ck.machine, &mut adversary).map_err(|e| machine_err(&e))?;
            eprintln!(
                "resumed from tick {} ({} event bytes kept)",
                ck.machine.cycle, ck.events_offset
            );
        }
        let limits = RunLimits { max_cycles: cfg.max_cycles };
        let mut last_pause: Option<u64> = None;
        loop {
            let lp = last_pause;
            let status = machine
                .run_threaded_isolated_controlled(
                    &mut adversary,
                    limits,
                    cfg.threads as usize,
                    PanicPolicy::FallbackSequential,
                    &mut events,
                    |cycle| {
                        let due = signals::interrupted()
                            || (cfg.every > 0 && cycle > 0 && cycle % cfg.every == 0);
                        if due && lp != Some(cycle) {
                            RunControl::Pause
                        } else {
                            RunControl::Continue
                        }
                    },
                )
                .map_err(|e| machine_err(&e))?;
            match status {
                RunStatus::Completed(report) => {
                    events.checkpointable_offset()?;
                    if !setup.tasks.all_written(machine.memory()) {
                        return Err(ArgError(
                            "postcondition failed: array not fully written".into(),
                        ));
                    }
                    println!("algorithm       : {}", cfg.algo);
                    println!("instance        : N = {}, P = {}", cfg.n, cfg.p);
                    println!("adversary       : {}", cfg.adversary);
                    println!("completed work S: {}", report.stats.completed_work());
                    println!("S' (with partial): {}", report.stats.s_prime());
                    println!("parallel time τ : {}", report.stats.parallel_time);
                    println!("|F| (fail+restart): {}", report.stats.pattern_size());
                    return Ok(CliOutcome::Done);
                }
                RunStatus::Paused { cycle } => {
                    last_pause = Some(cycle);
                    let offset = events.checkpointable_offset()?;
                    if let Some(path) = cfg.checkpoint.as_deref() {
                        let machine_ck =
                            machine.save_checkpoint(&adversary).map_err(|e| machine_err(&e))?;
                        write_checkpoint(
                            path,
                            &ExperimentCheckpoint {
                                version: EXPERIMENT_CHECKPOINT_VERSION,
                                config: cfg.clone(),
                                events_offset: offset,
                                machine: machine_ck,
                            },
                        )?;
                    }
                    if signals::interrupted() {
                        match cfg.checkpoint.as_deref() {
                            Some(path) => eprintln!(
                                "interrupted at tick {cycle}; resume with: rfsp experiment --resume {path}"
                            ),
                            None => eprintln!(
                                "interrupted at tick {cycle}; no --checkpoint configured, run cannot be resumed"
                            ),
                        }
                        return Ok(CliOutcome::Interrupted);
                    }
                }
            }
        }
    }
}

fn config_from_args(args: &Args) -> Result<LongRunConfig, ArgError> {
    let cfg = LongRunConfig {
        algo: args.get_or("algo", "x").to_string(),
        n: args.get_parsed("n", 1024u64)?,
        p: args.get_parsed("p", 64u64)?,
        threads: args.get_parsed("threads", 1u64)?,
        adversary: args.get_or("adversary", "none").to_string(),
        rate: args.get_parsed("rate", 0.05f64)?,
        restart_rate: args.get_parsed("restart-rate", 0.5f64)?,
        seed: args.get_parsed("seed", 0u64)?,
        replay_pattern: args.get("replay-pattern").map(str::to_string),
        every: args.get_parsed("every", 100u64)?,
        max_cycles: args.get_parsed("max-cycles", RunLimits::default().max_cycles)?,
        checkpoint: args.get("checkpoint").map(str::to_string),
        events: args.get("events").map(str::to_string),
    };
    if cfg.threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    if cfg.algo == "acc" && cfg.checkpoint.is_some() {
        return Err(ArgError(
            "--checkpoint does not support --algo acc: its incarnation counter is \
             program-level state a resumed run cannot recover"
                .into(),
        ));
    }
    Ok(cfg)
}

/// Entry point for both `--run writeall` and `--resume`.
///
/// # Errors
///
/// Bad arguments, unreadable/mismatched checkpoint or events files, and
/// machine errors, all as [`ArgError`].
pub fn run(args: &Args) -> Result<CliOutcome, ArgError> {
    signals::install();
    signals::reset();
    if let Some(path) = args.get("resume") {
        let text = std::fs::read_to_string(path).map_err(|e| io_err("read", path, &e))?;
        let value = serde::json::from_str(&text)
            .map_err(|e| ArgError(format!("{path}: not valid JSON: {e}")))?;
        let ck = ExperimentCheckpoint::from_value(&value)
            .map_err(|e| ArgError(format!("{path}: malformed checkpoint: {e}")))?;
        if ck.version != EXPERIMENT_CHECKPOINT_VERSION {
            return Err(ArgError(format!(
                "{path}: checkpoint version {} (this build reads {EXPERIMENT_CHECKPOINT_VERSION})",
                ck.version
            )));
        }
        let algo = parse_algo(&ck.config.algo)?;
        let (n, p) = (ck.config.n as usize, ck.config.p as usize);
        with_write_all_program(algo, n, p, LongRun { cfg: &ck.config, resume: Some(&ck) })
    } else {
        let run = args.get_or("run", "writeall");
        if run != "writeall" {
            return Err(ArgError(format!("unknown long-run mode '{run}' (writeall)")));
        }
        let cfg = config_from_args(args)?;
        let algo = parse_algo(&cfg.algo)?;
        let (n, p) = (cfg.n as usize, cfg.p as usize);
        with_write_all_program(algo, n, p, LongRun { cfg: &cfg, resume: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips_and_validates() {
        let a = Args::parse([
            "experiment",
            "--run",
            "writeall",
            "--algo",
            "v",
            "--n",
            "64",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.1",
            "--seed",
            "3",
            "--every",
            "10",
        ])
        .unwrap();
        let cfg = config_from_args(&a).unwrap();
        assert_eq!(cfg.algo, "v");
        assert_eq!(cfg.every, 10);
        let back = LongRunConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);

        let a =
            Args::parse(["experiment", "--run", "writeall", "--algo", "acc", "--checkpoint", "x"])
                .unwrap();
        assert!(config_from_args(&a).is_err());
        let a = Args::parse(["experiment", "--run", "writeall", "--threads", "0"]).unwrap();
        assert!(config_from_args(&a).is_err());
    }

    #[test]
    fn checkpointed_run_resumes_to_identical_events() {
        let dir = std::env::temp_dir().join("rfsp-longrun-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.jsonl");
        let ckpt = dir.join("ck.json");
        let resumed = dir.join("resumed.jsonl");
        let common = [
            "--run",
            "writeall",
            "--algo",
            "x",
            "--n",
            "64",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.2",
            "--restart-rate",
            "0.6",
            "--seed",
            "11",
        ];

        // Uninterrupted baseline.
        let mut argv: Vec<String> = ["experiment"].iter().map(|s| s.to_string()).collect();
        argv.extend(common.iter().map(|s| s.to_string()));
        argv.extend(["--events".to_string(), base.to_str().unwrap().to_string()]);
        let out = run(&Args::parse(argv).unwrap()).unwrap();
        assert!(matches!(out, CliOutcome::Done));

        // Checkpoint every 5 ticks, then simulate the kill by running the
        // same config again from the checkpoint file only.
        let mut argv: Vec<String> = ["experiment"].iter().map(|s| s.to_string()).collect();
        argv.extend(common.iter().map(|s| s.to_string()));
        argv.extend([
            "--events".to_string(),
            resumed.to_str().unwrap().to_string(),
            "--checkpoint".to_string(),
            ckpt.to_str().unwrap().to_string(),
            "--every".to_string(),
            "5".to_string(),
        ]);
        let out = run(&Args::parse(argv).unwrap()).unwrap();
        assert!(matches!(out, CliOutcome::Done));
        assert!(ckpt.exists(), "cadenced checkpoints were written");

        // "Crash": scribble garbage after the checkpointed offset, then
        // resume — the tail must be truncated and regenerated exactly.
        let ck_text = std::fs::read_to_string(&ckpt).unwrap();
        let ck =
            ExperimentCheckpoint::from_value(&serde::json::from_str(&ck_text).unwrap()).unwrap();
        let full = std::fs::read(&resumed).unwrap();
        let mut torn = full[..ck.events_offset as usize].to_vec();
        torn.extend_from_slice(b"{\"torn\":");
        std::fs::write(&resumed, &torn).unwrap();
        let argv = ["experiment", "--resume", ckpt.to_str().unwrap()];
        let out = run(&Args::parse(argv).unwrap()).unwrap();
        assert!(matches!(out, CliOutcome::Done));

        let baseline = std::fs::read(&base).unwrap();
        let after = std::fs::read(&resumed).unwrap();
        assert_eq!(baseline, full, "checkpointed run matches uninterrupted run");
        assert_eq!(baseline, after, "resumed run regenerates the identical stream");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
