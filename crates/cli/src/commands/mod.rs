//! The CLI subcommands.

pub mod experiment;
pub mod lockfree;
pub mod simulate;
pub mod trace;
pub mod writeall;
