//! The CLI subcommands.

pub mod experiment;
pub mod lockfree;
pub mod longrun;
pub mod serve;
pub mod simulate;
pub mod soak;
pub mod trace;
pub mod writeall;
