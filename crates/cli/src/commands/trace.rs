//! `rfsp trace` — run one Write-All instance under full telemetry and
//! export the stream.
//!
//! Accepts the same instance and adversary options as `rfsp writeall`; the
//! run is driven through a [`Tee`] of a [`TraceRecorder`] (raw machine
//! events) and a [`MetricsObserver`] (per-tick aggregates), and either or
//! both views can be written to a file or streamed to stdout (`-`).
//!
//! `--model snapshot` traces the §3 snapshot machine instead (the
//! balanced-allocation algorithm of Theorem 3.2 on `SnapshotMachine`):
//! since the unified execution core, snapshot runs stream the exact same
//! event vocabulary as word-model runs, so every export below works
//! unchanged. `--algo` is ignored in that model.
//!
//! ```text
//! rfsp trace --algo v --n 256 --p 16 --adversary random --rate 0.1 --metrics -
//! rfsp trace --algo x --adversary xkiller --events run.jsonl --metrics run.csv
//! rfsp trace --n 4096 --adversary thrashing --tail 500 --events -
//! rfsp trace --model snapshot --n 1024 --p 64 --adversary pigeonhole --events -
//! ```

use rfsp_bench::{run_write_all_with_observed, WriteAllSetup};
use rfsp_core::{SnapshotBalance, WriteAllTasks};
use rfsp_pram::snapshot::SnapshotMachine;
use rfsp_pram::{
    LayoutBuilder, MetricsObserver, NoFailures, Observer, RunLimits, Tee, TraceRecorder, WorkStats,
};

use crate::args::{ArgError, Args};
use crate::commands::writeall::{build_adversary, parse_algo};

fn write_out(dest: &str, text: &str) -> Result<(), ArgError> {
    if dest == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(dest, text).map_err(|e| ArgError(format!("cannot write {dest}: {e}")))
    }
}

/// Drive the snapshot-model balanced-allocation run under the selected
/// adversary, streaming events to `observer`.
fn run_snapshot(
    args: &Args,
    n: usize,
    p: usize,
    max_cycles: u64,
    observer: &mut dyn Observer,
) -> Result<WorkStats, ArgError> {
    let mut layout = LayoutBuilder::new();
    let tasks = WriteAllTasks::new(&mut layout, n);
    let algo = SnapshotBalance::new(tasks, n);
    let mut m =
        SnapshotMachine::new(&algo, p, 1).map_err(|e| ArgError(format!("machine error: {e}")))?;
    // Region-aware adversaries see the same Write-All array; the snapshot
    // model has no X layout or progress tree, so layout-bound adversaries
    // (xkiller) are rejected by `build_adversary` itself.
    let setup = WriteAllSetup { tasks, x_layout: None, tree: None };
    let mut adversary = build_adversary(args, &setup, n)?;
    let report = m
        .run_observed(&mut adversary, RunLimits { max_cycles }, observer)
        .map_err(|e| ArgError(format!("machine error: {e}")))?;
    if !tasks.all_written(m.memory()) {
        return Err(ArgError("postcondition failed: array not fully written".into()));
    }
    Ok(report.stats)
}

/// Execute the subcommand.
///
/// # Errors
///
/// Reports bad arguments, I/O problems, and machine errors as [`ArgError`].
pub fn run(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.get_parsed("n", 1024)?;
    let p: usize = args.get_parsed("p", 64)?;
    let model = args.get_or("model", "word");
    if model != "word" && model != "snapshot" {
        return Err(crate::unknown("--model", model, &["word", "snapshot"]));
    }
    let max_cycles: u64 = args.get_parsed("max-cycles", RunLimits::default().max_cycles)?;
    let tail: usize = args.get_parsed("tail", 0)?;
    let format = args.get_or("format", "csv");
    if format != "csv" && format != "jsonl" {
        return Err(crate::unknown("--format", format, &["csv", "jsonl"]));
    }

    let mut recorder =
        if tail == 0 { TraceRecorder::unbounded() } else { TraceRecorder::with_capacity(tail) };
    let mut metrics = MetricsObserver::new(p);

    let (algo_name, stats) = if model == "snapshot" {
        let stats = run_snapshot(args, n, p, max_cycles, &mut Tee(&mut recorder, &mut metrics))?;
        ("snapshot", stats)
    } else {
        let algo = parse_algo(args.get_or("algo", "x"))?;
        let mut build_err = None;
        let result = run_write_all_with_observed(
            algo,
            n,
            p,
            |setup| match build_adversary(args, setup, n) {
                Ok(adv) => adv,
                Err(e) => {
                    build_err = Some(e);
                    Box::new(NoFailures)
                }
            },
            RunLimits { max_cycles },
            &mut Tee(&mut recorder, &mut metrics),
        );
        if let Some(e) = build_err {
            return Err(e);
        }
        let run = result.map_err(|e| ArgError(format!("machine error: {e}")))?;
        if !run.verified {
            return Err(ArgError("postcondition failed: array not fully written".into()));
        }
        (algo.name(), run.report.stats)
    };
    let series = metrics.finish();

    let events_dest = args.get("events");
    let metrics_dest = args.get("metrics");
    if let Some(dest) = events_dest {
        write_out(dest, &recorder.to_jsonl())?;
    }
    if let Some(dest) = metrics_dest {
        let text = if format == "csv" { series.to_csv() } else { series.to_jsonl() };
        write_out(dest, &text)?;
    }
    if events_dest.is_none() && metrics_dest.is_none() {
        // No export requested: stream the per-tick series to stdout.
        print!("{}", if format == "csv" { series.to_csv() } else { series.to_jsonl() });
    }

    // Keep stdout clean for piped telemetry; the summary goes to stderr.
    eprintln!(
        "trace: {algo_name} N={n} P={p} adversary={} — {} events ({} dropped by --tail), {} ticks, \
         S={} S'={} |F|={}",
        args.get_or("adversary", "none"),
        recorder.total_events,
        recorder.dropped,
        series.ticks.len(),
        stats.completed_cycles,
        stats.s_prime(),
        stats.pattern_size(),
    );
    Ok(())
}
