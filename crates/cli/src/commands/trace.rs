//! `rfsp trace` — run one Write-All instance under full telemetry and
//! export the stream.
//!
//! Accepts the same instance and adversary options as `rfsp writeall`; the
//! run is driven through a [`Tee`] of a [`TraceRecorder`] (raw machine
//! events) and a [`MetricsObserver`] (per-tick aggregates), and either or
//! both views can be written to a file or streamed to stdout (`-`).
//!
//! ```text
//! rfsp trace --algo v --n 256 --p 16 --adversary random --rate 0.1 --metrics -
//! rfsp trace --algo x --adversary xkiller --events run.jsonl --metrics run.csv
//! rfsp trace --n 4096 --adversary thrashing --tail 500 --events -
//! ```

use rfsp_bench::run_write_all_with_observed;
use rfsp_pram::{MetricsObserver, NoFailures, RunLimits, Tee, TraceRecorder};

use crate::args::{ArgError, Args};
use crate::commands::writeall::{build_adversary, parse_algo};

fn write_out(dest: &str, text: &str) -> Result<(), ArgError> {
    if dest == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(dest, text).map_err(|e| ArgError(format!("cannot write {dest}: {e}")))
    }
}

/// Execute the subcommand.
///
/// # Errors
///
/// Reports bad arguments, I/O problems, and machine errors as [`ArgError`].
pub fn run(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.get_parsed("n", 1024)?;
    let p: usize = args.get_parsed("p", 64)?;
    let algo = parse_algo(args.get_or("algo", "x"))?;
    let max_cycles: u64 = args.get_parsed("max-cycles", RunLimits::default().max_cycles)?;
    let tail: usize = args.get_parsed("tail", 0)?;
    let format = args.get_or("format", "csv");
    if format != "csv" && format != "jsonl" {
        return Err(ArgError(format!("unknown --format '{format}' (csv|jsonl)")));
    }

    let mut recorder =
        if tail == 0 { TraceRecorder::unbounded() } else { TraceRecorder::with_capacity(tail) };
    let mut metrics = MetricsObserver::new(p);

    let mut build_err = None;
    let result = run_write_all_with_observed(
        algo,
        n,
        p,
        |setup| match build_adversary(args, setup, n) {
            Ok(adv) => adv,
            Err(e) => {
                build_err = Some(e);
                Box::new(NoFailures)
            }
        },
        RunLimits { max_cycles },
        &mut Tee(&mut recorder, &mut metrics),
    );
    if let Some(e) = build_err {
        return Err(e);
    }
    let run = result.map_err(|e| ArgError(format!("machine error: {e}")))?;
    if !run.verified {
        return Err(ArgError("postcondition failed: array not fully written".into()));
    }
    let series = metrics.finish();

    let events_dest = args.get("events");
    let metrics_dest = args.get("metrics");
    if let Some(dest) = events_dest {
        write_out(dest, &recorder.to_jsonl())?;
    }
    if let Some(dest) = metrics_dest {
        let text = if format == "csv" { series.to_csv() } else { series.to_jsonl() };
        write_out(dest, &text)?;
    }
    if events_dest.is_none() && metrics_dest.is_none() {
        // No export requested: stream the per-tick series to stdout.
        print!("{}", if format == "csv" { series.to_csv() } else { series.to_jsonl() });
    }

    // Keep stdout clean for piped telemetry; the summary goes to stderr.
    eprintln!(
        "trace: {} N={n} P={p} adversary={} — {} events ({} dropped by --tail), {} ticks, \
         S={} S'={} |F|={}",
        algo.name(),
        args.get_or("adversary", "none"),
        recorder.total_events,
        recorder.dropped,
        series.ticks.len(),
        run.report.stats.completed_cycles,
        run.report.stats.s_prime(),
        run.report.stats.pattern_size(),
    );
    Ok(())
}
