//! `rfsp serve` — the multi-tenant experiment daemon — and its client
//! subcommands `submit`, `jobs`, and `cancel`.
//!
//! The daemon multiplexes many crash-safe [`RunSession`]s over one
//! process: a FIFO round-robin [`Scheduler`] hands out the run turn one
//! quantum at a time, jobs are preempted only at checkpoint boundaries
//! (every preemption pause publishes a durable checkpoint, so the spool
//! is always resumable), and pooled jobs share a single
//! [`SharedPool`](rfsp_pram::SharedPool) of tick workers.
//!
//! Everything the daemon knows lives in its on-disk spool — one directory
//! per job with the config, the latest checkpoint, and the events stream.
//! `kill -9` the daemon, restart it, and it re-adopts every unfinished
//! job from the spool and resumes it from its last checkpoint with a
//! byte-identical event stream; that is the machine-level crash-recovery
//! guarantee of `rfsp experiment --resume`, promoted to a service. The
//! job queue itself mirrors the paper's Do-All setting: independent tasks
//! that must all complete although the worker executing them can
//! fail-stop and restart at any moment.
//!
//! The wire protocol is newline-delimited JSON over a local Unix socket
//! (see [`rfsp_run::protocol`]); `rfsp submit/jobs/cancel` are thin
//! clients, and `nc -U` works in a pinch.

use crate::args::{ArgError, Args};

/// `rfsp serve`.
///
/// # Errors
///
/// Socket/spool I/O and malformed spool contents, as [`ArgError`].
pub fn serve(args: &Args) -> Result<(), ArgError> {
    imp::serve(args)
}

/// `rfsp submit`.
///
/// # Errors
///
/// Connection failures, daemon refusals, and bad run flags.
pub fn submit(args: &Args) -> Result<(), ArgError> {
    imp::submit(args)
}

/// `rfsp jobs`.
///
/// # Errors
///
/// Connection failures.
pub fn jobs(args: &Args) -> Result<(), ArgError> {
    imp::jobs(args)
}

/// `rfsp cancel`.
///
/// # Errors
///
/// Connection failures and unknown job ids.
pub fn cancel(args: &Args) -> Result<(), ArgError> {
    imp::cancel(args)
}

#[cfg(not(unix))]
mod imp {
    use super::*;

    fn unsupported() -> ArgError {
        ArgError("the experiment daemon needs a Unix platform (local socket)".into())
    }

    pub fn serve(_args: &Args) -> Result<(), ArgError> {
        Err(unsupported())
    }
    pub fn submit(_args: &Args) -> Result<(), ArgError> {
        Err(unsupported())
    }
    pub fn jobs(_args: &Args) -> Result<(), ArgError> {
        Err(unsupported())
    }
    pub fn cancel(_args: &Args) -> Result<(), ArgError> {
        Err(unsupported())
    }
}

#[cfg(unix)]
mod imp {
    use std::cell::Cell;
    use std::collections::BTreeMap;
    use std::io::{BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    use rfsp_bench::{with_write_all_program, WriteAllSetup, WriteAllVisitor};
    use rfsp_pram::{CycleBudget, Machine, Observer, Program, SharedPool, TraceEvent};
    use rfsp_run::{
        read_line, write_line, ExecMode, JobInfo, JobState, PauseFlow, Request, Response,
        RunConfig, RunSession, Scheduler, SessionCheckpoint, SessionEnd, Spool,
    };
    use serde::{Deserialize, Serialize};

    use super::*;
    use crate::commands::longrun::config_from_args;
    use crate::commands::writeall::parse_algo;

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Live state of one job, as the registry tracks it.
    struct JobEntry {
        state: JobState,
        cycle: u64,
        algo: String,
        n: u64,
        p: u64,
        cancel: Arc<AtomicBool>,
        watchers: Arc<Mutex<Vec<UnixStream>>>,
    }

    /// Everything the daemon's threads share.
    struct Daemon {
        spool: Spool,
        sched: Scheduler,
        pool: Option<SharedPool>,
        quantum: u64,
        registry: Mutex<BTreeMap<u64, JobEntry>>,
        handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
        next_id: Mutex<u64>,
        shutdown: AtomicBool,
    }

    /// Streams a job's events to its subscribed watchers; a watcher whose
    /// socket write fails is silently dropped (it hung up).
    struct Fan {
        job: u64,
        sinks: Arc<Mutex<Vec<UnixStream>>>,
    }

    impl Observer for Fan {
        fn event(&mut self, event: TraceEvent) {
            let mut sinks = lock(&self.sinks);
            if sinks.is_empty() {
                return;
            }
            let mut line = format!("{{\"job\":{},\"event\":", self.job);
            line.push_str(&serde::json::to_string(&event));
            line.push_str("}\n");
            sinks.retain_mut(|s| s.write_all(line.as_bytes()).is_ok());
        }
    }

    /// How a job's session ended, daemon-side.
    enum JobEnd {
        Completed(String),
        Canceled { cycle: u64 },
        Shutdown,
    }

    struct JobVisitor<'d> {
        daemon: &'d Daemon,
        job: u64,
        cfg: &'d RunConfig,
        resume: Option<SessionCheckpoint>,
    }

    impl WriteAllVisitor for JobVisitor<'_> {
        type Out = Result<JobEnd, ArgError>;

        fn visit<P>(self, prog: &P, setup: &WriteAllSetup, budget: CycleBudget) -> Self::Out
        where
            P: Program + Sync,
            P::Private: Send + Serialize + Deserialize,
        {
            let JobVisitor { daemon, job, cfg, resume } = self;
            let procs = cfg.p as usize;
            let build = Box::new(move || Machine::new(prog, procs, budget));
            // Pooled jobs share the daemon's worker pool; --threads 1 jobs
            // take the sequential engine. Either way the scheduler
            // serializes run segments, so the pool's turn lock never
            // contends.
            let exec = if cfg.threads > 1 {
                daemon.pool.as_ref().map_or(ExecMode::Threads(cfg.threads as usize), ExecMode::Pool)
            } else {
                ExecMode::Sequential
            };
            let mut session = match resume {
                Some(ck) => RunSession::resume(ck, exec, build)?,
                None => RunSession::new(cfg.clone(), exec, build)?,
            };
            let (cancel, watchers) = {
                let reg = lock(&daemon.registry);
                let entry = reg.get(&job).expect("job registered before spawn");
                (Arc::clone(&entry.cancel), Arc::clone(&entry.watchers))
            };
            let mut fan = Fan { job, sinks: watchers };

            daemon.sched.acquire(job);
            lock(&daemon.registry).get_mut(&job).expect("registered").state = JobState::Running;
            // Every quantum expiry is an *external* pause: the session
            // publishes a checkpoint before we yield the turn, so the
            // spool stays resumable at every preemption point.
            let quantum_end = Cell::new(session.cycle() + daemon.quantum);
            let stop = Cell::new(None);
            let end = session.run(
                &mut |cycle| {
                    cancel.load(Ordering::SeqCst)
                        || daemon.shutdown.load(Ordering::SeqCst)
                        || cycle >= quantum_end.get()
                },
                &mut |pause| {
                    lock(&daemon.registry).get_mut(&job).expect("registered").cycle = pause.cycle;
                    if cancel.load(Ordering::SeqCst) {
                        stop.set(Some(JobEnd::Canceled { cycle: pause.cycle }));
                        return PauseFlow::Stop;
                    }
                    if daemon.shutdown.load(Ordering::SeqCst) {
                        stop.set(Some(JobEnd::Shutdown));
                        return PauseFlow::Stop;
                    }
                    daemon.sched.yield_turn(job);
                    quantum_end.set(pause.cycle + daemon.quantum);
                    PauseFlow::Continue
                },
                &mut fan,
            );
            daemon.sched.release(job);
            match end? {
                SessionEnd::Completed(report) => {
                    if !setup.tasks.all_written(session.memory()) {
                        return Err(ArgError(
                            "postcondition failed: array not fully written".into(),
                        ));
                    }
                    lock(&daemon.registry).get_mut(&job).expect("registered").cycle =
                        session.cycle();
                    Ok(JobEnd::Completed(format!(
                        "S={} tau={} checkpoints={} restores={}",
                        report.stats.completed_work(),
                        report.stats.parallel_time,
                        session.wasted().checkpoints,
                        session.wasted().restores,
                    )))
                }
                SessionEnd::Stopped { .. } => Ok(stop.take().unwrap_or(JobEnd::Shutdown)),
            }
        }
    }

    /// Body of a job thread: run the session, then publish the terminal
    /// state to the registry and (except on daemon shutdown) the spool.
    fn run_job(daemon: &Arc<Daemon>, job: u64, cfg: RunConfig, resume: Option<SessionCheckpoint>) {
        let outcome = parse_algo(&cfg.algo).and_then(|algo| {
            with_write_all_program(
                algo,
                cfg.n as usize,
                cfg.p as usize,
                JobVisitor { daemon, job, cfg: &cfg, resume },
            )
        });
        let (state, marker) = match &outcome {
            Ok(JobEnd::Completed(detail)) => {
                (JobState::Completed, Some(("completed", detail.clone())))
            }
            Ok(JobEnd::Canceled { cycle }) => {
                (JobState::Stopped, Some(("stopped", format!("canceled at tick {cycle}"))))
            }
            // Daemon shutdown: no terminal marker, so a restarted daemon
            // re-adopts the job and resumes it from its checkpoint.
            Ok(JobEnd::Shutdown) => (JobState::Stopped, None),
            Err(e) => (JobState::Failed, Some(("failed", e.0.clone()))),
        };
        {
            let mut registry = lock(&daemon.registry);
            let entry = registry.get_mut(&job).expect("registered");
            entry.state = state;
            // Dropping the watcher streams is the subscribers' EOF: a
            // `submit --watch` client exits once its job is terminal.
            lock(&entry.watchers).clear();
        }
        if let Some((tag, detail)) = marker {
            if let Err(e) = daemon.spool.mark_done(job, tag, &detail) {
                eprintln!("job {job}: cannot record terminal state: {e}");
            }
        }
        if let Err(e) = &outcome {
            eprintln!("job {job} failed: {e}");
        }
    }

    /// Register a job in the registry and spawn its thread.
    fn spawn_job(
        daemon: &Arc<Daemon>,
        job: u64,
        cfg: RunConfig,
        resume: Option<SessionCheckpoint>,
        state: JobState,
    ) {
        let entry = JobEntry {
            state,
            cycle: resume.as_ref().map_or(0, |ck| ck.machine.cycle),
            algo: cfg.algo.clone(),
            n: cfg.n,
            p: cfg.p,
            cancel: Arc::new(AtomicBool::new(false)),
            watchers: Arc::new(Mutex::new(Vec::new())),
        };
        lock(&daemon.registry).insert(job, entry);
        let d = Arc::clone(daemon);
        let handle = std::thread::spawn(move || run_job(&d, job, cfg, resume));
        lock(&daemon.handles).push(handle);
    }

    /// Admit a submitted config: validate, spool it, spawn the job.
    fn admit(daemon: &Arc<Daemon>, config: RunConfig) -> Result<u64, ArgError> {
        parse_algo(&config.algo)?;
        let job = {
            let mut next = lock(&daemon.next_id);
            let id = *next;
            *next += 1;
            id
        };
        let cfg = daemon.spool.create_job(job, config)?;
        // Validate with the spool paths in place: this is what rejects
        // non-checkpointable algorithms (acc) at the door.
        cfg.validate()?;
        spawn_job(daemon, job, cfg, None, JobState::Queued);
        Ok(job)
    }

    fn job_rows(daemon: &Daemon) -> Vec<JobInfo> {
        lock(&daemon.registry)
            .iter()
            .map(|(&job, e)| JobInfo {
                job,
                state: e.state,
                cycle: e.cycle,
                algo: e.algo.clone(),
                n: e.n,
                p: e.p,
            })
            .collect()
    }

    /// Serve one client connection (one request; `Watch` keeps the socket).
    fn handle_client(daemon: &Arc<Daemon>, stream: UnixStream) {
        let Ok(reader) = stream.try_clone() else { return };
        let mut reader = BufReader::new(reader);
        let mut out = stream;
        let request = match read_line::<Request>(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                let _ = write_line(&mut out, &Response::Err { message: e.0 });
                return;
            }
        };
        let response = match request {
            Request::Submit { config } => match admit(daemon, config) {
                Ok(job) => Response::Submitted { job },
                Err(e) => Response::Err { message: e.0 },
            },
            Request::Jobs => Response::JobList { jobs: job_rows(daemon) },
            Request::Cancel { job } => match lock(&daemon.registry).get(&job) {
                Some(entry) => {
                    entry.cancel.store(true, Ordering::SeqCst);
                    Response::Done
                }
                None => Response::Err { message: format!("no such job: {job}") },
            },
            Request::Watch { job } => match lock(&daemon.registry).get(&job) {
                Some(entry) => {
                    // Registering on a terminal job would hang the client
                    // forever; ack and hang up instead (the registry lock
                    // orders this against run_job's terminal transition).
                    let live = matches!(entry.state, JobState::Queued | JobState::Running);
                    if write_line(&mut out, &Response::Done).is_ok() && live {
                        lock(&entry.watchers).push(out);
                    }
                    return;
                }
                None => Response::Err { message: format!("no such job: {job}") },
            },
            Request::Shutdown => {
                daemon.shutdown.store(true, Ordering::SeqCst);
                Response::Done
            }
        };
        let _ = write_line(&mut out, &response);
    }

    fn sock_err(what: &str, path: &str, e: &dyn std::fmt::Display) -> ArgError {
        ArgError(format!("cannot {what} {path}: {e}"))
    }

    pub fn serve(args: &Args) -> Result<(), ArgError> {
        let spool_dir = args.get_or("spool", "rfsp-spool").to_string();
        let socket =
            args.get("socket").map_or_else(|| format!("{spool_dir}/rfsp.sock"), str::to_string);
        let workers: usize = args.get_parsed("workers", 2)?;
        let quantum: u64 = args.get_parsed("quantum", 50u64)?;
        if quantum == 0 {
            return Err(ArgError("--quantum must be at least 1 tick".into()));
        }
        let spool = Spool::open(Path::new(&spool_dir))?;
        let adopt = spool.scan()?;
        let next_id = spool.next_job_id()?;
        let pool = if workers >= 2 {
            Some(SharedPool::new(workers).map_err(|e| ArgError(e.to_string()))?)
        } else {
            None
        };
        let daemon = Arc::new(Daemon {
            spool,
            sched: Scheduler::new(),
            pool,
            quantum,
            registry: Mutex::new(BTreeMap::new()),
            handles: Mutex::new(Vec::new()),
            next_id: Mutex::new(next_id),
            shutdown: AtomicBool::new(false),
        });

        // Re-adopt the spool: finished jobs become history rows, every
        // unfinished job restarts — from its checkpoint when one exists.
        for sj in adopt {
            match sj.done {
                Some(marker) => {
                    let state = match marker.state.as_str() {
                        "completed" => JobState::Completed,
                        "failed" => JobState::Failed,
                        _ => JobState::Stopped,
                    };
                    let cycle = sj.resume.as_ref().map_or(0, |ck| ck.machine.cycle);
                    lock(&daemon.registry).insert(
                        sj.job,
                        JobEntry {
                            state,
                            cycle,
                            algo: sj.config.algo.clone(),
                            n: sj.config.n,
                            p: sj.config.p,
                            cancel: Arc::new(AtomicBool::new(false)),
                            watchers: Arc::new(Mutex::new(Vec::new())),
                        },
                    );
                }
                None => {
                    let resumed = sj.resume.is_some();
                    spawn_job(&daemon, sj.job, sj.config, sj.resume, JobState::Queued);
                    eprintln!(
                        "re-adopted job {} from spool ({})",
                        sj.job,
                        if resumed { "resuming from checkpoint" } else { "starting from scratch" }
                    );
                }
            }
        }

        let _ = std::fs::remove_file(&socket);
        let listener = UnixListener::bind(&socket).map_err(|e| sock_err("bind", &socket, &e))?;
        listener.set_nonblocking(true).map_err(|e| sock_err("configure", &socket, &e))?;
        println!("rfsp serve: listening on {socket} (spool {spool_dir}, quantum {quantum} ticks)");
        while !daemon.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let d = Arc::clone(&daemon);
                    std::thread::spawn(move || handle_client(&d, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(sock_err("accept on", &socket, &e)),
            }
        }
        // Graceful shutdown: every job sees the flag at its next pause,
        // checkpoints, and stops; the spool keeps them resumable.
        eprintln!("rfsp serve: shutting down (jobs checkpoint and stop)");
        let handles: Vec<_> = std::mem::take(&mut *lock(&daemon.handles));
        for h in handles {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&socket);
        Ok(())
    }

    fn connect(args: &Args) -> Result<UnixStream, ArgError> {
        let socket = args.get("socket").ok_or_else(|| {
            ArgError("--socket PATH is required (where rfsp serve listens)".into())
        })?;
        UnixStream::connect(socket).map_err(|e| sock_err("connect to", socket, &e))
    }

    fn roundtrip(args: &Args, request: &Request) -> Result<Response, ArgError> {
        let mut stream = connect(args)?;
        write_line(&mut stream, request)?;
        let mut reader = BufReader::new(stream);
        read_line::<Response>(&mut reader)?
            .ok_or_else(|| ArgError("daemon hung up without a response".into()))
    }

    fn refuse(message: String) -> ArgError {
        ArgError(format!("daemon refused: {message}"))
    }

    pub fn submit(args: &Args) -> Result<(), ArgError> {
        // The daemon owns the artifact paths (they live in its spool).
        let mut config = config_from_args(args)?;
        config.checkpoint = None;
        config.events = None;
        match roundtrip(args, &Request::Submit { config })? {
            Response::Submitted { job } => {
                println!("job {job}");
                if args.flag("watch") {
                    watch(args, job)?;
                }
                Ok(())
            }
            Response::Err { message } => Err(refuse(message)),
            other => Err(ArgError(format!("unexpected daemon response: {other:?}"))),
        }
    }

    /// Subscribe to a job's telemetry and copy it to stdout until the job
    /// ends or the daemon goes away.
    fn watch(args: &Args, job: u64) -> Result<(), ArgError> {
        let mut stream = connect(args)?;
        write_line(&mut stream, &Request::Watch { job })?;
        let mut reader = BufReader::new(stream);
        match read_line::<Response>(&mut reader)? {
            Some(Response::Done) => {}
            Some(Response::Err { message }) => return Err(refuse(message)),
            other => return Err(ArgError(format!("unexpected daemon response: {other:?}"))),
        }
        let mut out = std::io::stdout().lock();
        loop {
            use std::io::BufRead;
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return Ok(()),
                Ok(_) => {
                    let _ = out.write_all(line.as_bytes());
                }
            }
        }
    }

    pub fn jobs(args: &Args) -> Result<(), ArgError> {
        match roundtrip(args, &Request::Jobs)? {
            Response::JobList { jobs } => {
                println!(
                    "{:>6}  {:<10} {:>10}  {:<12} {:>10} {:>6}",
                    "JOB", "STATE", "TICK", "ALGO", "N", "P"
                );
                for j in jobs {
                    println!(
                        "{:>6}  {:<10} {:>10}  {:<12} {:>10} {:>6}",
                        j.job,
                        format!("{:?}", j.state),
                        j.cycle,
                        j.algo,
                        j.n,
                        j.p
                    );
                }
                Ok(())
            }
            Response::Err { message } => Err(refuse(message)),
            other => Err(ArgError(format!("unexpected daemon response: {other:?}"))),
        }
    }

    pub fn cancel(args: &Args) -> Result<(), ArgError> {
        let request = if args.flag("shutdown") {
            Request::Shutdown
        } else if args.get("job").is_some() {
            Request::Cancel { job: args.get_parsed::<u64>("job", 0)? }
        } else {
            return Err(ArgError("--job N is required (or --shutdown)".into()));
        };
        match roundtrip(args, &request)? {
            Response::Done => Ok(()),
            Response::Err { message } => Err(refuse(message)),
            other => Err(ArgError(format!("unexpected daemon response: {other:?}"))),
        }
    }
}
