//! `rfsp soak` — the randomized chaos harness.
//!
//! Fuzzes program × adversary × tick engine × injected host faults
//! (worker panics, simulated kill/resume) and cross-checks every run
//! against a sequential reference: engine equivalence, panic-isolation
//! equivalence, checkpoint/kill/resume equivalence, the Write-All
//! postcondition, and the paper's accounting invariants. The case mix
//! includes the §3 snapshot machine, whose kill/resume check exercises the
//! unified execution core's checkpointing from the snapshot side. The
//! first failing case is written as a minimal JSON replay file;
//! `rfsp soak --replay FILE` reproduces it from that file alone.
//!
//! ```text
//! rfsp soak --cases 64 --seed 7
//! rfsp soak --replay soak-failure.json
//! ```

use rfsp_bench::soak::{run_case, run_soak, CaseOutcome, SoakCase, SoakOptions};

use crate::args::{ArgError, Args};

fn describe(case: &SoakCase) -> String {
    format!(
        "{:?} n={} p={} threads={} panic={} kill={}",
        case.algo,
        case.n,
        case.p,
        case.threads,
        case.panic.map_or("-".to_string(), |s| format!("P{}@{}", s.pid, s.on_call)),
        case.kill_at.map_or("-".to_string(), |t| t.to_string()),
    )
}

/// Execute the subcommand.
///
/// # Errors
///
/// Reports bad arguments, I/O problems, and — as the command's entire
/// point — reproducible cross-check failures as [`ArgError`].
pub fn run(args: &Args) -> Result<(), ArgError> {
    if let Some(path) = args.get("replay") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let case = SoakCase::from_json(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
        eprintln!("replaying {}", describe(&case));
        return match run_case(&case) {
            Ok(CaseOutcome::Passed { panic_fired }) => {
                println!("replay passed (injected panic fired: {panic_fired})");
                Ok(())
            }
            Ok(CaseOutcome::Skipped(why)) => {
                println!("replay inconclusive: {why}");
                Ok(())
            }
            Err(failure) => Err(ArgError(failure.to_string())),
        };
    }

    let opts = SoakOptions {
        cases: args.get_parsed("cases", SoakOptions::default().cases)?,
        seed: args.get_parsed("seed", SoakOptions::default().seed)?,
    };
    let verbose = args.flag("verbose");
    let result = run_soak(opts, |i, case, outcome| {
        if verbose {
            let verdict = match outcome {
                CaseOutcome::Passed { panic_fired: true } => "ok (panic injected)",
                CaseOutcome::Passed { panic_fired: false } => "ok",
                CaseOutcome::Skipped(_) => "skipped",
            };
            eprintln!("case {i:>4}: {} — {verdict}", describe(case));
        }
    });
    match result {
        Ok(summary) => {
            println!(
                "soak: {} cases passed, {} skipped, {} injected panics survived",
                summary.passed, summary.skipped, summary.panics_fired
            );
            Ok(())
        }
        Err(failure) => {
            let out = args.get_or("replay-out", "soak-failure.json");
            std::fs::write(out, failure.case.to_json())
                .map_err(|e| ArgError(format!("cannot write replay file {out}: {e}")))?;
            Err(ArgError(format!(
                "{failure}\nreplay file written: {out} (reproduce with: rfsp soak --replay {out})"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_soak_batch_via_cli() {
        let a = Args::parse(["soak", "--cases", "2", "--seed", "5"]).unwrap();
        run(&a).unwrap();
    }

    #[test]
    fn replay_of_a_written_case_file() {
        let dir = std::env::temp_dir().join("rfsp-soak-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.json");
        let case = rfsp_bench::soak::generate_case(5, 0);
        std::fs::write(&path, case.to_json()).unwrap();
        let a = Args::parse(["soak", "--replay", path.to_str().unwrap()]).unwrap();
        run(&a).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_rejects_garbage() {
        let dir = std::env::temp_dir().join("rfsp-soak-cli-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{").unwrap();
        let a = Args::parse(["soak", "--replay", path.to_str().unwrap()]).unwrap();
        assert!(run(&a).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
