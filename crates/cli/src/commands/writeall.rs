//! `rfsp writeall` — run one Write-All instance and report the accounting.

use rfsp_adversary::{
    offline_random, Budgeted, Pigeonhole, RandomFaults, Stalking, StalkingMode, Thrashing, XKiller,
};
use rfsp_bench::{run_write_all_tuned_observed, Algo, MachineTuning, TickEngine, WriteAllSetup};
use rfsp_pram::{Adversary, MemoryLayout, NoFailures, NoopObserver, RunLimits, ScheduledAdversary};

use crate::args::{ArgError, Args};
use crate::pattern_io;

/// Parse `--banks B [--interleave I]` into a [`MemoryLayout`] (flat when
/// `--banks` is absent or 1 with word interleaving).
pub(crate) fn parse_layout(args: &Args) -> Result<MemoryLayout, ArgError> {
    let banks: usize = args.get_parsed("banks", 1)?;
    let interleave: usize = args.get_parsed("interleave", 1)?;
    if banks == 0 || interleave == 0 {
        return Err(ArgError("--banks and --interleave must be at least 1".into()));
    }
    Ok(if banks == 1 && interleave == 1 {
        MemoryLayout::Flat
    } else {
        MemoryLayout::Banked { banks, interleave }
    })
}

pub(crate) fn parse_algo(name: &str) -> Result<Algo, ArgError> {
    Ok(match name {
        "x" => Algo::X,
        "v" => Algo::V,
        "w" => Algo::W,
        "vx" | "interleaved" => Algo::Interleaved,
        "x-inplace" | "inplace" => Algo::XInPlace,
        "acc" => Algo::Acc(0),
        other => {
            return Err(crate::unknown(
                "algorithm",
                other,
                &["x", "v", "w", "vx", "x-inplace", "acc"],
            ))
        }
    })
}

pub(crate) fn build_adversary(
    args: &Args,
    setup: &WriteAllSetup,
    n: usize,
) -> Result<Box<dyn Adversary>, ArgError> {
    let seed: u64 = args.get_parsed("seed", 0)?;
    let adv: Box<dyn Adversary> = match args.get_or("adversary", "none") {
        "none" => Box::new(NoFailures),
        "thrashing" => Box::new(Thrashing::new()),
        "pigeonhole" => Box::new(Pigeonhole::new(setup.tasks.x())),
        "pigeonhole-failstop" => Box::new(Pigeonhole::fail_stop(setup.tasks.x())),
        "random" => {
            let rate: f64 = args.get_parsed("rate", 0.05)?;
            let restart: f64 = args.get_parsed("restart-rate", 0.5)?;
            Box::new(RandomFaults::new(rate, restart, seed))
        }
        "offline" => {
            let rate: f64 = args.get_parsed("rate", 0.05)?;
            let restart: f64 = args.get_parsed("restart-rate", 0.5)?;
            let p: usize = args.get_parsed("p", 64)?;
            Box::new(offline_random(p, 1_000_000, rate, restart, seed))
        }
        "xkiller" => {
            let layout = setup
                .x_layout
                .ok_or_else(|| ArgError("--adversary xkiller needs --algo x".into()))?;
            let tree = setup.tree.expect("algorithms with an X layout have a tree");
            Box::new(XKiller::new(setup.tasks.x(), layout, tree))
        }
        "stalking" => {
            let target: usize = args.get_parsed("target", n - 1)?;
            let mode = if args.flag("no-restarts") {
                StalkingMode::FailStop
            } else {
                StalkingMode::Restart
            };
            Box::new(Stalking::new(setup.tasks.x(), target, mode))
        }
        "replay" => {
            let path = args
                .get("replay-pattern")
                .ok_or_else(|| ArgError("--adversary replay needs --replay-pattern FILE".into()))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            Box::new(ScheduledAdversary::new(pattern_io::decode(&text)?))
        }
        other => {
            return Err(crate::unknown(
                "adversary",
                other,
                &[
                    "none",
                    "thrashing",
                    "pigeonhole",
                    "pigeonhole-failstop",
                    "random",
                    "offline",
                    "xkiller",
                    "stalking",
                    "replay",
                ],
            ))
        }
    };
    Ok(match args.get("fault-budget") {
        Some(_) => Box::new(Budgeted::new(adv, args.get_parsed("fault-budget", 0)?)),
        None => adv,
    })
}

/// Execute the subcommand.
///
/// # Errors
///
/// Reports bad arguments, I/O problems, and machine errors as [`ArgError`].
pub fn run(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.get_parsed("n", 1024)?;
    let p: usize = args.get_parsed("p", 64)?;
    let algo = parse_algo(args.get_or("algo", "x"))?;
    let max_cycles: u64 = args.get_parsed("max-cycles", RunLimits::default().max_cycles)?;
    let threads: usize = args.get_parsed("threads", 1)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    let engine = if threads == 1 { TickEngine::Sequential } else { TickEngine::Pooled { threads } };
    let mem_layout = parse_layout(args)?;
    // 0 = keep the machine default; 1 = the scalar reference path (the
    // differential-testing toggle).
    let batch_width: usize = args.get_parsed("batch-width", 0)?;
    let tuning =
        MachineTuning { batch_width: if batch_width == 0 { None } else { Some(batch_width) } };

    let mut build_err = None;
    let result = run_write_all_tuned_observed(
        algo,
        engine,
        mem_layout,
        tuning,
        n,
        p,
        |setup| match build_adversary(args, setup, n) {
            Ok(adv) => adv,
            Err(e) => {
                build_err = Some(e);
                Box::new(NoFailures)
            }
        },
        RunLimits { max_cycles },
        &mut NoopObserver,
    );
    if let Some(e) = build_err {
        return Err(e);
    }
    let run = result.map_err(|e| ArgError(format!("machine error: {e}")))?;
    if !run.verified {
        return Err(ArgError("postcondition failed: array not fully written".into()));
    }

    let s = run.report.stats.completed_work();
    println!("algorithm       : {}", algo.name());
    println!("tick engine     : {}", engine.label());
    println!("memory layout   : {mem_layout}");
    println!("instance        : N = {n}, P = {p}");
    println!("adversary       : {}", args.get_or("adversary", "none"));
    println!("completed work S: {s}");
    println!("S' (with partial): {}", run.report.stats.s_prime());
    println!("parallel time τ : {}", run.report.stats.parallel_time);
    println!("|F| (fail+restart): {}", run.report.stats.pattern_size());
    println!("overhead ratio σ: {:.4}", run.report.overhead_ratio(n as u64));
    println!("S / (N log2 N)  : {:.4}", s as f64 / (n as f64 * (n as f64).log2().max(1.0)));

    if let Some(path) = args.get("record-pattern") {
        std::fs::write(path, pattern_io::encode(&run.report.pattern))
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        println!("pattern recorded: {path} ({} events)", run.report.pattern.size());
    }
    Ok(())
}
