//! The `rfsp` binary: one call into the library's [`rfsp_cli::run_cli`],
//! which owns parsing, dispatch, and the documented exit-code table.

use std::process::ExitCode;

fn main() -> ExitCode {
    ExitCode::from(rfsp_cli::run_cli(std::env::args().skip(1)))
}
