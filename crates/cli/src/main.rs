//! The `rfsp` binary: parse the command line and dispatch.

use std::process::ExitCode;

use rfsp_cli::args::Args;
use rfsp_cli::CliOutcome;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match rfsp_cli::dispatch(&args) {
        Ok(CliOutcome::Done) => ExitCode::SUCCESS,
        // Interrupted-with-checkpoint: distinct from errors so callers can
        // script "rerun with --resume" (see EXIT CODES in `rfsp help`).
        Ok(CliOutcome::Interrupted) => ExitCode::from(3),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try 'rfsp help'");
            ExitCode::FAILURE
        }
    }
}
