//! A small, dependency-free argument parser: `--key value` and `--flag`
//! options after a subcommand.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand plus options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    opts: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// A user-facing argument error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl From<rfsp_run::RunError> for ArgError {
    fn from(e: rfsp_run::RunError) -> Self {
        ArgError(e.0)
    }
}

impl Args {
    /// Parse raw arguments (without the program name). `--key value` pairs
    /// become options; a `--key` followed by another `--…` (or nothing) is
    /// a boolean flag.
    ///
    /// # Errors
    ///
    /// Rejects stray positional arguments after the subcommand.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let takes_value = iter.peek().is_some_and(|next| !next.starts_with("--"));
                if takes_value {
                    let value = iter.next().expect("peeked");
                    args.opts.insert(key.to_string(), value);
                } else {
                    args.flags.push(key.to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument '{tok}'")));
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Reports unparseable values with the offending key.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("invalid value '{v}' for --{key}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(["writeall", "--n", "64", "--trace", "--algo", "x"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("writeall"));
        assert_eq!(a.get("n"), Some("64"));
        assert_eq!(a.get("algo"), Some("x"));
        assert!(a.flag("trace"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let a = Args::parse(["run", "--n", "12"]).unwrap();
        assert_eq!(a.get_parsed("n", 5usize).unwrap(), 12);
        assert_eq!(a.get_parsed("p", 5usize).unwrap(), 5);
        let a = Args::parse(["run", "--n", "abc"]).unwrap();
        assert!(a.get_parsed::<usize>("n", 0).is_err());
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let a = Args::parse(["x", "--verbose"]).unwrap();
        assert!(a.flag("verbose"));
    }

    #[test]
    fn rejects_extra_positionals() {
        let Err(e) = Args::parse(["a", "b"]) else { panic!("positional accepted") };
        assert!(e.0.contains("unexpected positional argument 'b'"), "{e}");
        // The offender is named even when buried among valid options.
        let Err(e) = Args::parse(["cmd", "--n", "4", "oops", "--p", "2"]) else {
            panic!("positional accepted")
        };
        assert!(e.0.contains("'oops'"), "{e}");
    }

    #[test]
    fn parse_errors_name_the_key_and_value() {
        let a = Args::parse(["run", "--n", "abc", "--rate", "fast"]).unwrap();
        let Err(e) = a.get_parsed::<u64>("n", 0) else { panic!("'abc' parsed as u64") };
        assert_eq!(e.0, "invalid value 'abc' for --n");
        let Err(e) = a.get_parsed::<f64>("rate", 0.0) else { panic!("'fast' parsed as f64") };
        assert_eq!(e.0, "invalid value 'fast' for --rate");
        // Error text round-trips through Display and From<RunError>.
        assert_eq!(e.to_string(), "invalid value 'fast' for --rate");
        let converted: ArgError = rfsp_run::RunError("spool on fire".into()).into();
        assert_eq!(converted.0, "spool on fire");
    }

    #[test]
    fn value_looking_like_flag_becomes_boolean() {
        // `--key --other` treats `--key` as a flag, not an option with the
        // value "--other" — the documented (if sharp-edged) behaviour.
        let a = Args::parse(["cmd", "--checkpoint", "--verbose"]).unwrap();
        assert_eq!(a.get("checkpoint"), None);
        assert!(a.flag("checkpoint") && a.flag("verbose"));
    }
}
