//! Exit-code table certification against the real `rfsp` binary.
//!
//! The in-process table (`run_cli` unit tests) covers codes 0/1/2; this
//! suite adds the one that needs genuine signal delivery: a SIGINT'd
//! long run must exit 3 **after** writing a resumable checkpoint, and the
//! resume must then run to completion with exit 0.

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_rfsp");

fn code(args: &[&str]) -> i32 {
    let out = Command::new(BIN)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .output()
        .expect("spawn rfsp");
    out.status.code().expect("no exit code")
}

#[test]
fn codes_zero_one_and_two_against_the_binary() {
    assert_eq!(code(&["help"]), 0);
    assert_eq!(code(&["writeall", "--n", "32", "--p", "8"]), 0);
    // Usage errors: unknown command, stray positional.
    assert_eq!(code(&["bogus"]), 2);
    assert_eq!(code(&["writeall", "stray"]), 2);
    // Runtime errors: known command that fails while running.
    assert_eq!(code(&["writeall", "--algo", "zzz"]), 1);
    assert_eq!(code(&["experiment", "--resume", "/no/such/ck.json"]), 1);
}

#[cfg(unix)]
#[test]
fn sigint_exits_three_with_a_resumable_checkpoint() {
    let dir = std::env::temp_dir().join(format!("rfsp-exit3-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("ck.json");
    let ck_s = ck.to_str().unwrap();

    // Sized so the run is still thousands of ticks from completion when
    // the first checkpoint lands (the kill window), without drowning the
    // test in checkpoint serialization time.
    let mut child = Command::new(BIN)
        .args([
            "experiment",
            "--run",
            "writeall",
            "--algo",
            "x",
            "--n",
            "1024",
            "--p",
            "8",
            "--adversary",
            "random",
            "--rate",
            "0.1",
            "--restart-rate",
            "0.5",
            "--seed",
            "9",
            "--every",
            "50",
            "--checkpoint",
            ck_s,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn long run");

    // Wait for the first checkpoint so the interrupt provably lands on a
    // run that has state to save.
    let start = Instant::now();
    while !Path::new(ck_s).exists() {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("run finished before it could be interrupted: {status}");
        }
        assert!(start.elapsed() < Duration::from_secs(60), "no checkpoint appeared");
        // Tight poll: in release builds the whole run is fast, so the
        // interrupt must land promptly after the first checkpoint.
        std::thread::sleep(Duration::from_millis(2));
    }
    let killed =
        Command::new("kill").args(["-INT", &child.id().to_string()]).status().expect("send SIGINT");
    assert!(killed.success(), "kill -INT failed");
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(3), "interrupted-with-checkpoint must exit 3");

    // The checkpoint it left behind resumes to completion (exit 0).
    assert_eq!(code(&["experiment", "--resume", ck_s]), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
