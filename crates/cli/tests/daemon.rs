//! End-to-end crash test of the `rfsp serve` daemon against the real
//! binary: submit two jobs, SIGKILL the daemon mid-run, restart it on the
//! same spool, and demand that both jobs complete with event streams
//! byte-identical to uninterrupted single-run references.
//!
//! Along the way this also certifies live telemetry (a `submit --watch`
//! client must receive event lines while its job runs) and the `jobs`
//! listing. The spool root honours `RFSP_DAEMON_SPOOL` so CI can archive
//! it when the test fails.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_rfsp");

/// The two tenant jobs: same shape the references are run with.
/// Sized so a debug-build run lasts thousands of ticks (the daemon is
/// SIGKILLed while both are provably still in flight) while the cadence
/// keeps full-state checkpoint serialization from dominating.
const JOBS: [(&str, &str); 2] = [("4096", "11"), ("3072", "23")];

fn job_flags(n: &str, seed: &str) -> Vec<String> {
    [
        "--algo",
        "x",
        "--n",
        n,
        "--p",
        "8",
        "--adversary",
        "random",
        "--rate",
        "0.15",
        "--restart-rate",
        "0.4",
        "--seed",
        seed,
        "--every",
        "200",
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

fn wait_for(what: &str, timeout: Duration, mut ok: impl FnMut() -> bool) {
    let start = Instant::now();
    while !ok() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Kills the daemon if the test panics before shutting it down.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_daemon(spool: &str, socket: &str) -> KillOnDrop {
    let child = Command::new(BIN)
        .args(["serve", "--spool", spool, "--socket", socket, "--workers", "0", "--quantum", "200"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    KillOnDrop(child)
}

#[test]
fn daemon_survives_sigkill_and_resumes_byte_identically() {
    let base = std::env::var("RFSP_DAEMON_SPOOL").map(PathBuf::from).unwrap_or_else(|_| {
        std::env::temp_dir().join(format!("rfsp-daemon-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&base);
    let spool = base.join("spool");
    std::fs::create_dir_all(&spool).unwrap();
    let spool_s = spool.to_str().unwrap().to_string();
    let socket = spool.join("rfsp.sock");
    let socket_s = socket.to_str().unwrap().to_string();
    // sun_path tops out at ~108 bytes; fail loudly, not with EINVAL.
    assert!(socket_s.len() < 100, "socket path too long: {socket_s}");

    // Uninterrupted references through the same session layer, one
    // process per run: the daemon's spooled streams must match these
    // byte for byte even though the daemon is killed mid-run.
    let mut references = Vec::new();
    for (n, seed) in JOBS {
        let path = base.join(format!("ref-{seed}.jsonl"));
        let mut args: Vec<String> =
            ["experiment", "--run", "writeall"].iter().map(ToString::to_string).collect();
        args.extend(job_flags(n, seed));
        args.extend(["--events".to_string(), path.to_str().unwrap().to_string()]);
        let status = Command::new(BIN)
            .args(&args)
            .stdout(Stdio::null())
            .status()
            .expect("spawn reference run");
        assert!(status.success(), "reference run failed");
        references.push(std::fs::read(&path).unwrap());
    }

    // First daemon: submit both jobs, the second through a `--watch`
    // client so live telemetry is certified while the jobs run.
    let mut daemon = spawn_daemon(&spool_s, &socket_s);
    wait_for("daemon socket", Duration::from_secs(30), || socket.exists());

    let mut submit1: Vec<String> =
        ["submit", "--socket", &socket_s].iter().map(ToString::to_string).collect();
    submit1.extend(job_flags(JOBS[0].0, JOBS[0].1));
    let out = Command::new(BIN).args(&submit1).output().expect("submit job 1");
    assert!(out.status.success(), "submit failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "job 1");

    let mut submit2: Vec<String> =
        ["submit", "--socket", &socket_s, "--watch"].iter().map(ToString::to_string).collect();
    submit2.extend(job_flags(JOBS[1].0, JOBS[1].1));
    let mut watcher = Command::new(BIN)
        .args(&submit2)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("submit job 2 with --watch");
    let watcher_out = watcher.stdout.take().unwrap();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(watcher_out).lines() {
            let Ok(line) = line else { return };
            if tx.send(line).is_err() {
                return;
            }
        }
    });
    assert_eq!(rx.recv_timeout(Duration::from_secs(30)).expect("submit ack"), "job 2");
    // Live telemetry: at least one event line must arrive while the job
    // runs (this is what "streamable while jobs are in flight" means).
    let event = rx.recv_timeout(Duration::from_secs(60)).expect("telemetry line");
    assert!(
        event.contains("\"job\":2") && event.contains("\"event\""),
        "unexpected telemetry line: {event}"
    );

    // Both jobs must be visible to `rfsp jobs`.
    let listing =
        Command::new(BIN).args(["jobs", "--socket", &socket_s]).output().expect("jobs listing");
    let listing = String::from_utf8_lossy(&listing.stdout).to_string();
    assert!(listing.contains("x"), "listing missing algo: {listing}");

    // Wait for the first durable checkpoint, then SIGKILL the daemon
    // mid-run — no goodbye, exactly what a crash looks like.
    let dirs = [spool.join("job-000001"), spool.join("job-000002")];
    wait_for("a job checkpoint", Duration::from_secs(60), || {
        dirs.iter().any(|d| d.join("ck.json").exists())
    });
    daemon.0.kill().expect("SIGKILL daemon");
    let _ = daemon.0.wait();
    let _ = watcher.kill();
    let _ = watcher.wait();
    for d in &dirs {
        assert!(
            !d.join("done.json").exists(),
            "{} finished before the kill — enlarge the instances",
            d.display()
        );
    }

    // Second daemon on the same spool: it must re-adopt both jobs (one
    // from its checkpoint, one possibly from scratch) and finish them.
    let mut daemon = spawn_daemon(&spool_s, &socket_s);
    wait_for("both jobs to complete", Duration::from_secs(300), || {
        dirs.iter().all(|d| d.join("done.json").exists())
    });
    for d in &dirs {
        let marker = std::fs::read_to_string(d.join("done.json")).unwrap();
        assert!(marker.contains("completed"), "{}: {marker}", d.display());
    }

    // The crash is invisible in the output: byte-identical streams.
    for (d, reference) in dirs.iter().zip(&references) {
        let got = std::fs::read(d.join("events.jsonl")).unwrap();
        assert!(
            got == *reference,
            "{}: resumed event stream diverges from the uninterrupted reference",
            d.display()
        );
    }

    // The restarted daemon reports them as completed, then shuts down
    // cleanly on request.
    let listing =
        Command::new(BIN).args(["jobs", "--socket", &socket_s]).output().expect("jobs listing");
    let listing = String::from_utf8_lossy(&listing.stdout).to_string();
    assert!(listing.contains("Completed"), "listing missing completions: {listing}");
    let status = Command::new(BIN)
        .args(["cancel", "--socket", &socket_s, "--shutdown"])
        .status()
        .expect("shutdown request");
    assert!(status.success());
    let start = Instant::now();
    loop {
        if let Some(status) = daemon.0.try_wait().unwrap() {
            assert!(status.success(), "daemon exited uncleanly: {status}");
            break;
        }
        assert!(start.elapsed() < Duration::from_secs(60), "daemon ignored shutdown");
        std::thread::sleep(Duration::from_millis(20));
    }

    if std::env::var("RFSP_DAEMON_SPOOL").is_err() {
        let _ = std::fs::remove_dir_all(&base);
    }
}
