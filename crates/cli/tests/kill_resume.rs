//! End-to-end crash test for the crash-safe runner: SIGKILL the real
//! `rfsp` binary mid-run, resume from its checkpoint file, and verify the
//! final event stream is byte-identical to an uninterrupted run.
//!
//! This is the one test that exercises the whole chain through a real
//! process boundary — atomic checkpoint rename, events-file truncation on
//! resume, adversary cursor rehydration, policy-engine state rehydration —
//! with an actual hard kill rather than an in-process simulation.

use std::process::Command;
use std::time::{Duration, Instant};

fn rfsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rfsp"))
}

/// Run `common` once for a baseline, once with checkpointing (`policy`)
/// SIGKILLed as soon as the first checkpoint lands, then `--resume`; the
/// final event stream must be byte-identical to the baseline.
fn kill_resume_case(tag: &str, common: &[&str], policy: &[&str]) {
    let dir = std::env::temp_dir().join(format!("rfsp-kill-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.jsonl");
    let events = dir.join("killed.jsonl");
    let ckpt = dir.join("ck.json");

    // Uninterrupted baseline.
    let st = rfsp().args(common).arg("--events").arg(&base).status().unwrap();
    assert!(st.success(), "baseline run failed");

    // Same configuration with checkpoints; SIGKILL the process as soon as
    // the first checkpoint lands on disk.
    let mut child = rfsp()
        .args(common)
        .arg("--events")
        .arg(&events)
        .arg("--checkpoint")
        .arg(&ckpt)
        .args(policy)
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut killed = false;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            // The run outraced us — it must at least have succeeded, and
            // the determinism comparison below still applies.
            assert!(status.success(), "checkpointed run failed outright");
            break;
        }
        if ckpt.exists() {
            child.kill().unwrap();
            child.wait().unwrap();
            killed = true;
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared within 60s");
        std::thread::sleep(Duration::from_millis(1));
    }

    if killed {
        // The checkpoint carries the full config: `--resume` alone must
        // truncate the torn events tail and regenerate it exactly.
        let out = rfsp().args(["experiment", "--resume"]).arg(&ckpt).output().unwrap();
        assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));
    }

    eprintln!("[{tag}] kill landed mid-run: {killed}");
    let baseline = std::fs::read(&base).unwrap();
    let after = std::fs::read(&events).unwrap();
    assert!(!baseline.is_empty());
    assert_eq!(
        baseline, after,
        "events after kill+resume differ from the uninterrupted run \
         (tag = {tag}, killed = {killed})"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigkill_mid_run_then_resume_reproduces_the_baseline() {
    kill_resume_case(
        "fixed",
        &[
            "experiment",
            "--run",
            "writeall",
            "--algo",
            "x",
            "--n",
            "1024",
            "--p",
            "4",
            "--threads",
            "2",
            "--adversary",
            "random",
            "--rate",
            "0.05",
            "--restart-rate",
            "0.5",
            "--seed",
            "1991",
        ],
        &["--every", "25"],
    );
}

#[test]
fn sigkill_adaptive_policy_run_then_resume_reproduces_the_baseline() {
    // The adaptive engine's first checkpoint lands around tick ~128
    // (geometric mean of the clamp range), so the instance must stay
    // busy well past that: a bursty adversary at a high rate keeps the
    // Write-All run alive for hundreds of ticks.
    kill_resume_case(
        "adaptive",
        &[
            "experiment",
            "--run",
            "writeall",
            "--algo",
            "x",
            "--n",
            "4096",
            "--p",
            "8",
            "--threads",
            "2",
            "--adversary",
            "bursty",
            "--rate",
            "0.7",
            "--restart-rate",
            "0.5",
            "--seed",
            "23",
        ],
        &["--policy", "adaptive"],
    );
}
