//! End-to-end crash test for the crash-safe runner: SIGKILL the real
//! `rfsp` binary mid-run, resume from its checkpoint file, and verify the
//! final event stream is byte-identical to an uninterrupted run.
//!
//! This is the one test that exercises the whole chain through a real
//! process boundary — atomic checkpoint rename, events-file truncation on
//! resume, adversary cursor rehydration — with an actual hard kill rather
//! than an in-process simulation.

use std::process::Command;
use std::time::{Duration, Instant};

fn rfsp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rfsp"))
}

#[test]
fn sigkill_mid_run_then_resume_reproduces_the_baseline() {
    let dir = std::env::temp_dir().join(format!("rfsp-kill-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.jsonl");
    let events = dir.join("killed.jsonl");
    let ckpt = dir.join("ck.json");

    let common: &[&str] = &[
        "experiment",
        "--run",
        "writeall",
        "--algo",
        "x",
        "--n",
        "1024",
        "--p",
        "4",
        "--threads",
        "2",
        "--adversary",
        "random",
        "--rate",
        "0.05",
        "--restart-rate",
        "0.5",
        "--seed",
        "1991",
    ];

    // Uninterrupted baseline.
    let st = rfsp().args(common).arg("--events").arg(&base).status().unwrap();
    assert!(st.success(), "baseline run failed");

    // Same configuration, checkpoint every 25 ticks; SIGKILL the process
    // as soon as the first checkpoint lands on disk.
    let mut child = rfsp()
        .args(common)
        .arg("--events")
        .arg(&events)
        .arg("--checkpoint")
        .arg(&ckpt)
        .args(["--every", "25"])
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut killed = false;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            // The run outraced us — it must at least have succeeded, and
            // the determinism comparison below still applies.
            assert!(status.success(), "checkpointed run failed outright");
            break;
        }
        if ckpt.exists() {
            child.kill().unwrap();
            child.wait().unwrap();
            killed = true;
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared within 60s");
        std::thread::sleep(Duration::from_millis(1));
    }

    if killed {
        // The checkpoint carries the full config: `--resume` alone must
        // truncate the torn events tail and regenerate it exactly.
        let out = rfsp().args(["experiment", "--resume"]).arg(&ckpt).output().unwrap();
        assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));
    }

    eprintln!("kill landed mid-run: {killed}");
    let baseline = std::fs::read(&base).unwrap();
    let after = std::fs::read(&events).unwrap();
    assert!(!baseline.is_empty());
    assert_eq!(
        baseline, after,
        "events after kill+resume differ from the uninterrupted run (killed = {killed})"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
