//! Versioned machine checkpoints for crash-safe long runs.
//!
//! A [`Checkpoint`] captures everything a paused [`Machine`](crate::Machine)
//! needs to resume bit-for-bit: shared memory (cells plus instrumentation
//! counters), every processor's status and private state, the accumulated
//! [`WorkStats`], the failure pattern recorded so far, and the adversary's
//! own state (via [`Adversary::save_state`](crate::Adversary::save_state)).
//! Checkpoints are taken only at **tick boundaries** — between the commit
//! phase of one tick and the tentative phase of the next — where the
//! machine has no transient state, so a restored run replays the exact
//! event stream the uninterrupted run would have produced (see
//! `crates/pram/tests/checkpoint.rs` for the property test).
//!
//! Serialization goes through the in-tree serde shim's JSON renderer; the
//! format is versioned ([`CHECKPOINT_VERSION`]) and restore rejects
//! mismatched versions, machine shapes, budgets and write modes with
//! [`PramError::Checkpoint`](crate::PramError::Checkpoint) instead of
//! resuming nondeterministically.

use serde::{json, Deserialize, Serialize, Value};

use crate::accounting::WorkStats;
use crate::adversary::ProcStatus;
use crate::error::PramError;
use crate::failure::FailurePattern;
use crate::memory::MemoryLayout;
use crate::mode::WriteMode;
use crate::word::Word;

/// Format version written into every checkpoint. Bump on any breaking
/// layout change; restore refuses other versions.
///
/// Version history: v1 — word machine only; v2 — adds the [`model`]
/// tag (`Checkpoint::model`) so checkpoints from the word and snapshot
/// machines cannot be restored into each other; v3 — records the
/// [`MemoryLayout`] and replaces the two global read/write counters with
/// per-bank counter vectors (restore refuses cross-layout resumes); v4 —
/// adds the `policy` field carrying the checkpoint/restart
/// [`PolicyEngine`](crate::policy::PolicyEngine) state, so a resumed run
/// continues the same policy trajectory (and a cross-policy resume is
/// refused by the engine's own restore).
pub const CHECKPOINT_VERSION: u32 = 4;

/// One processor's checkpointed state.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ProcCheckpoint {
    /// Liveness at the checkpointed tick boundary.
    pub status: ProcStatus,
    /// Completed update cycles charged to this processor.
    pub completed: u64,
    /// Serialized private state. Meaningful only while the processor is
    /// alive or halted; a failed processor has no private memory (by the
    /// model) and stores [`Value::Null`] here. A plain [`Value`] rather
    /// than an `Option` because JSON cannot distinguish `Some(Null)` — a
    /// unit private state — from `None`.
    pub state: Value,
}

/// A complete, versioned snapshot of a paused machine plus its adversary.
///
/// Produced by [`Machine::save_checkpoint`](crate::Machine::save_checkpoint)
/// and consumed by
/// [`Machine::restore_checkpoint`](crate::Machine::restore_checkpoint).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Name of the [`ExecutionModel`](crate::ExecutionModel) the checkpoint
    /// was taken under (`"word"` or `"snapshot"`); restore refuses a
    /// checkpoint from a different model.
    pub model: String,
    /// The tick at which the machine paused (the next tick to execute).
    pub cycle: u64,
    /// Concurrent-write semantics the run was using.
    pub mode: WriteMode,
    /// Read half of the cycle budget.
    pub budget_reads: usize,
    /// Write half of the cycle budget.
    pub budget_writes: usize,
    /// Physical memory layout of the run. Restore refuses a checkpoint
    /// taken under a different layout: the per-bank counters below are
    /// meaningless under any other bank mapping.
    pub layout: MemoryLayout,
    /// Shared-memory cells — always the merged, address-ordered image,
    /// whatever the physical layout.
    pub mem: Vec<Word>,
    /// Charged read count per bank at the pause point (one entry for the
    /// flat layout).
    pub bank_reads: Vec<u64>,
    /// Charged (committed) write count per bank at the pause point.
    pub bank_writes: Vec<u64>,
    /// Accumulated work statistics.
    pub stats: WorkStats,
    /// Per-processor status and private state, indexed by PID.
    pub procs: Vec<ProcCheckpoint>,
    /// The failure pattern recorded so far.
    pub pattern: FailurePattern,
    /// The adversary's state, from
    /// [`Adversary::save_state`](crate::Adversary::save_state).
    pub adversary: Value,
    /// Checkpoint/restart policy state, from
    /// [`PolicyEngine::save_state`](crate::policy::PolicyEngine::save_state).
    /// [`Value::Null`] for runs driven without a policy engine. Opaque to
    /// the core's restore path — the machine resumes identically whatever
    /// policy chose the checkpoint's tick — but a policy-driven runner
    /// must hand it back to its engine, whose restore refuses state from
    /// a different policy.
    pub policy: Value,
}

impl Checkpoint {
    /// Render as pretty-printed JSON (the on-disk checkpoint format).
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }

    /// Parse a checkpoint previously rendered by [`Checkpoint::to_json`].
    ///
    /// This only checks that the text decodes into the checkpoint shape;
    /// [`Machine::restore_checkpoint`](crate::Machine::restore_checkpoint)
    /// performs the semantic validation (version, machine shape, pattern
    /// legality).
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] on malformed JSON or a non-checkpoint
    /// shape.
    pub fn from_json(text: &str) -> Result<Self, PramError> {
        json::from_str(text)
            .map_err(|e| PramError::Checkpoint { detail: format!("unreadable checkpoint: {e}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            model: "word".to_string(),
            cycle: 17,
            mode: WriteMode::Common,
            budget_reads: 4,
            budget_writes: 2,
            layout: MemoryLayout::Banked { banks: 2, interleave: 1 },
            mem: vec![0, 1, 2, 3],
            bank_reads: vec![5, 4],
            bank_writes: vec![2, 3],
            stats: WorkStats { completed_cycles: 12, parallel_time: 17, ..Default::default() },
            procs: vec![
                ProcCheckpoint { status: ProcStatus::Alive, completed: 12, state: Value::UInt(3) },
                ProcCheckpoint { status: ProcStatus::Failed, completed: 0, state: Value::Null },
            ],
            pattern: FailurePattern::new(),
            adversary: Value::Null,
            policy: Value::Null,
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let ck = sample();
        let text = ck.to_json();
        let back = Checkpoint::from_json(&text).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn malformed_json_is_a_checkpoint_error() {
        let err = Checkpoint::from_json("{not json").unwrap_err();
        assert!(matches!(err, PramError::Checkpoint { .. }), "{err:?}");
    }
}
