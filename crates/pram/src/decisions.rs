//! Shared adversary-decision validation for both machine models.
//!
//! The word-model [`Machine`](crate::Machine) and the
//! [`SnapshotMachine`](crate::SnapshotMachine) accept the same kinds of
//! adversary decisions and must reject the same illegal ones: failing a
//! processor that does not exist or is already stopped, restarting a live
//! processor, placing a fail point after more writes than the cycle has,
//! and schedules that violate the paper's progress condition (§2.1 2(i):
//! every tick with activity must complete at least one update cycle). This
//! module holds that validation once; [`Core::apply`](crate::exec::Core)
//! calls [`resolve`] to turn a [`Decisions`] into per-processor
//! [`CycleFate`]s or a [`PramError::InvalidAdversaryDecision`] /
//! [`PramError::AdversaryStall`] / [`PramError::Deadlock`].

use crate::adversary::{Decisions, FailPoint, ProcStatus, TentativeCycle};
use crate::error::PramError;
use crate::Result;

/// Outcome of one processor's cycle after the adversary's decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CycleFate {
    /// Not active this tick (failed or halted at tick start).
    Idle,
    /// Completed the whole cycle (possibly failed *after* it completed).
    Completed,
    /// Stopped before its reads: the processor executed nothing this tick,
    /// so nothing is charged — not even partial work.
    InterruptedBeforeReads,
    /// Stopped after its reads and local computation, with this many of its
    /// writes committed (possibly zero: stopped before the first write).
    Interrupted { committed_writes: usize },
}

/// Validate `decisions` against this tick's machine state and fill the
/// per-processor outcome buffers:
///
/// * `fates[i]` — every processor's [`CycleFate`];
/// * `failed_now[i]` / `fail_points[i]` — which processors the adversary
///   stopped this tick, and where;
/// * `restarted[i]` — which processors restart (effective next tick).
///
/// `status` reports each processor's liveness *at the start of the tick*
/// (decisions are validated against pre-tick state). The buffers must all
/// have one entry per processor; they are fully overwritten.
///
/// # Errors
///
/// [`PramError::InvalidAdversaryDecision`] on an illegal failure or restart,
/// [`PramError::AdversaryStall`] when an active tick completes no cycle (or
/// everyone is failed with no restart), [`PramError::Deadlock`] when every
/// processor halted voluntarily but the program is incomplete.
// The argument list is the tick's full per-processor outcome surface —
// bundling the four parallel buffers into a struct would just rename it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve(
    cycle: u64,
    decisions: &Decisions,
    status: impl Fn(usize) -> ProcStatus,
    tentative: &[Option<TentativeCycle>],
    fates: &mut [CycleFate],
    failed_now: &mut [bool],
    fail_points: &mut [Option<FailPoint>],
    restarted: &mut [bool],
) -> Result<()> {
    let p = tentative.len();
    // --- Initialize each processor's fate (branch-free: a select on
    // "has a tentative cycle", so the P-length sweep autovectorizes). ---
    for (fate, t) in fates.iter_mut().zip(tentative) {
        *fate = [CycleFate::Idle, CycleFate::Completed][usize::from(t.is_some())];
    }
    failed_now.fill(false);
    fail_points.fill(None);
    for &(pid, point) in &decisions.fails {
        if pid.0 >= p {
            return Err(PramError::InvalidAdversaryDecision {
                cycle,
                detail: format!("fail of unknown processor {pid}"),
            });
        }
        if failed_now[pid.0] {
            return Err(PramError::InvalidAdversaryDecision {
                cycle,
                detail: format!("duplicate failure of {pid}"),
            });
        }
        match status(pid.0) {
            ProcStatus::Failed => {
                return Err(PramError::InvalidAdversaryDecision {
                    cycle,
                    detail: format!("failure of already failed {pid}"),
                });
            }
            ProcStatus::Halted => {
                // No cycle in flight; the processor simply stops.
                failed_now[pid.0] = true;
                fail_points[pid.0] = Some(point);
                fates[pid.0] = CycleFate::Idle;
            }
            ProcStatus::Alive => {
                let t = tentative[pid.0].as_ref().expect("alive processor has a tentative cycle");
                let committed = match point {
                    FailPoint::BeforeReads | FailPoint::BeforeWrites => 0,
                    FailPoint::AfterWrite(k) => {
                        if k == 0 || k > t.writes.len() {
                            return Err(PramError::InvalidAdversaryDecision {
                                cycle,
                                detail: format!(
                                    "{pid} failed after write {k} but the cycle has {} writes",
                                    t.writes.len()
                                ),
                            });
                        }
                        k
                    }
                };
                failed_now[pid.0] = true;
                fail_points[pid.0] = Some(point);
                fates[pid.0] = match point {
                    // The processor never got to its reads: the whole cycle
                    // is a no-op and charges nothing.
                    FailPoint::BeforeReads => CycleFate::InterruptedBeforeReads,
                    // Failing after the final write means the cycle
                    // completed (and is charged) before the processor
                    // stopped.
                    FailPoint::AfterWrite(_) if committed == t.writes.len() => CycleFate::Completed,
                    _ => CycleFate::Interrupted { committed_writes: committed },
                };
            }
        }
    }
    // --- Validate restarts. ---
    restarted.fill(false);
    for &pid in &decisions.restarts {
        if pid.0 >= p {
            return Err(PramError::InvalidAdversaryDecision {
                cycle,
                detail: format!("restart of unknown processor {pid}"),
            });
        }
        if restarted[pid.0] {
            return Err(PramError::InvalidAdversaryDecision {
                cycle,
                detail: format!("duplicate restart of {pid}"),
            });
        }
        let failed = status(pid.0) == ProcStatus::Failed || failed_now[pid.0];
        if !failed {
            return Err(PramError::InvalidAdversaryDecision {
                cycle,
                detail: format!("restart of non-failed {pid}"),
            });
        }
        restarted[pid.0] = true;
    }

    // --- Progress condition (§2.1 2(i)). One fused branch-free sweep
    // computes both counts instead of two short-circuiting passes. ---
    let (mut active, mut completing) = (0usize, 0usize);
    for (t, &fate) in tentative.iter().zip(fates.iter()) {
        let has_cycle = t.is_some();
        active += usize::from(has_cycle);
        completing += usize::from(has_cycle && fate == CycleFate::Completed);
    }
    let any_active = active != 0;
    if any_active && completing == 0 {
        return Err(PramError::AdversaryStall { cycle });
    }
    if !any_active {
        let any_failed = (0..p).any(|i| status(i) == ProcStatus::Failed);
        let any_restart = !decisions.restarts.is_empty();
        if any_failed && !any_restart {
            return Err(PramError::AdversaryStall { cycle });
        }
        if !any_failed {
            // Everyone halted voluntarily but the program is incomplete.
            return Err(PramError::Deadlock { cycle });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Pid;

    /// One alive processor with a single pending write.
    fn one_writer() -> Vec<Option<TentativeCycle>> {
        let mut t = TentativeCycle::default();
        t.writes.push(0, 1);
        vec![Some(t)]
    }

    fn buffers(p: usize) -> (Vec<CycleFate>, Vec<bool>, Vec<Option<FailPoint>>, Vec<bool>) {
        (vec![CycleFate::Idle; p], vec![false; p], vec![None; p], vec![false; p])
    }

    fn run(
        decisions: &Decisions,
        tentative: &[Option<TentativeCycle>],
        status: impl Fn(usize) -> ProcStatus,
    ) -> Result<Vec<CycleFate>> {
        let (mut fates, mut failed_now, mut fail_points, mut restarted) = buffers(tentative.len());
        resolve(
            7,
            decisions,
            status,
            tentative,
            &mut fates,
            &mut failed_now,
            &mut fail_points,
            &mut restarted,
        )?;
        Ok(fates)
    }

    /// A fail point after more writes than the cycle performed (including
    /// the degenerate `AfterWrite(0)`) is rejected: the adversary cannot
    /// "kill after a commit" that never happened.
    #[test]
    fn kill_after_commit_beyond_cycle_is_rejected() {
        // Two alive processors so the survivor satisfies progress.
        let mut tentative = one_writer();
        tentative.push(one_writer().pop().unwrap());
        let mut d = Decisions::none();
        d.fail(Pid(0), FailPoint::AfterWrite(2));
        let err = run(&d, &tentative, |_| ProcStatus::Alive).unwrap_err();
        assert!(
            matches!(&err, PramError::InvalidAdversaryDecision { cycle: 7, detail }
                if detail.contains("after write 2") && detail.contains("1 writes")),
            "{err:?}"
        );

        let mut d = Decisions::none();
        d.fail(Pid(0), FailPoint::AfterWrite(0));
        let err = run(&d, &tentative, |_| ProcStatus::Alive).unwrap_err();
        assert!(matches!(err, PramError::InvalidAdversaryDecision { .. }), "{err:?}");
    }

    /// Killing exactly after the final write is legal — and the cycle
    /// counts as completed.
    #[test]
    fn kill_after_final_write_completes_the_cycle() {
        let mut tentative = one_writer();
        tentative.push(one_writer().pop().unwrap());
        let mut d = Decisions::none();
        d.fail(Pid(0), FailPoint::AfterWrite(1));
        let fates = run(&d, &tentative, |_| ProcStatus::Alive).unwrap();
        assert_eq!(fates[0], CycleFate::Completed);
    }

    #[test]
    fn restart_of_live_processor_is_rejected() {
        let tentative = one_writer();
        let mut d = Decisions::none();
        d.restart(Pid(0));
        let err = run(&d, &tentative, |_| ProcStatus::Alive).unwrap_err();
        assert!(
            matches!(&err, PramError::InvalidAdversaryDecision { detail, .. }
                if detail.contains("restart of non-failed")),
            "{err:?}"
        );
    }

    /// Restarting a processor failed *this very tick* is legal.
    #[test]
    fn restart_of_just_failed_processor_is_accepted() {
        let mut tentative = one_writer();
        tentative.push(one_writer().pop().unwrap());
        let mut d = Decisions::none();
        d.fail(Pid(0), FailPoint::BeforeWrites).restart(Pid(0));
        let fates = run(&d, &tentative, |_| ProcStatus::Alive).unwrap();
        assert_eq!(fates[0], CycleFate::Interrupted { committed_writes: 0 });
    }

    /// Failing every active processor completes no cycle — the stall the
    /// progress condition forbids.
    #[test]
    fn stalling_decisions_are_rejected() {
        let mut tentative = one_writer();
        tentative.push(one_writer().pop().unwrap());
        let mut d = Decisions::none();
        d.fail(Pid(0), FailPoint::BeforeWrites).fail(Pid(1), FailPoint::BeforeReads);
        let err = run(&d, &tentative, |_| ProcStatus::Alive).unwrap_err();
        assert_eq!(err, PramError::AdversaryStall { cycle: 7 });
    }

    /// An all-failed machine with no restart is also a stall; with every
    /// processor voluntarily halted it is a deadlock instead.
    #[test]
    fn idle_machine_distinguishes_stall_from_deadlock() {
        let tentative: Vec<Option<TentativeCycle>> = vec![None, None];
        let err = run(&Decisions::none(), &tentative, |_| ProcStatus::Failed).unwrap_err();
        assert_eq!(err, PramError::AdversaryStall { cycle: 7 });
        let err = run(&Decisions::none(), &tentative, |_| ProcStatus::Halted).unwrap_err();
        assert_eq!(err, PramError::Deadlock { cycle: 7 });
    }

    #[test]
    fn duplicate_and_unknown_targets_are_rejected() {
        let tentative = one_writer();
        let mut d = Decisions::none();
        d.fail(Pid(3), FailPoint::BeforeWrites);
        let err = run(&d, &tentative, |_| ProcStatus::Alive).unwrap_err();
        assert!(
            matches!(&err, PramError::InvalidAdversaryDecision { detail, .. }
                if detail.contains("unknown processor")),
            "{err:?}"
        );

        let mut d = Decisions::none();
        d.fail(Pid(0), FailPoint::BeforeWrites).fail(Pid(0), FailPoint::BeforeReads);
        let err = run(&d, &tentative, |_| ProcStatus::Alive).unwrap_err();
        assert!(
            matches!(&err, PramError::InvalidAdversaryDecision { detail, .. }
                if detail.contains("duplicate failure")),
            "{err:?}"
        );
    }
}
