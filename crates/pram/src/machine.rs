//! The word-model restartable fail-stop machine executor.
//!
//! Each tick the machine plays one update cycle for every alive processor:
//!
//! 1. **Tentative phase** — every alive processor plans its reads, reads the
//!    memory state from the start of the tick (synchronous PRAM: nobody sees
//!    this tick's writes), and computes its writes by advancing its private
//!    state in place.
//! 2. **Adversary phase** — the on-line adversary inspects the whole machine
//!    (including every tentative cycle) and stops/restarts processors.
//! 3. **Commit phase** — surviving write prefixes are merged slot by slot
//!    under the machine's CRCW [`WriteMode`]; processors that completed
//!    their cycle are charged; stopped processors lose their private state.
//!
//! Restarts take effect at the start of the following tick, and the
//! model's progress condition (§2.1 2(i)) is enforced: every tick with any
//! activity must include at least one completed update cycle.
//!
//! Since PR 5 the phase structure itself — run loop, adversary validation,
//! commit merging, accounting, observers, checkpoints — lives in the
//! model-generic [`Core`](crate::exec::Core) (see [`crate::exec`]), shared
//! with the snapshot machine. This module contributes the *word model*:
//! the charged read phase with its plan chain ([`tentative_for`]), the
//! [`CycleBudget`] enforcement, and the pooled/panic-isolated backends.
//! The pooled backend farms the **whole tick** out to a persistent
//! [`TickPool`] of workers: the tentative phase, the three-pass parallel
//! commit (`Core::apply_pooled`) and the sharded completion-index rebuild
//! (`Core::init_tracker_pooled`) all run on the same pool, with
//! rank-ordered merges keeping every observable byte identical to the
//! sequential engine.
//!
//! The engine remains built so a **steady-state tick performs no heap
//! allocation and no thread spawn**: all per-tick buffers live in the core
//! and are reused; the threaded backend parks its worker pool for the whole
//! run; and programs that implement [`Program::completion_hint`] replace
//! the per-tick O(memory) completion scan with an O(1) emptiness test on
//! the incremental unvisited index.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use crate::accounting::RunReport;
use crate::adversary::{Adversary, Decisions, ProcStatus, TentativeCycle};
use crate::checkpoint::Checkpoint;
use crate::cycle::{CycleBudget, ReadSet, Step, MAX_READS, MAX_WRITES};
use crate::error::{BudgetKind, PramError};
use crate::exec::{Backend, Core, ExecutionModel, SeqBackend};
use crate::memory::{MemoryLayout, SharedMemory};
use crate::mode::WriteMode;
use crate::pool::{panic_detail, PoolShutdown, SendPtr, TickPool, CLASS_TENTATIVE};
use crate::trace::{NoopObserver, Observer};
use crate::word::{Pid, Word};
use crate::{CompletionHint, Program, Result};

pub use crate::exec::{PanicPolicy, RunControl, RunLimits, RunStatus};

/// The word model's [`ExecutionModel`]: a charged, budgeted read phase
/// (the plan chain) followed by a budgeted write phase.
#[derive(Debug)]
struct WordModel<'p, P: Program> {
    program: &'p P,
    budget: CycleBudget,
}

impl<'p, P: Program> ExecutionModel for WordModel<'p, P> {
    type Private = P::Private;

    const MODEL: &'static str = "word";
    // The word adversary's view predates the unvisited index and stays
    // stable: `MachineView::unvisited` is always `None` here.
    const ADVERSARY_SEES_INDEX: bool = false;

    fn on_start(&self, pid: Pid) -> P::Private {
        self.program.on_start(pid)
    }

    fn is_complete(&self, mem: &SharedMemory) -> bool {
        self.program.is_complete(mem)
    }

    fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint {
        self.program.completion_hint(addr, value)
    }

    fn completion_masks(&self, base: usize, values: &[Word]) -> (u64, u64) {
        self.program.completion_masks(base, values)
    }

    fn tentative(&self, core: &mut Core<P::Private>) -> Result<()> {
        let (mem, cycle) = (&core.mem, core.cycle);
        let statuses = &core.procs.status;
        for (i, (state, out)) in
            core.procs.state.iter_mut().zip(core.tentative.iter_mut()).enumerate()
        {
            tentative_for(self.program, mem, self.budget, cycle, Pid(i), statuses[i], state, out)?;
        }
        Ok(())
    }

    fn partial_instructions(t: &TentativeCycle, committed_writes: usize) -> u64 {
        // Reads and the local computation ran, plus the prefix of writes
        // that committed.
        (t.reads.len() + 1 + committed_writes) as u64
    }

    fn checkpoint_budget(&self) -> (usize, usize) {
        (self.budget.reads, self.budget.writes)
    }
}

/// A restartable fail-stop CRCW PRAM running one [`Program`].
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Machine<'p, P: Program> {
    model: WordModel<'p, P>,
    core: Core<P::Private>,
}

impl<'p, P: Program> Machine<'p, P> {
    /// Build a machine with `processors` processors for `program`.
    ///
    /// Shared memory is allocated per [`Program::shared_size`] and
    /// initialized via [`Program::init_memory`]; every processor starts
    /// alive in its [`Program::on_start`] state.
    ///
    /// # Errors
    ///
    /// [`PramError::InvalidConfig`] if `processors == 0` or `budget` does
    /// not fit the inline cycle buffers
    /// ([`CycleBudget::fits_inline`]).
    pub fn new(program: &'p P, processors: usize, budget: CycleBudget) -> Result<Self> {
        Self::with_layout(program, processors, budget, MemoryLayout::Flat)
    }

    /// [`Machine::new`] with an explicit [`MemoryLayout`]. The layout is a
    /// physical property only — addresses, CRCW semantics and results are
    /// identical to the flat machine — but reads and writes are charged to
    /// per-bank counters and the Omega network meter (`rfsp-net`) routes
    /// packets to the cells' actual banks.
    ///
    /// # Errors
    ///
    /// As [`Machine::new`], plus [`PramError::InvalidConfig`] for invalid
    /// layout parameters ([`MemoryLayout::validate`]).
    pub fn with_layout(
        program: &'p P,
        processors: usize,
        budget: CycleBudget,
        layout: MemoryLayout,
    ) -> Result<Self> {
        if processors == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one processor".into() });
        }
        if !budget.fits_inline() {
            return Err(PramError::InvalidConfig {
                detail: format!(
                    "cycle budget ({} reads / {} writes) exceeds the inline capacities \
                     ({MAX_READS} reads / {MAX_WRITES} writes)",
                    budget.reads, budget.writes
                ),
            });
        }
        let mut mem = SharedMemory::with_layout(program.shared_size(), layout)?;
        program.init_memory(&mut mem);
        let model = WordModel { program, budget };
        let core = Core::new(&model, processors, mem, WriteMode::Common, budget.writes);
        Ok(Machine { model, core })
    }

    /// Set the concurrent-write semantics (default: COMMON).
    pub fn set_write_mode(&mut self, mode: WriteMode) -> &mut Self {
        self.core.mode = mode;
        self
    }

    /// Override the batched-kernel lane width (default:
    /// [`DEFAULT_BATCH_WIDTH`](crate::DEFAULT_BATCH_WIDTH)). `1` selects
    /// the scalar reference kernels; any other value selects the lane-mask
    /// batched kernels and sets the pooled engine's chunk alignment.
    /// Behavior is identical for every width — only the instruction stream
    /// and chunk boundaries differ (pinned by the batched-vs-scalar
    /// differential proptests); exposed for testing and benchmarking via
    /// `writeall --batch-width`.
    pub fn set_batch_width(&mut self, width: usize) -> &mut Self {
        self.core.batch_width = width.max(1);
        self
    }

    /// The shared memory (uncharged inspection).
    pub fn memory(&self) -> &SharedMemory {
        &self.core.mem
    }

    /// Mutable shared memory, for test setup between runs.
    pub fn memory_mut(&mut self) -> &mut SharedMemory {
        // Direct pokes bypass the completion tracker; drop it so the next
        // run reclassifies every cell.
        self.core.tracked = false;
        &mut self.core.mem
    }

    /// Number of processors `P`.
    pub fn processors(&self) -> usize {
        self.core.procs.len()
    }

    /// Current tick.
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// Accumulated work statistics.
    pub fn stats(&self) -> &crate::accounting::WorkStats {
        &self.core.stats
    }

    /// Status of processor `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn proc_status(&self, pid: Pid) -> ProcStatus {
        self.core.procs.status[pid.0]
    }

    /// Run to completion under `adversary` with default [`RunLimits`].
    ///
    /// # Errors
    ///
    /// See [`PramError`]; in particular [`PramError::CycleLimit`] if the
    /// default limit is exhausted.
    pub fn run<A: Adversary>(&mut self, adversary: &mut A) -> Result<RunReport> {
        self.run_with_limits(adversary, RunLimits::default())
    }

    /// Run to completion under `adversary` with explicit limits.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_with_limits<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
    ) -> Result<RunReport> {
        self.run_observed(adversary, limits, &mut NoopObserver)
    }

    /// Like [`Machine::run_with_limits`], streaming every machine event —
    /// cycle completions, failures, restarts, committed writes — to
    /// `observer` (see [`crate::trace`]).
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_observed<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
    ) -> Result<RunReport> {
        let Machine { model, core } = self;
        core.run_to_completion(model, adversary, limits, observer, &mut SeqBackend)
    }

    /// Run under `adversary` until completion **or** until `control`
    /// requests a pause at a tick boundary (e.g. "every K ticks" for
    /// periodic checkpoints, or "when the SIGINT flag is set").
    ///
    /// The callback receives the tick about to execute. On
    /// [`RunStatus::Paused`] the machine holds no transient state: save a
    /// [`Checkpoint`] with [`Machine::save_checkpoint`], or simply call a
    /// run method again to continue. A resumed run picks up exactly where
    /// the pause left off; note the callback is consulted again with the
    /// same tick number, so a "pause at tick k" predicate must be rearmed
    /// by the caller before resuming.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_controlled<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
        control: impl FnMut(u64) -> RunControl,
    ) -> Result<RunStatus> {
        let Machine { model, core } = self;
        core.run_loop(model, adversary, limits, observer, &mut SeqBackend, control)
    }

    /// Execute exactly one tick under `adversary`. Exposed for fine-grained
    /// tests and lock-step experiment drivers.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn tick<A: Adversary>(&mut self, adversary: &mut A) -> Result<()> {
        self.tick_observed(adversary, &mut NoopObserver)
    }

    /// [`Machine::tick`] with an event stream.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn tick_observed<A: Adversary>(
        &mut self,
        adversary: &mut A,
        observer: &mut dyn Observer,
    ) -> Result<()> {
        self.core.tick_observed(&self.model, adversary, observer)
    }
}

impl<'p, P> Machine<'p, P>
where
    P: Program,
    P::Private: Serialize + Deserialize,
{
    /// Snapshot the machine (and `adversary`) at the current tick boundary
    /// into a versioned [`Checkpoint`].
    ///
    /// Call only between run calls — e.g. after
    /// [`Machine::run_controlled`] returned [`RunStatus::Paused`] — so the
    /// machine holds no transient tick state. Restoring the checkpoint
    /// into a freshly built machine of the same program, size, budget and
    /// write mode (plus a freshly built adversary of the same kind and
    /// configuration) resumes the run bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] if the adversary is not checkpointable
    /// ([`Adversary::save_state`] returned `None`).
    pub fn save_checkpoint<A: Adversary>(&self, adversary: &A) -> Result<Checkpoint> {
        self.core.save_checkpoint(&self.model, adversary)
    }

    /// Load `ck` into this machine and `adversary`, resuming the
    /// checkpointed run at its tick boundary.
    ///
    /// The machine must be built for the same program shape the checkpoint
    /// was taken from: same model, memory size, processor count, cycle
    /// budget and write mode. Everything is validated **before** anything
    /// is mutated, so a failed restore leaves machine and adversary
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] on a version, model or shape mismatch, an
    /// undecodable private state, an illegal recorded failure pattern, or
    /// an adversary that refuses the saved state.
    pub fn restore_checkpoint<A: Adversary>(
        &mut self,
        ck: &Checkpoint,
        adversary: &mut A,
    ) -> Result<()> {
        self.core.restore_checkpoint(&self.model, ck, adversary)
    }
}

/// Tentatively play one update cycle for processor `pid` against `mem`.
///
/// Sets `*out` to `None` if the processor is not alive; otherwise refills
/// the slot's [`TentativeCycle`] buffers in place (no allocation — every
/// buffer is inline, see [`crate::cycle`]).
///
/// The private state is advanced **in place**: the pre-cycle state is never
/// needed afterwards, because the commit phase either adopts the post-cycle
/// state (cycle completed) or discards the state entirely (the adversary
/// stopped the processor, and a stopped processor loses its private memory —
/// the model has no partial-progress private state).
#[allow(clippy::too_many_arguments)] // the split-borrowed SoA fields arrive separately by design
#[inline]
fn tentative_for<P: Program>(
    program: &P,
    mem: &SharedMemory,
    budget: CycleBudget,
    cycle: u64,
    pid: Pid,
    status: ProcStatus,
    state: &mut Option<P::Private>,
    out: &mut Option<TentativeCycle>,
) -> Result<()> {
    if status != ProcStatus::Alive {
        *out = None;
        return Ok(());
    }
    let state = state.as_mut().expect("alive processor must have private state");
    let t = out.get_or_insert_with(TentativeCycle::default);
    t.reads.clear();
    t.values.clear();
    t.writes.clear();
    t.halts = false;
    // Drive the plan chain: reads within a cycle may depend on values read
    // earlier in the same cycle (ordinary sequential instructions).
    loop {
        let mut batch = ReadSet::default();
        program.plan(pid, state, &t.values, &mut batch);
        if batch.is_empty() {
            break;
        }
        if t.reads.len() + batch.len() > budget.reads {
            return Err(PramError::BudgetExceeded {
                pid,
                cycle,
                kind: BudgetKind::Reads,
                used: t.reads.len() + batch.len(),
                limit: budget.reads,
            });
        }
        for &addr in batch.addrs() {
            if addr >= mem.size() {
                return Err(PramError::AddressOutOfBounds { addr, size: mem.size() });
            }
            t.values.push(mem.peek(addr));
            t.reads.push(addr);
        }
    }
    let step = program.execute(pid, state, &t.values, &mut t.writes);
    if t.writes.len() > budget.writes {
        return Err(PramError::BudgetExceeded {
            pid,
            cycle,
            kind: BudgetKind::Writes,
            used: t.writes.len(),
            limit: budget.writes,
        });
    }
    for &(addr, _) in t.writes.writes() {
        if addr >= mem.size() {
            return Err(PramError::AddressOutOfBounds { addr, size: mem.size() });
        }
    }
    t.halts = matches!(step, Step::Halt);
    Ok(())
}

/// [`WordModel::tentative`] with per-processor panic isolation: a panic in
/// program code surfaces as [`PramError::WorkerPanic`] naming the
/// processor, instead of unwinding through the run loop. Used by the
/// degraded path of [`Machine::run_threaded_isolated`].
fn tentative_caught<P: Program>(
    program: &P,
    budget: CycleBudget,
    core: &mut Core<P::Private>,
) -> Result<()> {
    let (mem, cycle) = (&core.mem, core.cycle);
    let statuses = &core.procs.status;
    for (i, (state, out)) in core.procs.state.iter_mut().zip(core.tentative.iter_mut()).enumerate()
    {
        catch_unwind(AssertUnwindSafe(|| {
            tentative_for(program, mem, budget, cycle, Pid(i), statuses[i], state, out)
        }))
        .unwrap_or_else(|payload| {
            Err(PramError::WorkerPanic {
                pid: Some(Pid(i)),
                detail: panic_detail(payload.as_ref()),
            })
        })?;
    }
    Ok(())
}

/// Parallel tentative phase: pool workers claim chunks of the processor
/// range from the shared cursor and fill the corresponding tentative slots.
/// With the structure-of-arrays processor state only the private states
/// need a raw [`SendPtr`]: statuses are read-only during the tentative
/// phase and are shared as a plain slice.
fn tentative_pooled<P>(
    program: &P,
    budget: CycleBudget,
    core: &mut Core<P::Private>,
    pool: &TickPool,
) -> Result<()>
where
    P: Program + Sync,
    P::Private: Send,
{
    let p = core.procs.len();
    // Align worker chunks to the batch width (× bank interleave on banked
    // layouts): whole lanes per worker, no lane split across banks.
    let align = core.chunk_align();
    let (mem, cycle) = (&core.mem, core.cycle);
    let statuses: &[ProcStatus] = &core.procs.status;
    let states = SendPtr::new(core.procs.state.as_mut_ptr());
    let tentative = SendPtr::new(core.tentative.as_mut_ptr());
    pool.run_tick(CLASS_TENTATIVE, p, align, &move |start: usize, end: usize| {
        #[allow(clippy::needless_range_loop)] // `i` also offsets the raw SoA pointers
        for i in start..end {
            // SAFETY: the pool's cursor hands out disjoint [start, end)
            // chunks within 0..p, so slot `i` is touched by exactly one
            // worker this tick; `run_tick` blocks until every worker is
            // done, so the pointers outlive all dereferences.
            let state = unsafe { &mut *states.ptr().add(i) };
            let out = unsafe { &mut *tentative.ptr().add(i) };
            tentative_for(program, mem, budget, cycle, Pid(i), statuses[i], state, out)?;
        }
        Ok(())
    })
}

/// [`tentative_pooled`] with per-processor panic isolation: each
/// processor's cycle runs under `catch_unwind`, so a panicking program
/// surfaces as [`PramError::WorkerPanic`] naming the processor.
fn tentative_pooled_isolated<P>(
    program: &P,
    budget: CycleBudget,
    core: &mut Core<P::Private>,
    pool: &TickPool,
) -> Result<()>
where
    P: Program + Sync,
    P::Private: Send,
{
    let p = core.procs.len();
    let align = core.chunk_align();
    let (mem, cycle) = (&core.mem, core.cycle);
    let statuses: &[ProcStatus] = &core.procs.status;
    let states = SendPtr::new(core.procs.state.as_mut_ptr());
    let tentative = SendPtr::new(core.tentative.as_mut_ptr());
    pool.run_tick(CLASS_TENTATIVE, p, align, &move |start: usize, end: usize| {
        #[allow(clippy::needless_range_loop)] // `i` also offsets the raw SoA pointers
        for i in start..end {
            // SAFETY: as in `tentative_pooled` — disjoint chunks, pointers
            // outlive the tick.
            let state = unsafe { &mut *states.ptr().add(i) };
            let out = unsafe { &mut *tentative.ptr().add(i) };
            catch_unwind(AssertUnwindSafe(|| {
                tentative_for(program, mem, budget, cycle, Pid(i), statuses[i], state, out)
            }))
            .unwrap_or_else(|payload| {
                Err(PramError::WorkerPanic {
                    pid: Some(Pid(i)),
                    detail: panic_detail(payload.as_ref()),
                })
            })?;
        }
        Ok(())
    })
}

/// The fully pooled word backend: tentative phase, three-pass parallel
/// commit and sharded index rebuild all run on the same worker pool.
/// Results are pinned byte-identical to [`SeqBackend`] by the golden and
/// differential tests.
struct PooledBackend<'a> {
    pool: &'a TickPool,
}

impl<'p, P> Backend<WordModel<'p, P>> for PooledBackend<'_>
where
    P: Program + Sync,
    P::Private: Send,
{
    fn prime(&mut self, model: &WordModel<'p, P>, core: &mut Core<P::Private>) {
        core.init_tracker_pooled(model, self.pool);
    }

    fn tentative(&mut self, model: &WordModel<'p, P>, core: &mut Core<P::Private>) -> Result<()> {
        tentative_pooled(model.program, model.budget, core, self.pool)
    }

    fn apply(
        &mut self,
        model: &WordModel<'p, P>,
        core: &mut Core<P::Private>,
        decisions: Decisions,
        observer: &mut dyn Observer,
    ) -> Result<()> {
        core.apply_pooled(model, decisions, observer, self.pool)
    }
}

/// The sequential panic-isolating backend: [`tentative_caught`] wraps every
/// processor's cycle in `catch_unwind`. Used for `threads == 1` isolated
/// runs and as the degraded mode of [`IsolatedBackend`].
struct CaughtBackend;

impl<'p, P: Program> Backend<WordModel<'p, P>> for CaughtBackend {
    fn tentative(&mut self, model: &WordModel<'p, P>, core: &mut Core<P::Private>) -> Result<()> {
        tentative_caught(model.program, model.budget, core)
    }
}

/// The pooled backend with per-processor panic isolation: each tick backs
/// up every private state before the pooled tentative phase, restores them
/// if a worker catches a panic, and then either surfaces the error or
/// degrades permanently to the sequential caught engine per the
/// [`PanicPolicy`].
///
/// Commit and rebuild deliberately keep the **sequential** defaults: the
/// parallel commit stores through raw bank pointers and calls user
/// completion hints, so a panic there could not be unwound to a clean tick
/// boundary the way the tentative phase can.
struct IsolatedBackend<'a, S> {
    pool: &'a TickPool,
    policy: PanicPolicy,
    backup: Vec<Option<S>>,
    degraded: bool,
}

impl<'p, P> Backend<WordModel<'p, P>> for IsolatedBackend<'_, P::Private>
where
    P: Program + Sync,
    P::Private: Send,
{
    fn tentative(&mut self, model: &WordModel<'p, P>, core: &mut Core<P::Private>) -> Result<()> {
        if self.degraded {
            return tentative_caught(model.program, model.budget, core);
        }
        // Snapshot every private state: the tentative phase advances
        // states in place, so recovering from a panic mid-phase needs the
        // pre-tick originals.
        for (saved, state) in self.backup.iter_mut().zip(core.procs.state.iter()) {
            saved.clone_from(state);
        }
        match tentative_pooled_isolated(model.program, model.budget, core, self.pool) {
            Err(PramError::WorkerPanic { pid, detail }) => {
                for (state, saved) in core.procs.state.iter_mut().zip(self.backup.iter()) {
                    state.clone_from(saved);
                }
                match self.policy {
                    PanicPolicy::Surface => Err(PramError::WorkerPanic { pid, detail }),
                    PanicPolicy::FallbackSequential => {
                        self.degraded = true;
                        // Replay the whole tick sequentially from the
                        // restored pre-tick states — nothing had committed,
                        // so the replay is identical to a clean tick.
                        tentative_caught(model.program, model.budget, core)
                    }
                }
            }
            other => other,
        }
    }
}

impl<'p, P> Machine<'p, P>
where
    P: Program + Sync,
    P::Private: Send,
{
    /// Like [`Machine::run_with_limits`], but every heavy phase of the
    /// tick — the tentative phase, the commit, and the completion-index
    /// rebuild at run entry — is computed by a persistent pool of
    /// `threads` worker threads claiming chunks from shared cursors. Only
    /// the adversary consultation and the deterministic rank-ordered
    /// merges stay on the coordinating thread, preserving the exact
    /// semantics, event streams and determinism of the sequential engine.
    ///
    /// The workers are spawned **once per run** and parked between ticks,
    /// so a steady-state tick performs no thread spawns. `threads == 1`
    /// routes to the sequential tentative phase — same results, none of the
    /// pool's synchronization overhead.
    ///
    /// This is the "real concurrency" backend: results are bit-identical to
    /// [`Machine::run`] for the same program and adversary.
    ///
    /// # Errors
    ///
    /// See [`PramError`]. Additionally [`PramError::InvalidConfig`] if
    /// `threads == 0`.
    pub fn run_threaded<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        threads: usize,
    ) -> Result<RunReport> {
        self.run_threaded_observed(adversary, limits, threads, &mut NoopObserver)
    }

    /// [`Machine::run_threaded`] with an event stream: shares the
    /// sequential engine's run loop ([`Machine::run_observed`]), so for the
    /// same program and adversary both backends emit the **identical**
    /// sequence of [`TraceEvent`](crate::trace::TraceEvent)s — only the
    /// tentative phase is farmed out to the worker pool.
    ///
    /// # Errors
    ///
    /// See [`PramError`]. Additionally [`PramError::InvalidConfig`] if
    /// `threads == 0`.
    pub fn run_threaded_observed<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        threads: usize,
        observer: &mut dyn Observer,
    ) -> Result<RunReport> {
        if threads == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one thread".into() });
        }
        let Machine { model, core } = self;
        if threads == 1 {
            // A one-thread pool would pay wake/park synchronization for no
            // parallelism; the sequential phase is the same computation.
            return core.run_to_completion(model, adversary, limits, observer, &mut SeqBackend);
        }
        let pool = TickPool::new(threads);
        std::thread::scope(|scope| {
            let _shutdown = PoolShutdown(&pool);
            let pool = &pool;
            for rank in 0..threads {
                scope.spawn(move || pool.worker(rank));
            }
            let mut backend = PooledBackend { pool };
            core.run_to_completion(model, adversary, limits, observer, &mut backend)
        })
    }

    /// [`Machine::run_threaded_observed`] with a pause hook — the threaded
    /// counterpart of [`Machine::run_controlled`], for checkpointed long
    /// runs on the pooled engine.
    ///
    /// # Errors
    ///
    /// See [`PramError`]. Additionally [`PramError::InvalidConfig`] if
    /// `threads == 0`.
    pub fn run_threaded_controlled<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        threads: usize,
        observer: &mut dyn Observer,
        control: impl FnMut(u64) -> RunControl,
    ) -> Result<RunStatus> {
        if threads == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one thread".into() });
        }
        let Machine { model, core } = self;
        if threads == 1 {
            return core.run_loop(model, adversary, limits, observer, &mut SeqBackend, control);
        }
        let pool = TickPool::new(threads);
        std::thread::scope(|scope| {
            let _shutdown = PoolShutdown(&pool);
            let pool = &pool;
            for rank in 0..threads {
                scope.spawn(move || pool.worker(rank));
            }
            let mut backend = PooledBackend { pool };
            core.run_loop(model, adversary, limits, observer, &mut backend, control)
        })
    }

    /// [`Machine::run_threaded_observed`] with **panic isolation**: a panic
    /// in program code (`plan`/`execute`) is caught at the worker, the
    /// pre-tick private states are restored from a per-tick backup, and
    /// `policy` decides what happens next — surface
    /// [`PramError::WorkerPanic`] with the machine intact at the tick
    /// boundary, or replay the tick sequentially and finish the run on the
    /// sequential engine with results identical to an undisturbed run.
    ///
    /// The isolation costs one clone of every private state per tick, so
    /// the plain [`Machine::run_threaded`] remains the default engine;
    /// this entry point is for runs that must survive faulty host code
    /// (the chaos harness, long crash-safe experiments).
    ///
    /// # Errors
    ///
    /// See [`PramError`]. Additionally [`PramError::InvalidConfig`] if
    /// `threads == 0`, and [`PramError::WorkerPanic`] if a panic fires
    /// under [`PanicPolicy::Surface`] (or repeats during a sequential
    /// replay under [`PanicPolicy::FallbackSequential`]).
    pub fn run_threaded_isolated<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        threads: usize,
        policy: PanicPolicy,
        observer: &mut dyn Observer,
    ) -> Result<RunReport> {
        match self.run_threaded_isolated_controlled(
            adversary,
            limits,
            threads,
            policy,
            observer,
            |_| RunControl::Continue,
        )? {
            RunStatus::Completed(report) => Ok(report),
            RunStatus::Paused { .. } => unreachable!("the control callback never pauses"),
        }
    }

    /// [`Machine::run_threaded_isolated`] with a pause hook: the fully
    /// armored engine — panic isolation, graceful sequential degradation,
    /// and checkpointable tick boundaries — used by the crash-safe
    /// experiment runner.
    ///
    /// # Errors
    ///
    /// See [`Machine::run_threaded_isolated`].
    pub fn run_threaded_isolated_controlled<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        threads: usize,
        policy: PanicPolicy,
        observer: &mut dyn Observer,
        control: impl FnMut(u64) -> RunControl,
    ) -> Result<RunStatus> {
        if threads == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one thread".into() });
        }
        let Machine { model, core } = self;
        if threads == 1 {
            return core.run_loop(model, adversary, limits, observer, &mut CaughtBackend, control);
        }
        let pool = TickPool::new(threads);
        std::thread::scope(|scope| {
            let _shutdown = PoolShutdown(&pool);
            let pool = &pool;
            for rank in 0..threads {
                scope.spawn(move || pool.worker(rank));
            }
            let mut backend = IsolatedBackend {
                pool,
                policy,
                backup: vec![None; core.procs.len()],
                degraded: false,
            };
            core.run_loop(model, adversary, limits, observer, &mut backend, control)
        })
    }

    /// [`Machine::run_threaded_isolated_controlled`] on a caller-provided
    /// [`SharedPool`] instead of a private per-call pool.
    ///
    /// The segment holds the pool's turn lock for its whole duration, so
    /// concurrent callers serialize; pause at tick boundaries (via
    /// `control`) to time-share the pool between runs. The calling thread
    /// becomes the pool's coordinator for the duration of the segment.
    ///
    /// # Errors
    ///
    /// See [`Machine::run_threaded_isolated`].
    pub fn run_pooled_isolated_controlled<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        pool: &SharedPool,
        policy: PanicPolicy,
        observer: &mut dyn Observer,
        control: impl FnMut(u64) -> RunControl,
    ) -> Result<RunStatus> {
        let Machine { model, core } = self;
        let _turn = pool.turn.lock().unwrap_or_else(PoisonError::into_inner);
        pool.pool.bind_coordinator();
        let mut backend = IsolatedBackend {
            pool: &pool.pool,
            policy,
            backup: vec![None; core.procs.len()],
            degraded: false,
        };
        core.run_loop(model, adversary, limits, observer, &mut backend, control)
    }
}

/// A persistent worker pool shared across machines and run segments.
///
/// [`Machine::run_threaded_isolated_controlled`] builds a private
/// [`TickPool`] per call — right for a single run, but wasteful (and
/// impossible to time-share) when a daemon multiplexes many paused runs
/// over one set of OS threads. `SharedPool` owns its workers for as long
/// as the value lives; any thread may drive a run segment on it through
/// [`Machine::run_pooled_isolated_controlled`], one segment at a time: an
/// internal turn lock serializes drivers, and each driver re-binds the
/// pool's coordinator to itself before its first tick.
pub struct SharedPool {
    pool: Arc<TickPool>,
    /// Serializes run segments: at most one coordinator drives the workers
    /// at any moment.
    turn: Mutex<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl SharedPool {
    /// Spawn `threads` parked workers (`threads >= 2`; a single thread
    /// should use the sequential engine instead — the pool's coordination
    /// protocol assumes at least two workers).
    ///
    /// # Errors
    ///
    /// [`PramError::InvalidConfig`] if `threads < 2`.
    pub fn new(threads: usize) -> Result<Self> {
        if threads < 2 {
            return Err(PramError::InvalidConfig {
                detail: "a shared pool needs at least two threads".into(),
            });
        }
        let pool = Arc::new(TickPool::new(threads));
        let handles = (0..threads)
            .map(|rank| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.worker(rank))
            })
            .collect();
        Ok(SharedPool { pool, turn: Mutex::new(()), handles })
    }

    /// Number of worker threads the pool owns.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

impl Drop for SharedPool {
    fn drop(&mut self) {
        self.pool.shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::RunOutcome;
    use crate::adversary::{Decisions, FailPoint, MachineView, NoFailures};
    use crate::cycle::WriteSet;
    use crate::Program;

    /// Each processor repeatedly increments its own cell until it reaches
    /// `target`, then halts.
    struct Counter {
        n: usize,
        target: Word,
    }

    impl Program for Counter {
        type Private = ();
        fn shared_size(&self) -> usize {
            self.n
        }
        fn on_start(&self, _pid: Pid) {}
        fn plan(&self, pid: Pid, _st: &(), values: &[Word], reads: &mut ReadSet) {
            if values.is_empty() {
                reads.push(pid.0);
            }
        }
        fn execute(&self, pid: Pid, _st: &mut (), vals: &[Word], writes: &mut WriteSet) -> Step {
            if vals[0] >= self.target {
                return Step::Halt;
            }
            writes.push(pid.0, vals[0] + 1);
            Step::Continue
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            (0..self.n).all(|i| mem.peek(i) >= self.target)
        }
    }

    #[test]
    fn counter_completes_without_failures() {
        let prog = Counter { n: 4, target: 3 };
        let mut m = Machine::new(&prog, 4, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed);
        // 3 increments per processor; completion is detected before the
        // halting cycle runs.
        assert_eq!(report.stats.completed_cycles, 12);
        assert_eq!(report.stats.parallel_time, 3);
        assert!(report.pattern.is_empty());
        assert_eq!(m.memory().peek(0), 3);
    }

    /// A [`SharedPool`] outlives any one run segment and may be driven
    /// from whichever thread holds the turn: pause on one thread, finish
    /// on another, and the result still matches the sequential engine.
    #[test]
    fn shared_pool_runs_segments_from_different_threads() {
        assert!(SharedPool::new(1).is_err());
        let pool = SharedPool::new(2).unwrap();
        assert_eq!(pool.threads(), 2);
        let prog = Counter { n: 8, target: 5 };
        let mut m = Machine::new(&prog, 8, CycleBudget::PAPER).unwrap();
        let status = m
            .run_pooled_isolated_controlled(
                &mut NoFailures,
                RunLimits::default(),
                &pool,
                PanicPolicy::Surface,
                &mut NoopObserver,
                |c| if c >= 2 { RunControl::Pause } else { RunControl::Continue },
            )
            .unwrap();
        assert!(matches!(status, RunStatus::Paused { cycle: 2 }));
        let status = std::thread::scope(|s| {
            s.spawn(|| {
                m.run_pooled_isolated_controlled(
                    &mut NoFailures,
                    RunLimits::default(),
                    &pool,
                    PanicPolicy::Surface,
                    &mut NoopObserver,
                    |_| RunControl::Continue,
                )
                .unwrap()
            })
            .join()
            .unwrap()
        });
        let RunStatus::Completed(report) = status else {
            panic!("expected completion, got {status:?}");
        };
        assert_eq!(report.outcome, RunOutcome::Completed);
        let prog2 = Counter { n: 8, target: 5 };
        let mut seq = Machine::new(&prog2, 8, CycleBudget::PAPER).unwrap();
        let seq_report = seq.run(&mut NoFailures).unwrap();
        assert_eq!(report.stats, seq_report.stats);
    }

    /// Adversary that fails processor 1 before its writes in cycle 0 and
    /// restarts it for cycle 2.
    struct OneHiccup;
    impl Adversary for OneHiccup {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            if view.cycle == 0 {
                d.fail(Pid(1), FailPoint::BeforeWrites);
            }
            if view.cycle == 1 {
                d.restart(Pid(1));
            }
            d
        }
    }

    #[test]
    fn failure_discards_writes_and_is_not_charged() {
        let prog = Counter { n: 2, target: 2 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut OneHiccup).unwrap();
        // P0: 2 increments plus a charged halting cycle. P1: loses cycle 0,
        // idle cycle 1, increments in cycles 2 and 3.
        assert_eq!(m.memory().peek(0), 2);
        assert_eq!(m.memory().peek(1), 2);
        assert_eq!(report.stats.interrupted_cycles, 1);
        assert_eq!(report.stats.failures, 1);
        assert_eq!(report.stats.restarts, 1);
        assert_eq!(report.stats.pattern_size(), 2);
        assert_eq!(report.stats.completed_cycles, 5);
        assert_eq!(report.stats.parallel_time, 4);
        // S' = S + interrupted.
        assert_eq!(report.stats.s_prime(), 6);
    }

    /// Stops P1 once `BeforeWrites` (cycle 0) and once `BeforeReads`
    /// (cycle 2), restarting it after each.
    struct TwoStops;
    impl Adversary for TwoStops {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            match view.cycle {
                0 => {
                    d.fail(Pid(1), FailPoint::BeforeWrites);
                }
                1 | 3 => {
                    d.restart(Pid(1));
                }
                2 => {
                    d.fail(Pid(1), FailPoint::BeforeReads);
                }
                _ => {}
            }
            d
        }
    }

    /// Pins the `S'` partial-work accounting per fail point: a cycle
    /// stopped `BeforeWrites` is charged its reads and computation
    /// (`reads + 1 + 0`), a cycle stopped `BeforeReads` executed nothing
    /// and is charged 0 (via `CycleFate::InterruptedBeforeReads`, not a
    /// sentinel).
    #[test]
    fn partial_instructions_distinguish_fail_points() {
        let prog = Counter { n: 2, target: 2 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut TwoStops).unwrap();
        assert_eq!(report.stats.interrupted_cycles, 2);
        // Cycle 0 (BeforeWrites): 1 read + 1 compute + 0 writes = 2.
        // Cycle 2 (BeforeReads): 0.
        assert_eq!(report.stats.partial_instructions, 2);
        assert_eq!(report.stats.failures, 2);
        assert_eq!(report.stats.restarts, 2);
        assert_eq!(m.memory().peek(1), 2);
    }

    /// Pins the read instrumentation: a read is charged iff the cycle's
    /// read phase actually ran. Under [`TwoStops`], processor 0 completes
    /// cycles 0–2 (3 reads), processor 1 is stopped `BeforeWrites` in
    /// cycle 0 (read ran: 1), stopped `BeforeReads` in cycle 2 (read never
    /// ran: 0), then completes cycles 4–5 after its restart (2 reads).
    #[test]
    fn read_count_charges_executed_read_phases() {
        let prog = Counter { n: 2, target: 2 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        m.run(&mut TwoStops).unwrap();
        assert_eq!(m.memory().read_count(), 6);
    }

    /// Write-conflict program: both processors write different values to
    /// cell 0.
    struct Clash;
    impl Program for Clash {
        type Private = ();
        fn shared_size(&self) -> usize {
            1
        }
        fn on_start(&self, _pid: Pid) {}
        fn plan(&self, _pid: Pid, _st: &(), _vals: &[Word], _reads: &mut ReadSet) {}
        fn execute(&self, pid: Pid, _st: &mut (), _v: &[Word], writes: &mut WriteSet) -> Step {
            writes.push(0, pid.0 as Word + 1);
            Step::Halt
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            mem.peek(0) != 0
        }
    }

    #[test]
    fn common_mode_detects_conflicts() {
        let prog = Clash;
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut NoFailures).unwrap_err();
        assert!(matches!(err, PramError::CommonWriteConflict { addr: 0, .. }));
    }

    #[test]
    fn arbitrary_mode_lowest_pid_wins() {
        let prog = Clash;
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        m.set_write_mode(WriteMode::Arbitrary);
        m.run(&mut NoFailures).unwrap();
        assert_eq!(m.memory().peek(0), 1); // P0's value
    }

    #[test]
    fn exclusive_mode_rejects_concurrent_writes() {
        let prog = Clash;
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        m.set_write_mode(WriteMode::Exclusive);
        let err = m.run(&mut NoFailures).unwrap_err();
        assert!(matches!(err, PramError::ExclusiveWriteConflict { addr: 0, .. }));
    }

    /// Adversary failing everyone mid-cycle — must be rejected.
    struct KillAll;
    impl Adversary for KillAll {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            for pid in view.active_pids() {
                d.fail(pid, FailPoint::BeforeWrites);
            }
            d
        }
    }

    #[test]
    fn stalling_adversary_is_rejected() {
        let prog = Counter { n: 2, target: 1 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut KillAll).unwrap_err();
        assert_eq!(err, PramError::AdversaryStall { cycle: 0 });
    }

    /// A program that halts immediately without completing — deadlock.
    struct GiveUp;
    impl Program for GiveUp {
        type Private = ();
        fn shared_size(&self) -> usize {
            1
        }
        fn on_start(&self, _pid: Pid) {}
        fn plan(&self, _pid: Pid, _st: &(), _vals: &[Word], _reads: &mut ReadSet) {}
        fn execute(&self, _pid: Pid, _st: &mut (), _v: &[Word], _w: &mut WriteSet) -> Step {
            Step::Halt
        }
        fn is_complete(&self, _mem: &SharedMemory) -> bool {
            false
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let prog = GiveUp;
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut NoFailures).unwrap_err();
        assert!(matches!(err, PramError::Deadlock { .. }));
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let prog = Counter { n: 1, target: 1_000 };
        let mut m = Machine::new(&prog, 1, CycleBudget::PAPER).unwrap();
        let err = m.run_with_limits(&mut NoFailures, RunLimits { max_cycles: 10 }).unwrap_err();
        assert_eq!(err, PramError::CycleLimit { cycles: 10 });
    }

    /// Failing after the final write both commits and charges the cycle.
    struct FailAfterFinalWrite;
    impl Adversary for FailAfterFinalWrite {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            if view.cycle == 0 {
                if let Some(t) = view.tentative[1].as_ref() {
                    d.fail(Pid(1), FailPoint::AfterWrite(t.writes.len()));
                    d.restart(Pid(1));
                }
            }
            d
        }
    }

    #[test]
    fn fail_after_last_write_still_charges_cycle() {
        let prog = Counter { n: 2, target: 2 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut FailAfterFinalWrite).unwrap();
        assert_eq!(m.memory().peek(1), 2);
        assert_eq!(report.stats.interrupted_cycles, 0);
        assert_eq!(report.stats.failures, 1);
        // P1's cycle-0 write committed even though it then failed.
        assert_eq!(report.stats.completed_cycles, 4);
    }

    #[test]
    fn budget_violation_is_reported() {
        struct Greedy;
        impl Program for Greedy {
            type Private = ();
            fn shared_size(&self) -> usize {
                8
            }
            fn on_start(&self, _pid: Pid) {}
            fn plan(&self, _pid: Pid, _st: &(), _vals: &[Word], reads: &mut ReadSet) {
                for a in 0..5 {
                    reads.push(a);
                }
            }
            fn execute(&self, _p: Pid, _s: &mut (), _v: &[Word], _w: &mut WriteSet) -> Step {
                Step::Halt
            }
            fn is_complete(&self, _mem: &SharedMemory) -> bool {
                false
            }
        }
        let prog = Greedy;
        let mut m = Machine::new(&prog, 1, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut NoFailures).unwrap_err();
        assert!(matches!(
            err,
            PramError::BudgetExceeded { kind: BudgetKind::Reads, used: 5, limit: 4, .. }
        ));
    }

    #[test]
    fn oversized_budget_is_rejected() {
        let prog = Counter { n: 1, target: 1 };
        assert!(matches!(
            Machine::new(&prog, 1, CycleBudget { reads: MAX_READS + 1, writes: 1 }),
            Err(PramError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Machine::new(&prog, 1, CycleBudget { reads: 1, writes: MAX_WRITES + 1 }),
            Err(PramError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn threaded_run_matches_sequential() {
        let prog = Counter { n: 16, target: 5 };
        let mut seq = Machine::new(&prog, 16, CycleBudget::PAPER).unwrap();
        let seq_report = seq.run(&mut OneHiccup).unwrap();
        let mut par = Machine::new(&prog, 16, CycleBudget::PAPER).unwrap();
        let par_report = par.run_threaded(&mut OneHiccup, RunLimits::default(), 4).unwrap();
        assert_eq!(seq_report.stats, par_report.stats);
        assert_eq!(seq_report.pattern, par_report.pattern);
        assert_eq!(seq.memory().as_slice(), par.memory().as_slice());
    }

    /// `threads == 1` routes to the sequential tentative phase (no pool)
    /// and reports identical stats.
    #[test]
    fn single_threaded_run_matches_sequential() {
        let prog = Counter { n: 8, target: 4 };
        let mut seq = Machine::new(&prog, 8, CycleBudget::PAPER).unwrap();
        let seq_report = seq.run(&mut OneHiccup).unwrap();
        let mut one = Machine::new(&prog, 8, CycleBudget::PAPER).unwrap();
        let one_report = one.run_threaded(&mut OneHiccup, RunLimits::default(), 1).unwrap();
        assert_eq!(seq_report.stats, one_report.stats);
        assert_eq!(seq_report.pattern, one_report.pattern);
        assert_eq!(seq.memory().as_slice(), one.memory().as_slice());
    }

    #[test]
    fn threaded_run_rejects_zero_threads() {
        let prog = Counter { n: 2, target: 1 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        assert!(matches!(
            m.run_threaded(&mut NoFailures, RunLimits::default(), 0),
            Err(PramError::InvalidConfig { .. })
        ));
    }

    /// Counter with an incremental completion hint: cell `i` is satisfied
    /// once it reaches `target`.
    struct HintedCounter {
        n: usize,
        target: Word,
    }

    impl Program for HintedCounter {
        type Private = ();
        fn shared_size(&self) -> usize {
            self.n
        }
        fn on_start(&self, _pid: Pid) {}
        fn plan(&self, pid: Pid, _st: &(), values: &[Word], reads: &mut ReadSet) {
            if values.is_empty() {
                reads.push(pid.0);
            }
        }
        fn execute(&self, pid: Pid, _st: &mut (), vals: &[Word], writes: &mut WriteSet) -> Step {
            if vals[0] >= self.target {
                return Step::Halt;
            }
            writes.push(pid.0, vals[0] + 1);
            Step::Continue
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            (0..self.n).all(|i| mem.peek(i) >= self.target)
        }
        fn completion_hint(&self, _addr: usize, value: Word) -> CompletionHint {
            if value >= self.target {
                CompletionHint::Satisfied
            } else {
                CompletionHint::Outstanding
            }
        }
    }

    /// The tracked engine must behave exactly like the full-scan engine
    /// (the run-loop debug_assert also cross-checks the index against
    /// `is_complete` every tick).
    #[test]
    fn completion_hint_matches_full_scan() {
        let plain = Counter { n: 4, target: 3 };
        let mut m1 = Machine::new(&plain, 4, CycleBudget::PAPER).unwrap();
        let r1 = m1.run(&mut OneHiccup).unwrap();
        let hinted = HintedCounter { n: 4, target: 3 };
        let mut m2 = Machine::new(&hinted, 4, CycleBudget::PAPER).unwrap();
        let r2 = m2.run(&mut OneHiccup).unwrap();
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(m1.memory().as_slice(), m2.memory().as_slice());
    }

    /// The tracker must survive a second run on the same machine (it is
    /// re-primed from memory at every run entry).
    #[test]
    fn completion_tracker_reinitializes_between_runs() {
        let hinted = HintedCounter { n: 2, target: 1 };
        let mut m = Machine::new(&hinted, 2, CycleBudget::PAPER).unwrap();
        m.run(&mut NoFailures).unwrap();
        for i in 0..2 {
            m.memory_mut().poke(i, 0);
        }
        let report = m.run(&mut NoFailures).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert_eq!(m.memory().peek(0), 1);
        assert_eq!(m.memory().peek(1), 1);
    }

    #[test]
    fn zero_processors_is_invalid() {
        let prog = Counter { n: 1, target: 1 };
        assert!(matches!(
            Machine::new(&prog, 0, CycleBudget::PAPER),
            Err(PramError::InvalidConfig { .. })
        ));
    }

    /// Counter whose `execute` panics exactly once, on `victim`'s first
    /// cycle — a model of faulty host code for the panic-isolation engine.
    struct BoobyTrap {
        n: usize,
        target: Word,
        victim: usize,
        fired: std::sync::atomic::AtomicBool,
    }

    impl Program for BoobyTrap {
        type Private = ();
        fn shared_size(&self) -> usize {
            self.n
        }
        fn on_start(&self, _pid: Pid) {}
        fn plan(&self, pid: Pid, _st: &(), values: &[Word], reads: &mut ReadSet) {
            if values.is_empty() {
                reads.push(pid.0);
            }
        }
        fn execute(&self, pid: Pid, _st: &mut (), vals: &[Word], writes: &mut WriteSet) -> Step {
            if pid.0 == self.victim && !self.fired.swap(true, std::sync::atomic::Ordering::SeqCst) {
                panic!("injected fault in P{}", pid.0);
            }
            if vals[0] >= self.target {
                return Step::Halt;
            }
            writes.push(pid.0, vals[0] + 1);
            Step::Continue
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            (0..self.n).all(|i| mem.peek(i) >= self.target)
        }
    }

    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    /// Under `FallbackSequential`, a panicking program degrades to the
    /// sequential engine mid-run and still produces results identical to a
    /// clean run of the same algorithm.
    #[test]
    fn panic_fallback_matches_clean_run() {
        with_quiet_panics(|| {
            let clean = Counter { n: 8, target: 4 };
            let mut reference = Machine::new(&clean, 8, CycleBudget::PAPER).unwrap();
            let expected = reference.run(&mut NoFailures).unwrap();

            let trapped = BoobyTrap {
                n: 8,
                target: 4,
                victim: 3,
                fired: std::sync::atomic::AtomicBool::new(false),
            };
            let mut m = Machine::new(&trapped, 8, CycleBudget::PAPER).unwrap();
            let report = m
                .run_threaded_isolated(
                    &mut NoFailures,
                    RunLimits::default(),
                    4,
                    PanicPolicy::FallbackSequential,
                    &mut NoopObserver,
                )
                .unwrap();
            assert!(trapped.fired.load(std::sync::atomic::Ordering::SeqCst));
            assert_eq!(report.stats, expected.stats);
            assert_eq!(report.per_processor, expected.per_processor);
            assert_eq!(m.memory().as_slice(), reference.memory().as_slice());
        });
    }

    /// The sequential replay after a worker panic re-runs the *tentative*
    /// phase only — nothing had committed, so the memory read/write
    /// counters (total and per-bank) must equal an uninterrupted run's,
    /// not charge the tick twice.
    #[test]
    fn panic_fallback_does_not_double_charge_counters() {
        with_quiet_panics(|| {
            let layout = MemoryLayout::Banked { banks: 3, interleave: 1 };
            let clean = Counter { n: 8, target: 4 };
            let mut reference =
                Machine::with_layout(&clean, 8, CycleBudget::PAPER, layout).unwrap();
            reference.run(&mut NoFailures).unwrap();

            let trapped = BoobyTrap {
                n: 8,
                target: 4,
                victim: 3,
                fired: std::sync::atomic::AtomicBool::new(false),
            };
            let mut m = Machine::with_layout(&trapped, 8, CycleBudget::PAPER, layout).unwrap();
            m.run_threaded_isolated(
                &mut NoFailures,
                RunLimits::default(),
                4,
                PanicPolicy::FallbackSequential,
                &mut NoopObserver,
            )
            .unwrap();
            assert!(trapped.fired.load(std::sync::atomic::Ordering::SeqCst));
            assert_eq!(m.memory().read_count(), reference.memory().read_count());
            assert_eq!(m.memory().write_count(), reference.memory().write_count());
            assert_eq!(m.memory().bank_counters(), reference.memory().bank_counters());
        });
    }

    /// Under `Surface`, the panic aborts the run as a `WorkerPanic` naming
    /// the processor — and the machine is left consistent at the tick
    /// boundary, so the run can even be finished afterwards.
    #[test]
    fn panic_surface_reports_pid_and_leaves_machine_resumable() {
        with_quiet_panics(|| {
            let trapped = BoobyTrap {
                n: 8,
                target: 4,
                victim: 5,
                fired: std::sync::atomic::AtomicBool::new(false),
            };
            let mut m = Machine::new(&trapped, 8, CycleBudget::PAPER).unwrap();
            let err = m
                .run_threaded_isolated(
                    &mut NoFailures,
                    RunLimits::default(),
                    4,
                    PanicPolicy::Surface,
                    &mut NoopObserver,
                )
                .unwrap_err();
            assert!(
                matches!(&err, PramError::WorkerPanic { pid: Some(Pid(5)), detail }
                    if detail.contains("injected fault")),
                "unexpected error: {err:?}"
            );
            // The pre-tick states were restored: the interrupted run can
            // simply continue (the trap only fires once).
            let report = m.run(&mut NoFailures).unwrap();
            let clean = Counter { n: 8, target: 4 };
            let mut reference = Machine::new(&clean, 8, CycleBudget::PAPER).unwrap();
            let expected = reference.run(&mut NoFailures).unwrap();
            assert_eq!(report.stats, expected.stats);
            assert_eq!(m.memory().as_slice(), reference.memory().as_slice());
        });
    }

    /// Pause mid-run, checkpoint, restore into a *fresh* machine and
    /// adversary, finish — and get the identical report, memory and
    /// concatenated event stream as the uninterrupted run.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        use crate::failure::ScheduledAdversary;
        use crate::trace::TraceRecorder;

        let prog = Counter { n: 4, target: 3 };

        // Record a pattern worth replaying (a failure + a restart).
        let mut m0 = Machine::new(&prog, 4, CycleBudget::PAPER).unwrap();
        let pattern = m0.run(&mut OneHiccup).unwrap().pattern;
        assert!(!pattern.is_empty());

        // Uninterrupted reference run under the replayed pattern.
        let mut straight = Machine::new(&prog, 4, CycleBudget::PAPER).unwrap();
        let mut straight_trace = TraceRecorder::unbounded();
        let expected = straight
            .run_observed(
                &mut ScheduledAdversary::new(pattern.clone()),
                RunLimits::default(),
                &mut straight_trace,
            )
            .unwrap();

        // Interrupted run: pause before tick 2, checkpoint, drop everything.
        let mut first = Machine::new(&prog, 4, CycleBudget::PAPER).unwrap();
        let mut adv1 = ScheduledAdversary::new(pattern.clone());
        let mut trace1 = TraceRecorder::unbounded();
        let status = first
            .run_controlled(&mut adv1, RunLimits::default(), &mut trace1, |cycle| {
                if cycle == 2 {
                    RunControl::Pause
                } else {
                    RunControl::Continue
                }
            })
            .unwrap();
        assert!(matches!(status, RunStatus::Paused { cycle: 2 }));
        let ck = first.save_checkpoint(&adv1).unwrap();
        drop(first);
        drop(adv1);

        // Resume in a fresh machine + fresh adversary.
        let mut second = Machine::new(&prog, 4, CycleBudget::PAPER).unwrap();
        let mut adv2 = ScheduledAdversary::new(pattern);
        second.restore_checkpoint(&ck, &mut adv2).unwrap();
        assert_eq!(second.cycle(), 2);
        let mut trace2 = TraceRecorder::unbounded();
        let report = second.run_observed(&mut adv2, RunLimits::default(), &mut trace2).unwrap();

        assert_eq!(report.stats, expected.stats);
        assert_eq!(report.pattern, expected.pattern);
        assert_eq!(report.per_processor, expected.per_processor);
        assert_eq!(second.memory().as_slice(), straight.memory().as_slice());
        let concatenated: Vec<_> = trace1.events().chain(trace2.events()).cloned().collect();
        let straight_events: Vec<_> = straight_trace.events().cloned().collect();
        assert_eq!(concatenated, straight_events);
    }

    /// A checkpoint survives the JSON round-trip and restore rejects a
    /// machine of the wrong shape.
    #[test]
    fn checkpoint_json_and_shape_validation() {
        use crate::checkpoint::Checkpoint;

        let prog = Counter { n: 4, target: 3 };
        let mut m = Machine::new(&prog, 4, CycleBudget::PAPER).unwrap();
        let status = m
            .run_controlled(&mut NoFailures, RunLimits::default(), &mut NoopObserver, |c| {
                if c == 1 {
                    RunControl::Pause
                } else {
                    RunControl::Continue
                }
            })
            .unwrap();
        assert!(matches!(status, RunStatus::Paused { cycle: 1 }));
        let ck = Checkpoint::from_json(&m.save_checkpoint(&NoFailures).unwrap().to_json()).unwrap();
        assert_eq!(ck.model, "word");

        // Wrong processor count.
        let mut wrong = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let err = wrong.restore_checkpoint(&ck, &mut NoFailures).unwrap_err();
        assert!(matches!(&err, PramError::Checkpoint { detail } if detail.contains("processors")));

        // Right shape restores and completes.
        let mut right = Machine::new(&prog, 4, CycleBudget::PAPER).unwrap();
        right.restore_checkpoint(&ck, &mut NoFailures).unwrap();
        let report = right.run(&mut NoFailures).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed);
    }
}
