//! The synchronous restartable fail-stop machine executor.
//!
//! Each tick the machine plays one update cycle for every alive processor:
//!
//! 1. **Tentative phase** — every alive processor plans its reads, reads the
//!    memory state from the start of the tick (synchronous PRAM: nobody sees
//!    this tick's writes), and computes its writes against a *copy* of its
//!    private state.
//! 2. **Adversary phase** — the on-line adversary inspects the whole machine
//!    (including every tentative cycle) and stops/restarts processors.
//! 3. **Commit phase** — surviving write prefixes are merged slot by slot
//!    under the machine's CRCW [`WriteMode`]; processors that completed
//!    their cycle are charged and adopt their new private state; stopped
//!    processors lose their private state.
//!
//! Restarts take effect at the start of the following tick. The executor
//! enforces the model's progress condition (§2.1 2(i)): every tick with any
//! activity must include at least one completed update cycle.

use crate::accounting::{RunOutcome, RunReport, WorkStats};
use crate::adversary::{Adversary, FailPoint, MachineView, ProcMeta, ProcStatus, TentativeCycle};
use crate::cycle::{CycleBudget, ReadSet, Step, WriteSet};
use crate::error::{BudgetKind, PramError};
use crate::failure::{FailureEvent, FailureKind, FailurePattern};
use crate::memory::SharedMemory;
use crate::mode::WriteMode;
use crate::trace::{NoopObserver, Observer, TraceEvent};
use crate::word::{Pid, Word};
use crate::{Program, Result};

/// Safety limits for a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunLimits {
    /// Abort with [`PramError::CycleLimit`] after this many ticks. Used by
    /// experiments to demonstrate non-terminating executions (e.g.
    /// algorithm W under restarts).
    pub max_cycles: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits { max_cycles: 100_000_000 }
    }
}

/// Internal per-processor slot.
#[derive(Clone, Debug)]
struct ProcSlot<S> {
    status: ProcStatus,
    /// Private memory; `None` while failed.
    state: Option<S>,
    completed: u64,
}

/// Outcome of one processor's cycle after the adversary's decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CycleFate {
    /// Not active this tick (failed or halted at tick start).
    Idle,
    /// Completed the whole cycle (possibly failed *after* it completed).
    Completed,
    /// Stopped after committing this many writes.
    Interrupted { committed_writes: usize },
}

/// A restartable fail-stop CRCW PRAM running one [`Program`].
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Machine<'p, P: Program> {
    program: &'p P,
    mem: SharedMemory,
    budget: CycleBudget,
    mode: WriteMode,
    procs: Vec<ProcSlot<P::Private>>,
    cycle: u64,
    stats: WorkStats,
    pattern: FailurePattern,
    // Reused per-tick buffers.
    tentative: Vec<Option<TentativeCycle>>,
    meta: Vec<ProcMeta>,
    fates: Vec<CycleFate>,
    slot_writes: Vec<(Pid, usize, Word)>,
    failed_now: Vec<bool>,
    fail_points: Vec<Option<FailPoint>>,
    restarted: Vec<bool>,
}

impl<'p, P: Program> Machine<'p, P> {
    /// Build a machine with `processors` processors for `program`.
    ///
    /// Shared memory is allocated per [`Program::shared_size`] and
    /// initialized via [`Program::init_memory`]; every processor starts
    /// alive in its [`Program::on_start`] state.
    ///
    /// # Errors
    ///
    /// [`PramError::InvalidConfig`] if `processors == 0`.
    pub fn new(program: &'p P, processors: usize, budget: CycleBudget) -> Result<Self> {
        if processors == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one processor".into() });
        }
        let mut mem = SharedMemory::new(program.shared_size());
        program.init_memory(&mut mem);
        let procs = (0..processors)
            .map(|i| ProcSlot {
                status: ProcStatus::Alive,
                state: Some(program.on_start(Pid(i))),
                completed: 0,
            })
            .collect();
        Ok(Machine {
            program,
            mem,
            budget,
            mode: WriteMode::Common,
            procs,
            cycle: 0,
            stats: WorkStats::default(),
            pattern: FailurePattern::new(),
            tentative: vec![None; processors],
            meta: Vec::with_capacity(processors),
            fates: vec![CycleFate::Idle; processors],
            slot_writes: Vec::new(),
            failed_now: vec![false; processors],
            fail_points: vec![None; processors],
            restarted: vec![false; processors],
        })
    }

    /// Set the concurrent-write semantics (default: COMMON).
    pub fn set_write_mode(&mut self, mode: WriteMode) -> &mut Self {
        self.mode = mode;
        self
    }

    /// The shared memory (uncharged inspection).
    pub fn memory(&self) -> &SharedMemory {
        &self.mem
    }

    /// Mutable shared memory, for test setup between runs.
    pub fn memory_mut(&mut self) -> &mut SharedMemory {
        &mut self.mem
    }

    /// Number of processors `P`.
    pub fn processors(&self) -> usize {
        self.procs.len()
    }

    /// Current tick.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated work statistics.
    pub fn stats(&self) -> &WorkStats {
        &self.stats
    }

    /// Status of processor `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn proc_status(&self, pid: Pid) -> ProcStatus {
        self.procs[pid.0].status
    }

    /// Run to completion under `adversary` with default [`RunLimits`].
    ///
    /// # Errors
    ///
    /// See [`PramError`]; in particular [`PramError::CycleLimit`] if the
    /// default limit is exhausted.
    pub fn run<A: Adversary>(&mut self, adversary: &mut A) -> Result<RunReport> {
        self.run_with_limits(adversary, RunLimits::default())
    }

    /// Run to completion under `adversary` with explicit limits.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_with_limits<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
    ) -> Result<RunReport> {
        self.run_observed(adversary, limits, &mut NoopObserver)
    }

    /// Like [`Machine::run_with_limits`], streaming every machine event —
    /// cycle completions, failures, restarts, committed writes — to
    /// `observer` (see [`crate::trace`]).
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_observed<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
    ) -> Result<RunReport> {
        self.run_core(adversary, limits, observer, |m| m.tentative_phase())
    }

    /// The single run loop behind every public entry point — sequential and
    /// threaded engines differ only in the `tentative` phase implementation
    /// they pass in, so the event stream and all accounting are shared by
    /// construction.
    fn run_core<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
        mut tentative: impl FnMut(&mut Self) -> Result<()>,
    ) -> Result<RunReport> {
        loop {
            if self.program.is_complete(&self.mem) {
                observer.event(TraceEvent::Completed { cycle: self.cycle });
                return Ok(self.take_completed_report());
            }
            if self.cycle >= limits.max_cycles {
                return Err(PramError::CycleLimit { cycles: limits.max_cycles });
            }
            observer.event(TraceEvent::TickStart { cycle: self.cycle });
            tentative(self)?;
            let decisions = self.collect_decisions(adversary);
            self.apply(decisions, observer)?;
        }
    }

    /// Build the completed-run report. The recorded failure pattern is
    /// **moved** out of the machine (it can be megabytes on adversarial
    /// runs); the machine's own pattern is left empty, so a subsequent
    /// continuation run records a fresh pattern.
    fn take_completed_report(&mut self) -> RunReport {
        RunReport {
            outcome: RunOutcome::Completed,
            stats: self.stats,
            pattern: std::mem::take(&mut self.pattern),
            per_processor: self.procs.iter().map(|s| s.completed).collect(),
        }
    }

    /// Phase 2a: present the machine to the adversary and collect its
    /// decisions for this tick.
    fn collect_decisions<A: Adversary>(
        &mut self,
        adversary: &mut A,
    ) -> crate::adversary::Decisions {
        self.meta.clear();
        self.meta.extend(self.procs.iter().enumerate().map(|(i, s)| ProcMeta {
            pid: Pid(i),
            status: s.status,
            completed_cycles: s.completed,
        }));
        let view = MachineView {
            cycle: self.cycle,
            processors: self.procs.len(),
            mem: &self.mem,
            procs: &self.meta,
            tentative: &self.tentative,
        };
        adversary.decide(&view)
    }

    /// Execute exactly one tick under `adversary`. Exposed for fine-grained
    /// tests and lock-step experiment drivers.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn tick<A: Adversary>(&mut self, adversary: &mut A) -> Result<()> {
        self.tick_observed(adversary, &mut NoopObserver)
    }

    /// [`Machine::tick`] with an event stream.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn tick_observed<A: Adversary>(
        &mut self,
        adversary: &mut A,
        observer: &mut dyn Observer,
    ) -> Result<()> {
        observer.event(TraceEvent::TickStart { cycle: self.cycle });
        self.tentative_phase()?;
        let decisions = self.collect_decisions(adversary);
        self.apply(decisions, observer)
    }

    /// Phase 1: every alive processor tentatively plays its cycle against
    /// the tick-start memory.
    fn tentative_phase(&mut self) -> Result<()> {
        let (program, mem, budget, cycle) = (self.program, &self.mem, self.budget, self.cycle);
        for (i, (slot, out)) in self.procs.iter_mut().zip(self.tentative.iter_mut()).enumerate() {
            *out = tentative_for(program, mem, budget, cycle, Pid(i), slot)?;
        }
        Ok(())
    }

    /// Phases 2b/3: validate the adversary's decisions, merge surviving
    /// writes, charge work, record the failure pattern, apply restarts.
    fn apply(
        &mut self,
        decisions: crate::adversary::Decisions,
        observer: &mut dyn Observer,
    ) -> Result<()> {
        let p = self.procs.len();
        // --- Validate failures and compute each processor's fate. ---
        for (i, fate) in self.fates.iter_mut().enumerate() {
            *fate =
                if self.tentative[i].is_some() { CycleFate::Completed } else { CycleFate::Idle };
        }
        self.failed_now.fill(false);
        self.fail_points.fill(None);
        for &(pid, point) in &decisions.fails {
            if pid.0 >= p {
                return Err(PramError::InvalidAdversaryDecision {
                    cycle: self.cycle,
                    detail: format!("fail of unknown processor {pid}"),
                });
            }
            if self.failed_now[pid.0] {
                return Err(PramError::InvalidAdversaryDecision {
                    cycle: self.cycle,
                    detail: format!("duplicate failure of {pid}"),
                });
            }
            match self.procs[pid.0].status {
                ProcStatus::Failed => {
                    return Err(PramError::InvalidAdversaryDecision {
                        cycle: self.cycle,
                        detail: format!("failure of already failed {pid}"),
                    });
                }
                ProcStatus::Halted => {
                    // No cycle in flight; the processor simply stops.
                    self.failed_now[pid.0] = true;
                    self.fail_points[pid.0] = Some(point);
                    self.fates[pid.0] = CycleFate::Idle;
                }
                ProcStatus::Alive => {
                    let t = self.tentative[pid.0]
                        .as_ref()
                        .expect("alive processor has a tentative cycle");
                    let committed = match point {
                        FailPoint::BeforeReads | FailPoint::BeforeWrites => 0,
                        FailPoint::AfterWrite(k) => {
                            if k == 0 || k > t.writes.len() {
                                return Err(PramError::InvalidAdversaryDecision {
                                    cycle: self.cycle,
                                    detail: format!(
                                        "{pid} failed after write {k} but the cycle has {} writes",
                                        t.writes.len()
                                    ),
                                });
                            }
                            k
                        }
                    };
                    self.failed_now[pid.0] = true;
                    self.fail_points[pid.0] = Some(point);
                    // Failing after the final write means the cycle
                    // completed (and is charged) before the processor
                    // stopped.
                    self.fates[pid.0] = if committed == t.writes.len()
                        && !matches!(point, FailPoint::BeforeReads | FailPoint::BeforeWrites)
                    {
                        CycleFate::Completed
                    } else if matches!(point, FailPoint::BeforeReads) {
                        CycleFate::Interrupted { committed_writes: usize::MAX } // marker: no reads either
                    } else {
                        CycleFate::Interrupted { committed_writes: committed }
                    };
                }
            }
        }
        // --- Validate restarts. ---
        self.restarted.fill(false);
        for &pid in &decisions.restarts {
            if pid.0 >= p {
                return Err(PramError::InvalidAdversaryDecision {
                    cycle: self.cycle,
                    detail: format!("restart of unknown processor {pid}"),
                });
            }
            if self.restarted[pid.0] {
                return Err(PramError::InvalidAdversaryDecision {
                    cycle: self.cycle,
                    detail: format!("duplicate restart of {pid}"),
                });
            }
            let failed = self.procs[pid.0].status == ProcStatus::Failed || self.failed_now[pid.0];
            if !failed {
                return Err(PramError::InvalidAdversaryDecision {
                    cycle: self.cycle,
                    detail: format!("restart of non-failed {pid}"),
                });
            }
            self.restarted[pid.0] = true;
        }

        // --- Progress condition (§2.1 2(i)). ---
        let any_active = self.tentative.iter().any(|t| t.is_some());
        let completing = (0..p)
            .filter(|&i| self.tentative[i].is_some() && self.fates[i] == CycleFate::Completed)
            .count();
        if any_active && completing == 0 {
            return Err(PramError::AdversaryStall { cycle: self.cycle });
        }
        if !any_active {
            let any_failed = self.procs.iter().any(|s| s.status == ProcStatus::Failed);
            let any_restart = !decisions.restarts.is_empty();
            if any_failed && !any_restart {
                return Err(PramError::AdversaryStall { cycle: self.cycle });
            }
            if !any_failed {
                // Everyone halted voluntarily but the program is incomplete.
                return Err(PramError::Deadlock { cycle: self.cycle });
            }
        }

        // --- Commit surviving write prefixes, slot by slot. ---
        let max_slots = self.budget.writes;
        for slot in 0..max_slots {
            self.slot_writes.clear();
            for i in 0..p {
                let Some(t) = self.tentative[i].as_ref() else { continue };
                if slot >= t.writes.len() {
                    continue;
                }
                let survives_slot = match self.fates[i] {
                    CycleFate::Completed => true,
                    CycleFate::Interrupted { committed_writes } => {
                        committed_writes != usize::MAX && slot < committed_writes
                    }
                    CycleFate::Idle => false,
                };
                if survives_slot {
                    let (addr, value) = t.writes.writes()[slot];
                    self.slot_writes.push((Pid(i), addr, value));
                }
            }
            self.commit_slot(observer)?;
        }

        // --- Charge work, update processor states, record the pattern. ---
        let mut events: Vec<FailureEvent> = Vec::new();
        for i in 0..p {
            match self.fates[i] {
                CycleFate::Idle => {}
                CycleFate::Completed => {
                    let t = self.tentative[i].as_ref().expect("completed cycle exists");
                    observer.event(TraceEvent::CycleCompleted { cycle: self.cycle, pid: Pid(i) });
                    self.stats.completed_cycles += 1;
                    self.stats.charged_instructions += (t.reads.len() + 1 + t.writes.len()) as u64;
                    self.procs[i].completed += 1;
                    if t.halts {
                        self.procs[i].status = ProcStatus::Halted;
                    }
                    // Post-cycle private state was already parked in the slot.
                }
                CycleFate::Interrupted { committed_writes } => {
                    let t = self.tentative[i].as_ref().expect("interrupted cycle exists");
                    observer.event(TraceEvent::CycleInterrupted { cycle: self.cycle, pid: Pid(i) });
                    self.stats.interrupted_cycles += 1;
                    self.stats.partial_instructions += if committed_writes == usize::MAX {
                        0
                    } else {
                        (t.reads.len() + 1 + committed_writes) as u64
                    };
                }
            }
            if self.failed_now[i] {
                self.procs[i].status = ProcStatus::Failed;
                self.procs[i].state = None;
                self.stats.failures += 1;
                let point = self.fail_points[i].expect("failed processor has a recorded point");
                observer.event(TraceEvent::Failure { cycle: self.cycle, pid: Pid(i), point });
                events.push(FailureEvent {
                    kind: FailureKind::Failure { point },
                    pid: i,
                    time: self.cycle,
                });
            }
        }
        for i in (0..p).filter(|&i| self.restarted[i]) {
            observer.event(TraceEvent::Restart { cycle: self.cycle, pid: Pid(i) });
            self.procs[i].status = ProcStatus::Alive;
            self.procs[i].state = Some(self.program.on_start(Pid(i)));
            self.stats.restarts += 1;
            events.push(FailureEvent { kind: FailureKind::Restart, pid: i, time: self.cycle + 1 });
        }
        // Failure events at this tick precede restart events at tick+1, so
        // pushing fails-then-restarts keeps the pattern time-ordered.
        self.pattern.extend(events);

        self.cycle += 1;
        self.stats.parallel_time = self.cycle;
        Ok(())
    }

    /// Merge one write slot under the machine's CRCW semantics and apply it.
    fn commit_slot(&mut self, observer: &mut dyn Observer) -> Result<()> {
        // Group writers by address; within an address the lowest PID comes
        // first, making ARBITRARY/PRIORITY resolution "first writer wins".
        self.slot_writes.sort_by_key(|&(pid, addr, _)| (addr, pid));
        let mut i = 0;
        while i < self.slot_writes.len() {
            let (pid, addr, value) = self.slot_writes[i];
            let mut j = i + 1;
            let chosen = (pid, value);
            while j < self.slot_writes.len() {
                let (pid2, addr2, value2) = self.slot_writes[j];
                if addr2 != addr {
                    break;
                }
                match self.mode {
                    WriteMode::Common => {
                        if value2 != chosen.1 {
                            return Err(PramError::CommonWriteConflict {
                                addr,
                                cycle: self.cycle,
                                first: (chosen.0, chosen.1),
                                second: (pid2, value2),
                            });
                        }
                    }
                    WriteMode::Arbitrary | WriteMode::Priority => {
                        // chosen stays: lowest PID wins and writers are in
                        // PID order within equal addresses (see sort below).
                    }
                    WriteMode::Exclusive => {
                        return Err(PramError::ExclusiveWriteConflict { addr, cycle: self.cycle });
                    }
                }
                j += 1;
            }
            self.mem.store(addr, chosen.1)?;
            observer.event(TraceEvent::Commit { cycle: self.cycle, addr, value: chosen.1 });
            i = j;
        }
        Ok(())
    }
}

/// Tentatively play one update cycle for processor `pid` against `mem`.
///
/// Returns `None` if the processor is not alive. On success the processor's
/// *post-cycle* private state is parked in its slot; `apply` drops it if the
/// adversary interrupts the cycle (the model has no partial-progress private
/// memory: a failed processor loses its state entirely, a surviving one
/// adopts the post-cycle state).
fn tentative_for<P: Program>(
    program: &P,
    mem: &SharedMemory,
    budget: CycleBudget,
    cycle: u64,
    pid: Pid,
    slot: &mut ProcSlot<P::Private>,
) -> Result<Option<TentativeCycle>> {
    if slot.status != ProcStatus::Alive {
        return Ok(None);
    }
    let mut state = slot.state.clone().expect("alive processor must have private state");
    // Drive the plan chain: reads within a cycle may depend on values read
    // earlier in the same cycle (ordinary sequential instructions).
    let mut all_reads = ReadSet::default();
    let mut values: Vec<crate::word::Word> = Vec::new();
    loop {
        let mut batch = ReadSet::default();
        program.plan(pid, &state, &values, &mut batch);
        if batch.is_empty() {
            break;
        }
        if all_reads.len() + batch.len() > budget.reads {
            return Err(PramError::BudgetExceeded {
                pid,
                cycle,
                kind: BudgetKind::Reads,
                used: all_reads.len() + batch.len(),
                limit: budget.reads,
            });
        }
        for &addr in batch.addrs() {
            if addr >= mem.size() {
                return Err(PramError::AddressOutOfBounds { addr, size: mem.size() });
            }
            values.push(mem.peek(addr));
            all_reads.push(addr);
        }
    }
    let reads = all_reads;
    let mut writes = WriteSet::default();
    let step = program.execute(pid, &mut state, &values, &mut writes);
    if writes.len() > budget.writes {
        return Err(PramError::BudgetExceeded {
            pid,
            cycle,
            kind: BudgetKind::Writes,
            used: writes.len(),
            limit: budget.writes,
        });
    }
    for &(addr, _) in writes.writes() {
        if addr >= mem.size() {
            return Err(PramError::AddressOutOfBounds { addr, size: mem.size() });
        }
    }
    slot.state = Some(state);
    Ok(Some(TentativeCycle { reads, values, writes, halts: matches!(step, Step::Halt) }))
}

impl<'p, P> Machine<'p, P>
where
    P: Program + Sync,
    P::Private: Send,
{
    /// Like [`Machine::run_with_limits`], but the tentative phase of every
    /// tick is computed by `threads` worker threads over disjoint processor
    /// ranges (the adversary and commit phases stay serial, preserving the
    /// exact semantics and determinism of the sequential engine).
    ///
    /// This is the "real concurrency" backend: results are bit-identical to
    /// [`Machine::run`] for the same program and adversary.
    ///
    /// # Errors
    ///
    /// See [`PramError`]. Additionally [`PramError::InvalidConfig`] if
    /// `threads == 0`.
    pub fn run_threaded<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        threads: usize,
    ) -> Result<RunReport> {
        self.run_threaded_observed(adversary, limits, threads, &mut NoopObserver)
    }

    /// [`Machine::run_threaded`] with an event stream: shares the
    /// sequential engine's run loop ([`Machine::run_observed`]), so for the
    /// same program and adversary both backends emit the **identical**
    /// sequence of [`TraceEvent`]s — only the tentative phase is farmed out
    /// to worker threads.
    ///
    /// # Errors
    ///
    /// See [`PramError`]. Additionally [`PramError::InvalidConfig`] if
    /// `threads == 0`.
    pub fn run_threaded_observed<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        threads: usize,
        observer: &mut dyn Observer,
    ) -> Result<RunReport> {
        if threads == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one thread".into() });
        }
        self.run_core(adversary, limits, observer, |m| m.tentative_phase_threaded(threads))
    }

    /// Parallel tentative phase: processors are split into `threads` chunks,
    /// each handled by a scoped worker against the shared tick-start memory.
    fn tentative_phase_threaded(&mut self, threads: usize) -> Result<()> {
        let p = self.procs.len();
        let chunk = p.div_ceil(threads);
        let (program, mem, budget, cycle) = (self.program, &self.mem, self.budget, self.cycle);
        let first_err: std::sync::Mutex<Option<PramError>> = std::sync::Mutex::new(None);
        std::thread::scope(|scope| {
            for (ci, (proc_chunk, tent_chunk)) in
                self.procs.chunks_mut(chunk).zip(self.tentative.chunks_mut(chunk)).enumerate()
            {
                let first_err = &first_err;
                scope.spawn(move || {
                    let base = ci * chunk;
                    for (k, (slot, out)) in
                        proc_chunk.iter_mut().zip(tent_chunk.iter_mut()).enumerate()
                    {
                        match tentative_for(program, mem, budget, cycle, Pid(base + k), slot) {
                            Ok(t) => *out = t,
                            Err(e) => {
                                let mut guard =
                                    first_err.lock().expect("tentative worker panicked");
                                if guard.is_none() {
                                    *guard = Some(e);
                                }
                                return;
                            }
                        }
                    }
                });
            }
        });
        match first_err.into_inner().expect("tentative worker panicked") {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Decisions, NoFailures};
    use crate::Program;

    /// Each processor repeatedly increments its own cell until it reaches
    /// `target`, then halts.
    struct Counter {
        n: usize,
        target: Word,
    }

    impl Program for Counter {
        type Private = ();
        fn shared_size(&self) -> usize {
            self.n
        }
        fn on_start(&self, _pid: Pid) {}
        fn plan(&self, pid: Pid, _st: &(), values: &[Word], reads: &mut ReadSet) {
            if values.is_empty() {
                reads.push(pid.0);
            }
        }
        fn execute(&self, pid: Pid, _st: &mut (), vals: &[Word], writes: &mut WriteSet) -> Step {
            if vals[0] >= self.target {
                return Step::Halt;
            }
            writes.push(pid.0, vals[0] + 1);
            Step::Continue
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            (0..self.n).all(|i| mem.peek(i) >= self.target)
        }
    }

    #[test]
    fn counter_completes_without_failures() {
        let prog = Counter { n: 4, target: 3 };
        let mut m = Machine::new(&prog, 4, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed);
        // 3 increments per processor; completion is detected before the
        // halting cycle runs.
        assert_eq!(report.stats.completed_cycles, 12);
        assert_eq!(report.stats.parallel_time, 3);
        assert!(report.pattern.is_empty());
        assert_eq!(m.memory().peek(0), 3);
    }

    /// Adversary that fails processor 1 before its writes in cycle 0 and
    /// restarts it for cycle 2.
    struct OneHiccup;
    impl Adversary for OneHiccup {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            if view.cycle == 0 {
                d.fail(Pid(1), FailPoint::BeforeWrites);
            }
            if view.cycle == 1 {
                d.restart(Pid(1));
            }
            d
        }
    }

    #[test]
    fn failure_discards_writes_and_is_not_charged() {
        let prog = Counter { n: 2, target: 2 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut OneHiccup).unwrap();
        // P0: 2 increments plus a charged halting cycle. P1: loses cycle 0,
        // idle cycle 1, increments in cycles 2 and 3.
        assert_eq!(m.memory().peek(0), 2);
        assert_eq!(m.memory().peek(1), 2);
        assert_eq!(report.stats.interrupted_cycles, 1);
        assert_eq!(report.stats.failures, 1);
        assert_eq!(report.stats.restarts, 1);
        assert_eq!(report.stats.pattern_size(), 2);
        assert_eq!(report.stats.completed_cycles, 5);
        assert_eq!(report.stats.parallel_time, 4);
        // S' = S + interrupted.
        assert_eq!(report.stats.s_prime(), 6);
    }

    /// Write-conflict program: both processors write different values to
    /// cell 0.
    struct Clash;
    impl Program for Clash {
        type Private = ();
        fn shared_size(&self) -> usize {
            1
        }
        fn on_start(&self, _pid: Pid) {}
        fn plan(&self, _pid: Pid, _st: &(), _vals: &[Word], _reads: &mut ReadSet) {}
        fn execute(&self, pid: Pid, _st: &mut (), _v: &[Word], writes: &mut WriteSet) -> Step {
            writes.push(0, pid.0 as Word + 1);
            Step::Halt
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            mem.peek(0) != 0
        }
    }

    #[test]
    fn common_mode_detects_conflicts() {
        let prog = Clash;
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut NoFailures).unwrap_err();
        assert!(matches!(err, PramError::CommonWriteConflict { addr: 0, .. }));
    }

    #[test]
    fn arbitrary_mode_lowest_pid_wins() {
        let prog = Clash;
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        m.set_write_mode(WriteMode::Arbitrary);
        m.run(&mut NoFailures).unwrap();
        assert_eq!(m.memory().peek(0), 1); // P0's value
    }

    #[test]
    fn exclusive_mode_rejects_concurrent_writes() {
        let prog = Clash;
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        m.set_write_mode(WriteMode::Exclusive);
        let err = m.run(&mut NoFailures).unwrap_err();
        assert!(matches!(err, PramError::ExclusiveWriteConflict { addr: 0, .. }));
    }

    /// Adversary failing everyone mid-cycle — must be rejected.
    struct KillAll;
    impl Adversary for KillAll {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            for pid in view.active_pids() {
                d.fail(pid, FailPoint::BeforeWrites);
            }
            d
        }
    }

    #[test]
    fn stalling_adversary_is_rejected() {
        let prog = Counter { n: 2, target: 1 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut KillAll).unwrap_err();
        assert_eq!(err, PramError::AdversaryStall { cycle: 0 });
    }

    /// A program that halts immediately without completing — deadlock.
    struct GiveUp;
    impl Program for GiveUp {
        type Private = ();
        fn shared_size(&self) -> usize {
            1
        }
        fn on_start(&self, _pid: Pid) {}
        fn plan(&self, _pid: Pid, _st: &(), _vals: &[Word], _reads: &mut ReadSet) {}
        fn execute(&self, _pid: Pid, _st: &mut (), _v: &[Word], _w: &mut WriteSet) -> Step {
            Step::Halt
        }
        fn is_complete(&self, _mem: &SharedMemory) -> bool {
            false
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let prog = GiveUp;
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut NoFailures).unwrap_err();
        assert!(matches!(err, PramError::Deadlock { .. }));
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let prog = Counter { n: 1, target: 1_000 };
        let mut m = Machine::new(&prog, 1, CycleBudget::PAPER).unwrap();
        let err = m.run_with_limits(&mut NoFailures, RunLimits { max_cycles: 10 }).unwrap_err();
        assert_eq!(err, PramError::CycleLimit { cycles: 10 });
    }

    /// Failing after the final write both commits and charges the cycle.
    struct FailAfterFinalWrite;
    impl Adversary for FailAfterFinalWrite {
        fn decide(&mut self, view: &MachineView<'_>) -> Decisions {
            let mut d = Decisions::none();
            if view.cycle == 0 {
                if let Some(t) = view.tentative[1].as_ref() {
                    d.fail(Pid(1), FailPoint::AfterWrite(t.writes.len()));
                    d.restart(Pid(1));
                }
            }
            d
        }
    }

    #[test]
    fn fail_after_last_write_still_charges_cycle() {
        let prog = Counter { n: 2, target: 2 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        let report = m.run(&mut FailAfterFinalWrite).unwrap();
        assert_eq!(m.memory().peek(1), 2);
        assert_eq!(report.stats.interrupted_cycles, 0);
        assert_eq!(report.stats.failures, 1);
        // P1's cycle-0 write committed even though it then failed.
        assert_eq!(report.stats.completed_cycles, 4);
    }

    #[test]
    fn budget_violation_is_reported() {
        struct Greedy;
        impl Program for Greedy {
            type Private = ();
            fn shared_size(&self) -> usize {
                8
            }
            fn on_start(&self, _pid: Pid) {}
            fn plan(&self, _pid: Pid, _st: &(), _vals: &[Word], reads: &mut ReadSet) {
                for a in 0..5 {
                    reads.push(a);
                }
            }
            fn execute(&self, _p: Pid, _s: &mut (), _v: &[Word], _w: &mut WriteSet) -> Step {
                Step::Halt
            }
            fn is_complete(&self, _mem: &SharedMemory) -> bool {
                false
            }
        }
        let prog = Greedy;
        let mut m = Machine::new(&prog, 1, CycleBudget::PAPER).unwrap();
        let err = m.run(&mut NoFailures).unwrap_err();
        assert!(matches!(
            err,
            PramError::BudgetExceeded { kind: BudgetKind::Reads, used: 5, limit: 4, .. }
        ));
    }

    #[test]
    fn threaded_run_matches_sequential() {
        let prog = Counter { n: 16, target: 5 };
        let mut seq = Machine::new(&prog, 16, CycleBudget::PAPER).unwrap();
        let seq_report = seq.run(&mut OneHiccup).unwrap();
        let mut par = Machine::new(&prog, 16, CycleBudget::PAPER).unwrap();
        let par_report = par.run_threaded(&mut OneHiccup, RunLimits::default(), 4).unwrap();
        assert_eq!(seq_report.stats, par_report.stats);
        assert_eq!(seq_report.pattern, par_report.pattern);
        assert_eq!(seq.memory().as_slice(), par.memory().as_slice());
    }

    #[test]
    fn threaded_run_rejects_zero_threads() {
        let prog = Counter { n: 2, target: 1 };
        let mut m = Machine::new(&prog, 2, CycleBudget::PAPER).unwrap();
        assert!(matches!(
            m.run_threaded(&mut NoFailures, RunLimits::default(), 0),
            Err(PramError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn zero_processors_is_invalid() {
        let prog = Counter { n: 1, target: 1 };
        assert!(matches!(
            Machine::new(&prog, 0, CycleBudget::PAPER),
            Err(PramError::InvalidConfig { .. })
        ));
    }
}
