//! Error type for machine execution.

use std::error::Error;
use std::fmt;

use crate::word::Pid;

/// Everything that can go wrong while running a program on the machine.
///
/// Most variants indicate a *bug in the program or adversary under test*
/// (budget violations, illegal adversary decisions, COMMON-mode write
/// conflicts); [`PramError::CycleLimit`] is the one "expected" failure mode,
/// used by experiments to demonstrate non-terminating executions (e.g.
/// algorithm W under restarts, §4.1 of the paper).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PramError {
    /// A processor planned more reads or emitted more writes than the
    /// machine's [`CycleBudget`](crate::CycleBudget) allows.
    BudgetExceeded { pid: Pid, cycle: u64, kind: BudgetKind, used: usize, limit: usize },
    /// A shared-memory access was out of bounds.
    AddressOutOfBounds { addr: usize, size: usize },
    /// Two processors concurrently wrote *different* values to the same cell
    /// under COMMON CRCW semantics (the model of the paper's algorithms).
    CommonWriteConflict { addr: usize, cycle: u64, first: (Pid, u64), second: (Pid, u64) },
    /// A concurrent write occurred under EREW/CREW-style checking.
    ExclusiveWriteConflict { addr: usize, cycle: u64 },
    /// The adversary named a processor outside `0..P`, failed an already
    /// failed processor, or restarted an alive one.
    InvalidAdversaryDecision { cycle: u64, detail: String },
    /// The adversary's decisions left no processor completing an update
    /// cycle this tick, violating the model requirement (§2.1, condition
    /// 2(i)) that at any time at least one processor is executing an update
    /// cycle that successfully completes.
    AdversaryStall { cycle: u64 },
    /// Every processor is failed or halted but the program's completion
    /// predicate is false: the algorithm has deadlocked (a program bug —
    /// restartable algorithms must cope with any legal fault pattern).
    Deadlock { cycle: u64 },
    /// The run exceeded [`RunLimits::max_cycles`](crate::RunLimits).
    CycleLimit { cycles: u64 },
    /// Invalid machine configuration (e.g. zero processors).
    InvalidConfig { detail: String },
    /// A worker thread of the pooled engine panicked while playing a
    /// processor's tentative cycle. `pid` names the processor whose cycle
    /// was in flight when the panic fired, if the panic could be attributed
    /// to one; `detail` carries the panic payload. The panic is *caught*:
    /// the machine stays consistent, and
    /// [`PanicPolicy::FallbackSequential`](crate::PanicPolicy) can even
    /// finish the run on the sequential engine.
    WorkerPanic { pid: Option<Pid>, detail: String },
    /// A checkpoint could not be saved or restored (version mismatch,
    /// wrong machine shape, undecodable private state).
    Checkpoint { detail: String },
}

/// Which half of the cycle budget was violated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetKind {
    Reads,
    Writes,
}

impl fmt::Display for PramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PramError::BudgetExceeded { pid, cycle, kind, used, limit } => {
                let what = match kind {
                    BudgetKind::Reads => "reads",
                    BudgetKind::Writes => "writes",
                };
                write!(f, "{pid} used {used} {what} in cycle {cycle}, budget is {limit}")
            }
            PramError::AddressOutOfBounds { addr, size } => {
                write!(f, "shared address {addr} out of bounds for memory of {size} cells")
            }
            PramError::CommonWriteConflict { addr, cycle, first, second } => write!(
                f,
                "COMMON write conflict at cell {addr} in cycle {cycle}: {} wrote {}, {} wrote {}",
                first.0, first.1, second.0, second.1
            ),
            PramError::ExclusiveWriteConflict { addr, cycle } => {
                write!(f, "exclusive-write conflict at cell {addr} in cycle {cycle}")
            }
            PramError::InvalidAdversaryDecision { cycle, detail } => {
                write!(f, "invalid adversary decision in cycle {cycle}: {detail}")
            }
            PramError::AdversaryStall { cycle } => write!(
                f,
                "adversary left no completing processor in cycle {cycle} (violates model condition 2(i))"
            ),
            PramError::Deadlock { cycle } => write!(
                f,
                "deadlock in cycle {cycle}: all processors halted or failed but the program is incomplete"
            ),
            PramError::CycleLimit { cycles } => {
                write!(f, "execution exceeded the cycle limit of {cycles}")
            }
            PramError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            PramError::WorkerPanic { pid, detail } => match pid {
                Some(pid) => {
                    write!(f, "worker thread panicked while executing {pid}'s cycle: {detail}")
                }
                None => write!(f, "worker thread panicked: {detail}"),
            },
            PramError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
        }
    }
}

impl Error for PramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PramError::CommonWriteConflict {
            addr: 7,
            cycle: 3,
            first: (Pid(0), 1),
            second: (Pid(2), 9),
        };
        let msg = e.to_string();
        assert!(msg.contains("cell 7"));
        assert!(msg.contains("P2"));
        assert!(msg.contains("wrote 9"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(PramError::CycleLimit { cycles: 10 });
    }
}
