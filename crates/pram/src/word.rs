//! Fundamental machine quantities: memory words and processor identifiers.
//!
//! The paper assumes shared-memory cells hold `O(log max{N, P})` bits; a
//! 64-bit [`Word`] comfortably covers every input size this crate can
//! simulate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A shared-memory word. All memory cells and register values are `Word`s.
pub type Word = u64;

/// A permanent processor identifier in the range `0..P`.
///
/// Per the paper (§2.1), a processor always knows its own `Pid` and the
/// total processor count `P`; after a failure the `Pid` is the *only*
/// knowledge that survives.
///
/// ```
/// use rfsp_pram::Pid;
/// let pid = Pid(5);
/// assert_eq!(pid.bit_msb_first(5, 8), 1); // 5 = 101b; bit 0 is the MSB
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Pid(pub usize);

impl Pid {
    /// The `index`-th bit of this PID, where bit 0 is the **most
    /// significant** of the `bits`-bit binary representation.
    ///
    /// This is the `PID[log(where)]` indexing convention of the paper's
    /// Algorithm X pseudocode (Figure 5): at tree depth `l` the processor
    /// inspects bit `l`, counting from the most significant of its
    /// `log N`-bit PID.
    ///
    /// # Panics
    ///
    /// Panics if `index >= bits` or `bits > 64`.
    #[inline]
    pub fn bit_msb_first(self, index: u32, bits: u32) -> u64 {
        assert!(bits <= 64, "at most 64 PID bits are representable");
        assert!(index < bits, "bit index {index} out of range for {bits} bits");
        ((self.0 as u64) >> (bits - 1 - index)) & 1
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for Pid {
    fn from(v: usize) -> Self {
        Pid(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msb_first_bits() {
        // 6 = 110 with 3 bits.
        let p = Pid(6);
        assert_eq!(p.bit_msb_first(0, 3), 1);
        assert_eq!(p.bit_msb_first(1, 3), 1);
        assert_eq!(p.bit_msb_first(2, 3), 0);
    }

    #[test]
    fn msb_first_leading_zeros() {
        // 1 = 0001 with 4 bits.
        let p = Pid(1);
        assert_eq!(p.bit_msb_first(0, 4), 0);
        assert_eq!(p.bit_msb_first(1, 4), 0);
        assert_eq!(p.bit_msb_first(2, 4), 0);
        assert_eq!(p.bit_msb_first(3, 4), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn msb_first_rejects_out_of_range() {
        Pid(0).bit_msb_first(3, 3);
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Pid::from(3).to_string(), "P3");
    }
}
