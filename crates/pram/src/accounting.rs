//! Completed-work accounting (Definitions 2.2 and 2.3 of the paper).
//!
//! * **Completed work** `S = c · Σᵢ Pᵢ(I, F)`: at each tick `i`, every
//!   processor that *completes* its update cycle is charged one cycle
//!   (`c = 1` cycle unit here; [`WorkStats::charged_instructions`] also
//!   reports the instruction-granular variant).
//! * `S'` additionally counts interrupted cycles; Remark 2 of the paper
//!   notes `S' ≤ S + |F|`, which [`WorkStats::s_prime`] lets experiments
//!   verify.
//! * **Overhead ratio** `σ = max S / (|I| + |F|)` amortizes work over the
//!   input size and the failure-pattern size.

use serde::{Deserialize, Serialize};

use crate::failure::FailurePattern;

/// Work and fault counters accumulated over a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct WorkStats {
    /// Completed update cycles — the paper's `S` with `c = 1`.
    pub completed_cycles: u64,
    /// Update cycles that were started but interrupted by a failure.
    pub interrupted_cycles: u64,
    /// Instructions (reads + compute + writes) inside completed cycles.
    pub charged_instructions: u64,
    /// Instructions executed inside interrupted cycles before the stop.
    pub partial_instructions: u64,
    /// Failure events.
    pub failures: u64,
    /// Restart events.
    pub restarts: u64,
    /// Parallel time: ticks elapsed.
    pub parallel_time: u64,
}

impl WorkStats {
    /// Completed work `S` in update cycles.
    pub fn completed_work(&self) -> u64 {
        self.completed_cycles
    }

    /// `S'`: work including interrupted cycles (each interrupted cycle
    /// charged as one cycle, per Remark 2).
    pub fn s_prime(&self) -> u64 {
        self.completed_cycles + self.interrupted_cycles
    }

    /// `|F|`: size of the failure pattern (failures + restarts).
    pub fn pattern_size(&self) -> u64 {
        self.failures + self.restarts
    }

    /// Overhead ratio `σ = S / (n + |F|)` for input size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` and the pattern is empty (the paper's measure is
    /// defined for non-degenerate inputs).
    pub fn overhead_ratio(&self, n: u64) -> f64 {
        let denom = n + self.pattern_size();
        assert!(denom > 0, "overhead ratio undefined for empty input and pattern");
        self.completed_work() as f64 / denom as f64
    }
}

/// How a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The program's completion predicate became true.
    Completed,
}

/// Everything a [`Machine::run`](crate::Machine::run) produces.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Work and fault counters.
    pub stats: WorkStats,
    /// The failure pattern `F` the adversary actually produced, replayable
    /// via [`ScheduledAdversary`](crate::ScheduledAdversary). The pattern is
    /// **moved** out of the machine when the report is built (adversarial
    /// patterns can be large), so the machine starts a fresh pattern if run
    /// again.
    pub pattern: FailurePattern,
    /// Completed update cycles charged to each processor (indexed by PID):
    /// the per-processor decomposition of `S`, useful for load-balance
    /// analysis of the allocation strategies.
    pub per_processor: Vec<u64>,
}

impl RunReport {
    /// Convenience: completed work `S`.
    pub fn completed_work(&self) -> u64 {
        self.stats.completed_work()
    }

    /// Convenience: overhead ratio for input size `n`.
    pub fn overhead_ratio(&self, n: u64) -> f64 {
        self.stats.overhead_ratio(n)
    }

    /// Load imbalance: the busiest processor's share of `S` divided by the
    /// perfectly balanced share `S/P` (1.0 = perfect balance).
    ///
    /// # Panics
    ///
    /// Panics on a run with zero completed work.
    pub fn load_imbalance(&self) -> f64 {
        let s = self.stats.completed_work();
        assert!(s > 0, "load imbalance undefined for an idle run");
        let max = *self.per_processor.iter().max().expect("at least one processor");
        max as f64 * self.per_processor.len() as f64 / s as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_compose() {
        let stats = WorkStats {
            completed_cycles: 90,
            interrupted_cycles: 10,
            charged_instructions: 400,
            partial_instructions: 13,
            failures: 6,
            restarts: 4,
            parallel_time: 25,
        };
        assert_eq!(stats.completed_work(), 90);
        assert_eq!(stats.s_prime(), 100);
        assert_eq!(stats.pattern_size(), 10);
        let sigma = stats.overhead_ratio(20);
        assert!((sigma - 3.0).abs() < 1e-12);
    }

    #[test]
    fn remark_2_bound_shape() {
        // S' <= S + |F| whenever each interruption stems from one failure.
        let stats = WorkStats {
            completed_cycles: 50,
            interrupted_cycles: 7,
            failures: 7,
            restarts: 0,
            ..Default::default()
        };
        assert!(stats.s_prime() <= stats.completed_work() + stats.pattern_size());
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn overhead_ratio_rejects_degenerate() {
        WorkStats::default().overhead_ratio(0);
    }
}
