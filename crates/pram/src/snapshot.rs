//! The *snapshot model*: unit-cost whole-memory reads.
//!
//! The paper's lower bound (Theorem 3.1) is proved under — and its matching
//! upper bound (Theorem 3.2) stated in — an unrealistically strong model
//! where a processor "can read and locally process the entire shared memory
//! at unit cost". This module provides that machine: a
//! [`SnapshotMachine`] runs [`SnapshotProgram`]s whose update cycle is
//! *snapshot the whole memory, compute, write a bounded number of cells*.
//!
//! The same [`Adversary`] interface drives it (the adversary still sees the
//! pending writes of each processor before deciding), and the same
//! completed-work accounting applies: one completed snapshot cycle = one
//! work unit. Snapshot reads are **uncharged** in the memory's
//! instrumentation counters ([`SharedMemory::read_count`]): the model's
//! whole-memory read has unit cost by assumption, so per-cell read
//! accounting is meaningless here (the word-model [`Machine`](crate::Machine)
//! does charge its reads).
//!
//! Since PR 5 the machine is a thin wrapper over the model-generic
//! [`Core`](crate::exec::Core): this module contributes only the *snapshot
//! model* — the free whole-memory read phase and its `S'` charging rule —
//! while the run loop, adversary validation, COMMON write merging,
//! accounting and failure-pattern recording are the exact same code the
//! word machine runs. That buys the snapshot machine everything the word
//! engine had grown separately: [`Observer`] event streams
//! ([`SnapshotMachine::run_observed`]), pausable runs
//! ([`SnapshotMachine::run_controlled`]) and versioned checkpoint
//! save/restore — all byte-identical in behavior to the pre-unification
//! engine (pinned by `tests/golden_equivalence.rs`).
//!
//! The engine remains allocation-free in steady state: per-tick buffers
//! live in the core and are reused, private states advance in place, and
//! the [`FailurePattern`](crate::FailurePattern) is returned by move.
//! Programs that implement [`SnapshotProgram::completion_hint`]
//! additionally get an incremental [`UnvisitedIndex`] over the outstanding
//! cells, maintained from committed writes in O(writes) per tick. The index
//! replaces the O(N) `is_complete` scan with an O(1) emptiness test and is
//! exposed to programs through the [`SnapshotView`] (and to adversaries
//! through [`MachineView::unvisited`](crate::MachineView)), so the §3
//! algorithms and adversaries stop rescanning memory every tick. Debug
//! builds cross-check the index against the full scan after every tick.

use serde::{Deserialize, Serialize};

use crate::accounting::RunReport;
use crate::adversary::{Adversary, TentativeCycle};
use crate::checkpoint::Checkpoint;
use crate::cycle::{Step, WriteSet};
use crate::error::{BudgetKind, PramError};
use crate::exec::{Core, ExecutionModel, RunControl, RunLimits, RunStatus, SeqBackend};
use crate::memory::{MemoryLayout, SharedMemory};
use crate::mode::WriteMode;
use crate::trace::{NoopObserver, Observer};
use crate::unvisited::UnvisitedIndex;
use crate::word::{Pid, Word};
use crate::{CompletionHint, Result};

pub mod reference;

/// What a snapshot program sees during one update cycle: the entire shared
/// memory (the model's unit-cost snapshot) plus, when the machine maintains
/// one, the incremental index of outstanding cells.
///
/// The convenience accessors [`unvisited_count_in`](SnapshotView::unvisited_count_in)
/// and [`nth_unvisited_in`](SnapshotView::nth_unvisited_in) answer the §3
/// algorithms' per-cycle question — "how many unvisited cells remain in the
/// region, and which is the k-th?" — in O(log N)/O(1) with the index, and
/// by an allocation-free O(N) scan without it. The scan defines *unvisited*
/// as the Write-All convention `cell == 0`; an indexed program must
/// classify cells the same way in its
/// [`completion_hint`](SnapshotProgram::completion_hint) (debug builds
/// assert the two paths agree on every call).
#[derive(Clone, Copy, Debug)]
pub struct SnapshotView<'a> {
    mem: &'a SharedMemory,
    unvisited: Option<&'a UnvisitedIndex>,
}

impl<'a> SnapshotView<'a> {
    /// A view with no index: every accessor falls back to scanning `mem`.
    pub fn bare(mem: &'a SharedMemory) -> Self {
        SnapshotView { mem, unvisited: None }
    }

    /// A view backed by an unvisited-cell index (must be clean and
    /// consistent with `mem`).
    pub fn with_index(mem: &'a SharedMemory, index: &'a UnvisitedIndex) -> Self {
        SnapshotView { mem, unvisited: Some(index) }
    }

    /// The whole shared memory (the snapshot itself).
    pub fn mem(&self) -> &'a SharedMemory {
        self.mem
    }

    /// One cell of the snapshot.
    #[inline]
    pub fn peek(&self, addr: usize) -> Word {
        self.mem.peek(addr)
    }

    /// Number of shared cells.
    pub fn size(&self) -> usize {
        self.mem.size()
    }

    /// The incremental unvisited-cell index, when the machine maintains one
    /// (i.e. the program implements
    /// [`completion_hint`](SnapshotProgram::completion_hint)).
    pub fn unvisited(&self) -> Option<&'a UnvisitedIndex> {
        self.unvisited
    }

    /// Number of unvisited (`== 0`) cells in `region`: O(log N) with the
    /// index, O(region) scan without.
    pub fn unvisited_count_in(&self, region: crate::Region) -> usize {
        match self.unvisited {
            Some(idx) => {
                let count = idx.count_in(region);
                debug_assert_eq!(
                    count,
                    self.scan_count(region),
                    "unvisited index count diverged from the full scan"
                );
                count
            }
            None => self.scan_count(region),
        }
    }

    /// Address of the `k`-th unvisited (`== 0`) cell of `region` in
    /// position order, if it exists: O(1) with the index (after the range
    /// lookup), O(region) scan without.
    pub fn nth_unvisited_in(&self, region: crate::Region, k: usize) -> Option<usize> {
        match self.unvisited {
            Some(idx) => {
                let got = idx.slice_in(region).get(k);
                debug_assert_eq!(
                    got,
                    self.scan_nth(region, k),
                    "unvisited index select diverged from the full scan"
                );
                got
            }
            None => self.scan_nth(region, k),
        }
    }

    // The scan fallbacks run inside the tentative phase, so they iterate
    // the memory's bank-aligned chunks ([`SharedMemory::chunks`]): each
    // chunk is one contiguous slice of its bank, avoiding a per-address
    // bank mapping on banked layouts (and a per-address bounds check on
    // flat ones).

    fn scan_count(&self, region: crate::Region) -> usize {
        let mut count = 0;
        for (_, cells) in self.region_chunks(region) {
            count += cells.iter().filter(|&&v| v == 0).count();
        }
        count
    }

    fn scan_nth(&self, region: crate::Region, mut k: usize) -> Option<usize> {
        for (base, cells) in self.region_chunks(region) {
            for (off, &v) in cells.iter().enumerate() {
                if v == 0 {
                    if k == 0 {
                        return Some(base + off);
                    }
                    k -= 1;
                }
            }
        }
        None
    }

    /// The memory's bank-aligned chunks clipped to `region`, in ascending
    /// address order.
    fn region_chunks(
        &self,
        region: crate::Region,
    ) -> impl Iterator<Item = (usize, &'a [Word])> + 'a {
        let (start, end) = (region.base(), region.base() + region.len());
        self.mem
            .chunks()
            .skip_while(move |&(base, cells)| base + cells.len() <= start)
            .take_while(move |&(base, _)| base < end)
            .map(move |(base, cells)| {
                let lo = start.max(base) - base;
                let hi = (end.min(base + cells.len())) - base;
                (base + lo, &cells[lo..hi])
            })
    }
}

/// An algorithm for the snapshot model: each cycle it sees the entire
/// shared memory and emits a bounded number of writes.
pub trait SnapshotProgram {
    /// Per-processor private memory; lost on failure.
    type Private: Clone + Send;

    /// Number of shared memory cells.
    fn shared_size(&self) -> usize;

    /// One-time input initialization.
    fn init_memory(&self, _mem: &mut SharedMemory) {}

    /// Fresh private state (start and restart).
    fn on_start(&self, pid: Pid) -> Self::Private;

    /// One snapshot update cycle: read everything, compute, write.
    fn execute(
        &self,
        pid: Pid,
        state: &mut Self::Private,
        view: &SnapshotView<'_>,
        writes: &mut WriteSet,
    ) -> Step;

    /// Global completion predicate (uncharged).
    fn is_complete(&self, mem: &SharedMemory) -> bool;

    /// Optional per-cell decomposition of
    /// [`is_complete`](SnapshotProgram::is_complete), with the same
    /// contract as [`Program::completion_hint`](crate::Program::completion_hint)
    /// (purity, value-independent tracking, equivalence with
    /// `is_complete`). A program that opts in gets the O(1) completion test
    /// *and* the incremental [`UnvisitedIndex`] over its
    /// [`Outstanding`](CompletionHint::Outstanding) cells, exposed through
    /// [`SnapshotView`] and [`MachineView::unvisited`](crate::MachineView).
    fn completion_hint(&self, _addr: usize, _value: Word) -> CompletionHint {
        CompletionHint::Untracked
    }

    /// Batched [`completion_hint`](SnapshotProgram::completion_hint) over
    /// one lane of at most 64 contiguous cells — same contract and same
    /// default as [`Program::completion_masks`](crate::Program::completion_masks):
    /// returns `(outstanding, tracked)` bit masks where bit `j` describes
    /// cell `base + j`, and must agree cell-wise with `completion_hint`.
    fn completion_masks(&self, base: usize, values: &[Word]) -> (u64, u64) {
        crate::fold_completion_masks(base, values, |addr, value| self.completion_hint(addr, value))
    }
}

/// The snapshot model's [`ExecutionModel`]: a free whole-memory read
/// followed by a budgeted write phase, with `S'` charging only committed
/// writes (the snapshot and the local computation are free until the cycle
/// completes).
#[derive(Debug)]
struct SnapModel<'p, P: SnapshotProgram> {
    program: &'p P,
    write_budget: usize,
}

impl<'p, P: SnapshotProgram> ExecutionModel for SnapModel<'p, P> {
    type Private = P::Private;

    const MODEL: &'static str = "snapshot";
    // The §3 adversaries are defined on the unvisited set; expose the
    // tracker's index through `MachineView::unvisited`.
    const ADVERSARY_SEES_INDEX: bool = true;

    fn on_start(&self, pid: Pid) -> P::Private {
        self.program.on_start(pid)
    }

    fn is_complete(&self, mem: &SharedMemory) -> bool {
        self.program.is_complete(mem)
    }

    fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint {
        self.program.completion_hint(addr, value)
    }

    fn completion_masks(&self, base: usize, values: &[Word]) -> (u64, u64) {
        self.program.completion_masks(base, values)
    }

    /// Every alive processor tentatively plays its cycle against the
    /// tick-start snapshot, advancing its private state **in place** (a
    /// non-completing snapshot cycle only ever belongs to a processor the
    /// adversary stopped, whose private state is discarded anyway).
    fn tentative(&self, core: &mut Core<P::Private>) -> Result<()> {
        let program = self.program;
        let (budget, cycle, size) = (self.write_budget, core.cycle, core.mem.size());
        let view = SnapshotView {
            mem: &core.mem,
            unvisited: if core.tracked { Some(&core.unvisited) } else { None },
        };
        let statuses = &core.procs.status;
        for (i, (state, out)) in
            core.procs.state.iter_mut().zip(core.tentative.iter_mut()).enumerate()
        {
            if statuses[i] != crate::adversary::ProcStatus::Alive {
                *out = None;
                continue;
            }
            let state = state.as_mut().expect("alive processor has private state");
            let t = out.get_or_insert_with(TentativeCycle::default);
            t.reads.clear();
            t.values.clear();
            t.writes.clear();
            let step = program.execute(Pid(i), state, &view, &mut t.writes);
            if t.writes.len() > budget {
                return Err(PramError::BudgetExceeded {
                    pid: Pid(i),
                    cycle,
                    kind: BudgetKind::Writes,
                    used: t.writes.len(),
                    limit: budget,
                });
            }
            for &(addr, _) in t.writes.writes() {
                if addr >= size {
                    return Err(PramError::AddressOutOfBounds { addr, size });
                }
            }
            t.halts = matches!(step, Step::Halt);
        }
        Ok(())
    }

    fn partial_instructions(_t: &TentativeCycle, committed_writes: usize) -> u64 {
        // The whole-memory read and the local computation are free by
        // assumption; an interrupted cycle is charged only its committed
        // write prefix.
        committed_writes as u64
    }

    fn checkpoint_budget(&self) -> (usize, usize) {
        // No read budget in this model.
        (0, self.write_budget)
    }
}

/// Executor for the snapshot model. Mirrors [`Machine`](crate::Machine)
/// with the read phase replaced by a free whole-memory snapshot; both are
/// wrappers over the same [`Core`](crate::exec::Core).
#[derive(Debug)]
pub struct SnapshotMachine<'p, P: SnapshotProgram> {
    model: SnapModel<'p, P>,
    core: Core<P::Private>,
}

impl<'p, P: SnapshotProgram> SnapshotMachine<'p, P> {
    /// Build a snapshot machine with `processors` processors and the given
    /// per-cycle write budget (the paper's exposition uses 2; Theorem 3.2's
    /// algorithm needs only 1).
    ///
    /// # Errors
    ///
    /// [`PramError::InvalidConfig`] if `processors == 0` or
    /// `write_budget == 0`.
    pub fn new(program: &'p P, processors: usize, write_budget: usize) -> Result<Self> {
        Self::with_layout(program, processors, write_budget, MemoryLayout::Flat)
    }

    /// [`SnapshotMachine::new`] with an explicit [`MemoryLayout`] — the
    /// snapshot counterpart of
    /// [`Machine::with_layout`](crate::Machine::with_layout); the layout
    /// changes only where cells physically live and which bank counters
    /// writes charge (snapshot reads stay uncharged).
    ///
    /// # Errors
    ///
    /// As [`SnapshotMachine::new`], plus [`PramError::InvalidConfig`] for
    /// invalid layout parameters.
    pub fn with_layout(
        program: &'p P,
        processors: usize,
        write_budget: usize,
        layout: MemoryLayout,
    ) -> Result<Self> {
        if processors == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one processor".into() });
        }
        if write_budget == 0 {
            return Err(PramError::InvalidConfig {
                detail: "write budget must be positive".into(),
            });
        }
        let mut mem = SharedMemory::with_layout(program.shared_size(), layout)?;
        program.init_memory(&mut mem);
        let model = SnapModel { program, write_budget };
        // The §3 snapshot algorithms are COMMON-legal; the machine always
        // checks COMMON semantics.
        let core = Core::new(&model, processors, mem, SNAPSHOT_WRITE_MODE, write_budget);
        Ok(SnapshotMachine { model, core })
    }

    /// Override the batched-kernel lane width — the snapshot counterpart of
    /// [`Machine::set_batch_width`](crate::Machine::set_batch_width), with
    /// the same contract: `1` selects the scalar reference path, any other
    /// value the lane-mask batched path; behavior is identical either way.
    pub fn set_batch_width(&mut self, width: usize) -> &mut Self {
        self.core.batch_width = width.max(1);
        self
    }

    /// The shared memory (uncharged inspection).
    pub fn memory(&self) -> &SharedMemory {
        &self.core.mem
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &crate::accounting::WorkStats {
        &self.core.stats
    }

    /// Current tick.
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// Run to completion under `adversary`.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run<A: Adversary>(&mut self, adversary: &mut A) -> Result<RunReport> {
        self.run_with_limits(adversary, RunLimits::default())
    }

    /// Run with explicit limits.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_with_limits<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
    ) -> Result<RunReport> {
        self.run_observed(adversary, limits, &mut NoopObserver)
    }

    /// Like [`SnapshotMachine::run_with_limits`], streaming every machine
    /// event — cycle completions, failures, restarts, committed writes — to
    /// `observer` (see [`crate::trace`]). The event vocabulary is shared
    /// with the word machine, so one trace/telemetry pipeline serves both
    /// models.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_observed<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
    ) -> Result<RunReport> {
        let SnapshotMachine { model, core } = self;
        core.run_to_completion(model, adversary, limits, observer, &mut SeqBackend)
    }

    /// Run under `adversary` until completion **or** until `control`
    /// requests a pause at a tick boundary — the snapshot counterpart of
    /// [`Machine::run_controlled`](crate::Machine::run_controlled), with
    /// the same pause/checkpoint/resume contract.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_controlled<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
        control: impl FnMut(u64) -> RunControl,
    ) -> Result<RunStatus> {
        let SnapshotMachine { model, core } = self;
        core.run_loop(model, adversary, limits, observer, &mut SeqBackend, control)
    }

    /// Execute exactly one tick under `adversary` (no completion check).
    /// Exposed for fine-grained tests and lock-step drivers; the completion
    /// tracker is kept consistent, so ticks and runs interleave freely.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn tick<A: Adversary>(&mut self, adversary: &mut A) -> Result<()> {
        self.tick_observed(adversary, &mut NoopObserver)
    }

    /// [`SnapshotMachine::tick`] with an event stream.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn tick_observed<A: Adversary>(
        &mut self,
        adversary: &mut A,
        observer: &mut dyn Observer,
    ) -> Result<()> {
        self.core.tick_observed(&self.model, adversary, observer)
    }
}

impl<'p, P> SnapshotMachine<'p, P>
where
    P: SnapshotProgram,
    P::Private: Serialize + Deserialize,
{
    /// Snapshot the machine (and `adversary`) at the current tick boundary
    /// into a versioned [`Checkpoint`] tagged `"snapshot"` — same format
    /// and same contract as
    /// [`Machine::save_checkpoint`](crate::Machine::save_checkpoint); the
    /// model tag keeps word and snapshot checkpoints from being restored
    /// into each other.
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] if the adversary is not checkpointable.
    pub fn save_checkpoint<A: Adversary>(&self, adversary: &A) -> Result<Checkpoint> {
        self.core.save_checkpoint(&self.model, adversary)
    }

    /// Load `ck` into this machine and `adversary`, resuming the
    /// checkpointed run at its tick boundary. Everything is validated
    /// **before** anything is mutated, so a failed restore leaves machine
    /// and adversary untouched.
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] on a version, model or shape mismatch, an
    /// undecodable private state, an illegal recorded failure pattern, or
    /// an adversary that refuses the saved state.
    pub fn restore_checkpoint<A: Adversary>(
        &mut self,
        ck: &Checkpoint,
        adversary: &mut A,
    ) -> Result<()> {
        self.core.restore_checkpoint(&self.model, ck, adversary)
    }
}

/// A [`WriteMode`] re-export note: the snapshot machine always checks COMMON
/// semantics, which is what the §3 algorithms require.
pub const SNAPSHOT_WRITE_MODE: WriteMode = WriteMode::Common;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::RunOutcome;
    use crate::adversary::NoFailures;
    use crate::word::Word;

    /// Trivial snapshot Write-All: each processor writes the first unwritten
    /// cell it is responsible for.
    struct Direct {
        n: usize,
    }

    impl SnapshotProgram for Direct {
        type Private = ();
        fn shared_size(&self) -> usize {
            self.n
        }
        fn on_start(&self, _pid: Pid) {}
        fn execute(
            &self,
            pid: Pid,
            _st: &mut (),
            view: &SnapshotView<'_>,
            writes: &mut WriteSet,
        ) -> Step {
            // Snapshot power: scan everything, pick the pid-th unvisited.
            let unvisited: Vec<usize> = (0..self.n).filter(|&i| view.peek(i) == 0).collect();
            if unvisited.is_empty() {
                return Step::Halt;
            }
            let k = pid.0 % unvisited.len();
            writes.push(unvisited[k], 1);
            Step::Continue
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            (0..self.n).all(|i| mem.peek(i) == 1)
        }
    }

    /// `Direct` with a completion hint: same behaviour, but the machine
    /// maintains the unvisited index (and debug-asserts it against the full
    /// scan every tick).
    struct Hinted {
        n: usize,
    }

    impl SnapshotProgram for Hinted {
        type Private = ();
        fn shared_size(&self) -> usize {
            self.n
        }
        fn on_start(&self, _pid: Pid) {}
        fn execute(
            &self,
            pid: Pid,
            _st: &mut (),
            view: &SnapshotView<'_>,
            writes: &mut WriteSet,
        ) -> Step {
            let idx = view.unvisited().expect("hinted program gets an index");
            if idx.is_empty() {
                return Step::Halt;
            }
            writes.push(idx.select(pid.0 % idx.len()), 1);
            Step::Continue
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            (0..self.n).all(|i| mem.peek(i) == 1)
        }
        fn completion_hint(&self, _addr: usize, value: Word) -> CompletionHint {
            if value == 1 {
                CompletionHint::Satisfied
            } else {
                CompletionHint::Outstanding
            }
        }
    }

    #[test]
    fn snapshot_write_all_completes() {
        let prog = Direct { n: 16 };
        let mut m = SnapshotMachine::new(&prog, 16, 1).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert!(m.memory().as_slice().iter().all(|&v| v == 1));
        // With P = N and full snapshots, one cycle suffices.
        assert_eq!(report.stats.parallel_time, 1);
    }

    #[test]
    fn snapshot_accounting_counts_cycles() {
        let prog = Direct { n: 8 };
        let mut m = SnapshotMachine::new(&prog, 2, 1).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        // Two processors write disjoint cells each cycle (pid % len picks
        // positions 0 and 1), so 4 cycles of 2 completions each.
        assert_eq!(report.stats.completed_cycles, 8);
        assert_eq!(report.stats.parallel_time, 4);
        let _ = report.stats.overhead_ratio(8 as Word);
    }

    #[test]
    fn indexed_run_matches_scanning_run() {
        let scan = Direct { n: 24 };
        let mut m1 = SnapshotMachine::new(&scan, 5, 1).unwrap();
        let r1 = m1.run(&mut NoFailures).unwrap();
        let hinted = Hinted { n: 24 };
        let mut m2 = SnapshotMachine::new(&hinted, 5, 1).unwrap();
        let r2 = m2.run(&mut NoFailures).unwrap();
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.per_processor, r2.per_processor);
        assert_eq!(m1.memory().as_slice(), m2.memory().as_slice());
    }

    #[test]
    fn completed_report_moves_pattern_out() {
        let prog = Direct { n: 4 };
        let mut m = SnapshotMachine::new(&prog, 4, 1).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert!(report.pattern.is_empty());
        // A continuation run on the same machine starts a fresh pattern.
        assert!(m.core.pattern.is_empty());
    }

    #[test]
    fn snapshot_reads_are_uncharged() {
        let prog = Hinted { n: 8 };
        let mut m = SnapshotMachine::new(&prog, 4, 1).unwrap();
        m.run(&mut NoFailures).unwrap();
        // Whole-memory snapshots have unit cost by assumption; the per-cell
        // read counter stays untouched (the word machine does charge).
        assert_eq!(m.memory().read_count(), 0);
        assert_eq!(m.memory().write_count(), 8);
    }

    #[test]
    fn zero_write_budget_rejected() {
        let prog = Direct { n: 2 };
        assert!(matches!(SnapshotMachine::new(&prog, 1, 0), Err(PramError::InvalidConfig { .. })));
    }
}
