//! The *snapshot model*: unit-cost whole-memory reads.
//!
//! The paper's lower bound (Theorem 3.1) is proved under — and its matching
//! upper bound (Theorem 3.2) stated in — an unrealistically strong model
//! where a processor "can read and locally process the entire shared memory
//! at unit cost". This module provides that machine: a
//! [`SnapshotMachine`] runs [`SnapshotProgram`]s whose update cycle is
//! *snapshot the whole memory, compute, write a bounded number of cells*.
//!
//! The same [`Adversary`] interface drives it (the adversary still sees the
//! pending writes of each processor before deciding), and the same
//! completed-work accounting applies: one completed snapshot cycle = one
//! work unit. Snapshot reads are **uncharged** in the memory's
//! instrumentation counters ([`SharedMemory::read_count`]): the model's
//! whole-memory read has unit cost by assumption, so per-cell read
//! accounting is meaningless here (the word-model [`Machine`](crate::Machine)
//! does charge its reads).
//!
//! Like the word machine since PR 2, the engine is allocation-free in
//! steady state: per-tick buffers are hoisted onto the machine and reused,
//! private states advance in place, and the [`FailurePattern`] is returned
//! by move. Programs that implement
//! [`SnapshotProgram::completion_hint`] additionally get an incremental
//! [`UnvisitedIndex`] over the outstanding cells, maintained from committed
//! writes in O(writes) per tick. The index replaces the O(N) `is_complete`
//! scan with an O(1) emptiness test and is exposed to programs through the
//! [`SnapshotView`] (and to adversaries through
//! [`MachineView::unvisited`]), so the §3 algorithms and adversaries stop
//! rescanning memory every tick. Debug builds cross-check the index against
//! the full scan after every tick.

use crate::accounting::{RunOutcome, RunReport, WorkStats};
use crate::adversary::{Adversary, FailPoint, MachineView, ProcMeta, ProcStatus, TentativeCycle};
use crate::cycle::{Step, WriteSet};
use crate::error::{BudgetKind, PramError};
use crate::failure::{FailureEvent, FailureKind, FailurePattern};
use crate::machine::RunLimits;
use crate::memory::SharedMemory;
use crate::mode::WriteMode;
use crate::unvisited::UnvisitedIndex;
use crate::word::{Pid, Word};
use crate::{CompletionHint, Result};

pub mod reference;

/// What a snapshot program sees during one update cycle: the entire shared
/// memory (the model's unit-cost snapshot) plus, when the machine maintains
/// one, the incremental index of outstanding cells.
///
/// The convenience accessors [`unvisited_count_in`](SnapshotView::unvisited_count_in)
/// and [`nth_unvisited_in`](SnapshotView::nth_unvisited_in) answer the §3
/// algorithms' per-cycle question — "how many unvisited cells remain in the
/// region, and which is the k-th?" — in O(log N)/O(1) with the index, and
/// by an allocation-free O(N) scan without it. The scan defines *unvisited*
/// as the Write-All convention `cell == 0`; an indexed program must
/// classify cells the same way in its
/// [`completion_hint`](SnapshotProgram::completion_hint) (debug builds
/// assert the two paths agree on every call).
#[derive(Clone, Copy, Debug)]
pub struct SnapshotView<'a> {
    mem: &'a SharedMemory,
    unvisited: Option<&'a UnvisitedIndex>,
}

impl<'a> SnapshotView<'a> {
    /// A view with no index: every accessor falls back to scanning `mem`.
    pub fn bare(mem: &'a SharedMemory) -> Self {
        SnapshotView { mem, unvisited: None }
    }

    /// A view backed by an unvisited-cell index (must be clean and
    /// consistent with `mem`).
    pub fn with_index(mem: &'a SharedMemory, index: &'a UnvisitedIndex) -> Self {
        SnapshotView { mem, unvisited: Some(index) }
    }

    /// The whole shared memory (the snapshot itself).
    pub fn mem(&self) -> &'a SharedMemory {
        self.mem
    }

    /// One cell of the snapshot.
    #[inline]
    pub fn peek(&self, addr: usize) -> Word {
        self.mem.peek(addr)
    }

    /// Number of shared cells.
    pub fn size(&self) -> usize {
        self.mem.size()
    }

    /// The incremental unvisited-cell index, when the machine maintains one
    /// (i.e. the program implements
    /// [`completion_hint`](SnapshotProgram::completion_hint)).
    pub fn unvisited(&self) -> Option<&'a UnvisitedIndex> {
        self.unvisited
    }

    /// Number of unvisited (`== 0`) cells in `region`: O(log N) with the
    /// index, O(region) scan without.
    pub fn unvisited_count_in(&self, region: crate::Region) -> usize {
        match self.unvisited {
            Some(idx) => {
                let count = idx.count_in(region);
                debug_assert_eq!(
                    count,
                    self.scan_count(region),
                    "unvisited index count diverged from the full scan"
                );
                count
            }
            None => self.scan_count(region),
        }
    }

    /// Address of the `k`-th unvisited (`== 0`) cell of `region` in
    /// position order, if it exists: O(1) with the index (after the range
    /// lookup), O(region) scan without.
    pub fn nth_unvisited_in(&self, region: crate::Region, k: usize) -> Option<usize> {
        match self.unvisited {
            Some(idx) => {
                let got = idx.slice_in(region).get(k).copied();
                debug_assert_eq!(
                    got,
                    self.scan_nth(region, k),
                    "unvisited index select diverged from the full scan"
                );
                got
            }
            None => self.scan_nth(region, k),
        }
    }

    fn scan_count(&self, region: crate::Region) -> usize {
        (0..region.len()).filter(|&i| self.mem.peek(region.at(i)) == 0).count()
    }

    fn scan_nth(&self, region: crate::Region, k: usize) -> Option<usize> {
        (0..region.len()).map(|i| region.at(i)).filter(|&a| self.mem.peek(a) == 0).nth(k)
    }
}

/// An algorithm for the snapshot model: each cycle it sees the entire
/// shared memory and emits a bounded number of writes.
pub trait SnapshotProgram {
    /// Per-processor private memory; lost on failure.
    type Private: Clone + Send;

    /// Number of shared memory cells.
    fn shared_size(&self) -> usize;

    /// One-time input initialization.
    fn init_memory(&self, _mem: &mut SharedMemory) {}

    /// Fresh private state (start and restart).
    fn on_start(&self, pid: Pid) -> Self::Private;

    /// One snapshot update cycle: read everything, compute, write.
    fn execute(
        &self,
        pid: Pid,
        state: &mut Self::Private,
        view: &SnapshotView<'_>,
        writes: &mut WriteSet,
    ) -> Step;

    /// Global completion predicate (uncharged).
    fn is_complete(&self, mem: &SharedMemory) -> bool;

    /// Optional per-cell decomposition of
    /// [`is_complete`](SnapshotProgram::is_complete), with the same
    /// contract as [`Program::completion_hint`](crate::Program::completion_hint)
    /// (purity, value-independent tracking, equivalence with
    /// `is_complete`). A program that opts in gets the O(1) completion test
    /// *and* the incremental [`UnvisitedIndex`] over its
    /// [`Outstanding`](CompletionHint::Outstanding) cells, exposed through
    /// [`SnapshotView`] and [`MachineView::unvisited`].
    fn completion_hint(&self, _addr: usize, _value: Word) -> CompletionHint {
        CompletionHint::Untracked
    }
}

/// Internal per-processor slot.
#[derive(Clone, Debug)]
struct Slot<S> {
    status: ProcStatus,
    state: Option<S>,
    completed: u64,
}

/// Outcome of one processor's snapshot cycle after the adversary's
/// decision. Unlike the word machine there is no `InterruptedBeforeReads`
/// variant: the snapshot is free, so a cycle stopped before any write is
/// charged zero partial work wherever the fail point fell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SnapshotFate {
    /// Not active this tick (failed or halted at tick start).
    Idle,
    /// Completed the whole cycle (possibly failed *after* completing).
    Completed,
    /// Stopped with this many of its writes committed.
    Interrupted { committed_writes: usize },
}

/// Executor for the snapshot model. Mirrors [`Machine`](crate::Machine)
/// with the read phase replaced by a free whole-memory snapshot.
#[derive(Debug)]
pub struct SnapshotMachine<'p, P: SnapshotProgram> {
    program: &'p P,
    mem: SharedMemory,
    write_budget: usize,
    procs: Vec<Slot<P::Private>>,
    cycle: u64,
    stats: WorkStats,
    pattern: FailurePattern,
    // Incremental completion tracking (see `SnapshotProgram::completion_hint`):
    // whether the program opted in, and the index of outstanding cells.
    // Primed at construction and re-primed at every run entry.
    tracked: bool,
    unvisited: UnvisitedIndex,
    // Reused per-tick buffers.
    tentative: Vec<Option<TentativeCycle>>,
    meta: Vec<ProcMeta>,
    fates: Vec<SnapshotFate>,
    slot_writes: Vec<(Pid, usize, Word)>,
    failed_now: Vec<bool>,
    fail_points: Vec<Option<FailPoint>>,
    restarted: Vec<bool>,
    events: Vec<FailureEvent>,
}

impl<'p, P: SnapshotProgram> SnapshotMachine<'p, P> {
    /// Build a snapshot machine with `processors` processors and the given
    /// per-cycle write budget (the paper's exposition uses 2; Theorem 3.2's
    /// algorithm needs only 1).
    ///
    /// # Errors
    ///
    /// [`PramError::InvalidConfig`] if `processors == 0` or
    /// `write_budget == 0`.
    pub fn new(program: &'p P, processors: usize, write_budget: usize) -> Result<Self> {
        if processors == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one processor".into() });
        }
        if write_budget == 0 {
            return Err(PramError::InvalidConfig {
                detail: "write budget must be positive".into(),
            });
        }
        let mut mem = SharedMemory::new(program.shared_size());
        program.init_memory(&mut mem);
        let procs: Vec<Slot<P::Private>> = (0..processors)
            .map(|i| Slot {
                status: ProcStatus::Alive,
                state: Some(program.on_start(Pid(i))),
                completed: 0,
            })
            .collect();
        let mut machine = SnapshotMachine {
            program,
            mem,
            write_budget,
            procs,
            cycle: 0,
            stats: WorkStats::default(),
            pattern: FailurePattern::new(),
            tracked: false,
            unvisited: UnvisitedIndex::new(0),
            tentative: vec![None; processors],
            meta: Vec::with_capacity(processors),
            fates: vec![SnapshotFate::Idle; processors],
            slot_writes: Vec::new(),
            failed_now: vec![false; processors],
            fail_points: vec![None; processors],
            restarted: vec![false; processors],
            events: Vec::new(),
        };
        machine.init_index();
        Ok(machine)
    }

    /// The shared memory (uncharged inspection).
    pub fn memory(&self) -> &SharedMemory {
        &self.mem
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WorkStats {
        &self.stats
    }

    /// Run to completion under `adversary`.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run<A: Adversary>(&mut self, adversary: &mut A) -> Result<RunReport> {
        self.run_with_limits(adversary, RunLimits::default())
    }

    /// Run with explicit limits.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_with_limits<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
    ) -> Result<RunReport> {
        self.init_index();
        loop {
            if self.completion_reached() {
                return Ok(self.take_completed_report());
            }
            if self.cycle >= limits.max_cycles {
                return Err(PramError::CycleLimit { cycles: limits.max_cycles });
            }
            self.tick(adversary)?;
        }
    }

    /// Execute exactly one tick under `adversary` (no completion check).
    /// Exposed for fine-grained tests and lock-step drivers; the index is
    /// kept consistent, so ticks and runs interleave freely.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn tick<A: Adversary>(&mut self, adversary: &mut A) -> Result<()> {
        self.tentative_phase()?;
        let decisions = self.collect_decisions(adversary);
        self.apply(decisions)
    }

    /// Classify every shared cell via
    /// [`SnapshotProgram::completion_hint`] and prime the unvisited index.
    /// The program is *tracked* iff it reports at least one tracked cell;
    /// untracked programs keep the full-scan completion check and get no
    /// index.
    fn init_index(&mut self) {
        let (program, mem) = (self.program, &self.mem);
        let mut any_tracked = false;
        self.unvisited.rebuild(mem.size(), |addr| {
            match program.completion_hint(addr, mem.peek(addr)) {
                CompletionHint::Untracked => false,
                CompletionHint::Outstanding => {
                    any_tracked = true;
                    true
                }
                CompletionHint::Satisfied => {
                    any_tracked = true;
                    false
                }
            }
        });
        self.tracked = any_tracked;
    }

    /// O(1) completion test for tracked programs (the index is empty), full
    /// scan otherwise. Debug builds cross-check the index against
    /// `is_complete`.
    fn completion_reached(&self) -> bool {
        if self.tracked {
            let done = self.unvisited.is_empty();
            debug_assert_eq!(
                done,
                self.program.is_complete(&self.mem),
                "unvisited index diverged from is_complete at tick {} \
                 ({} cells outstanding) — the hint contract is violated",
                self.cycle,
                self.unvisited.len(),
            );
            done
        } else {
            self.program.is_complete(&self.mem)
        }
    }

    /// Build the completed-run report. As in the word machine, the failure
    /// pattern is **moved** out (it can be megabytes on adversarial runs);
    /// the machine's own pattern is left empty, so a continuation run
    /// records a fresh pattern.
    fn take_completed_report(&mut self) -> RunReport {
        RunReport {
            outcome: RunOutcome::Completed,
            stats: self.stats,
            pattern: std::mem::take(&mut self.pattern),
            per_processor: self.procs.iter().map(|s| s.completed).collect(),
        }
    }

    /// Phase 1: every alive processor tentatively plays its cycle against
    /// the tick-start snapshot, advancing its private state **in place**
    /// (a non-completing snapshot cycle only ever belongs to a processor
    /// the adversary stopped, whose private state is discarded anyway).
    fn tentative_phase(&mut self) -> Result<()> {
        let program = self.program;
        let (budget, cycle, size) = (self.write_budget, self.cycle, self.mem.size());
        let view = SnapshotView {
            mem: &self.mem,
            unvisited: if self.tracked { Some(&self.unvisited) } else { None },
        };
        for (i, (slot, out)) in self.procs.iter_mut().zip(self.tentative.iter_mut()).enumerate() {
            if slot.status != ProcStatus::Alive {
                *out = None;
                continue;
            }
            let state = slot.state.as_mut().expect("alive processor has private state");
            let t = out.get_or_insert_with(TentativeCycle::default);
            t.reads.clear();
            t.values.clear();
            t.writes.clear();
            let step = program.execute(Pid(i), state, &view, &mut t.writes);
            if t.writes.len() > budget {
                return Err(PramError::BudgetExceeded {
                    pid: Pid(i),
                    cycle,
                    kind: BudgetKind::Writes,
                    used: t.writes.len(),
                    limit: budget,
                });
            }
            for &(addr, _) in t.writes.writes() {
                if addr >= size {
                    return Err(PramError::AddressOutOfBounds { addr, size });
                }
            }
            t.halts = matches!(step, Step::Halt);
        }
        Ok(())
    }

    /// Phase 2a: present the machine to the adversary (including the
    /// unvisited index, when tracked) and collect its decisions.
    fn collect_decisions<A: Adversary>(
        &mut self,
        adversary: &mut A,
    ) -> crate::adversary::Decisions {
        self.meta.clear();
        self.meta.extend(self.procs.iter().enumerate().map(|(i, s)| ProcMeta {
            pid: Pid(i),
            status: s.status,
            completed_cycles: s.completed,
        }));
        let view = MachineView {
            cycle: self.cycle,
            processors: self.procs.len(),
            mem: &self.mem,
            procs: &self.meta,
            tentative: &self.tentative,
            unvisited: if self.tracked { Some(&self.unvisited) } else { None },
        };
        adversary.decide(&view)
    }

    /// Phases 2b/3: validate the adversary's decisions, merge surviving
    /// write prefixes slot by slot, charge work, fold commits into the
    /// unvisited index, record the failure pattern, apply restarts.
    fn apply(&mut self, decisions: crate::adversary::Decisions) -> Result<()> {
        let p = self.procs.len();
        // --- Validate failures and compute each processor's fate. ---
        for (i, fate) in self.fates.iter_mut().enumerate() {
            *fate = if self.tentative[i].is_some() {
                SnapshotFate::Completed
            } else {
                SnapshotFate::Idle
            };
        }
        self.failed_now.fill(false);
        self.fail_points.fill(None);
        for &(pid, point) in &decisions.fails {
            if pid.0 >= p || self.failed_now[pid.0] {
                return Err(PramError::InvalidAdversaryDecision {
                    cycle: self.cycle,
                    detail: format!("bad failure target {pid}"),
                });
            }
            match self.procs[pid.0].status {
                ProcStatus::Failed => {
                    return Err(PramError::InvalidAdversaryDecision {
                        cycle: self.cycle,
                        detail: format!("failure of already failed {pid}"),
                    });
                }
                ProcStatus::Halted => {
                    // No cycle in flight; the processor simply stops.
                    self.failed_now[pid.0] = true;
                    self.fail_points[pid.0] = Some(point);
                }
                ProcStatus::Alive => {
                    let len = self.tentative[pid.0].as_ref().map_or(0, |t| t.writes.len());
                    let committed = match point {
                        FailPoint::BeforeReads | FailPoint::BeforeWrites => 0,
                        FailPoint::AfterWrite(k) => {
                            if k == 0 || k > len {
                                return Err(PramError::InvalidAdversaryDecision {
                                    cycle: self.cycle,
                                    detail: format!("{pid}: bad fail point"),
                                });
                            }
                            k
                        }
                    };
                    self.failed_now[pid.0] = true;
                    self.fail_points[pid.0] = Some(point);
                    // Failing after the final write of a non-empty cycle
                    // means the cycle completed (and is charged) before the
                    // processor stopped; a cycle stopped at zero committed
                    // writes is interrupted even when it had no writes.
                    self.fates[pid.0] = if committed == len && committed > 0 {
                        SnapshotFate::Completed
                    } else {
                        SnapshotFate::Interrupted { committed_writes: committed }
                    };
                }
            }
        }
        // --- Validate restarts. ---
        self.restarted.fill(false);
        for &pid in &decisions.restarts {
            let failed = pid.0 < p
                && (self.procs[pid.0].status == ProcStatus::Failed || self.failed_now[pid.0]);
            if !failed || self.restarted[pid.0] {
                return Err(PramError::InvalidAdversaryDecision {
                    cycle: self.cycle,
                    detail: format!("bad restart target {pid}"),
                });
            }
            self.restarted[pid.0] = true;
        }

        // --- Progress condition (§2.1 2(i)). ---
        let any_active = self.tentative.iter().any(|t| t.is_some());
        let completing = self.fates.iter().filter(|&&f| f == SnapshotFate::Completed).count();
        if any_active && completing == 0 {
            return Err(PramError::AdversaryStall { cycle: self.cycle });
        }
        if !any_active {
            let any_failed = self.procs.iter().any(|s| s.status == ProcStatus::Failed);
            if any_failed && decisions.restarts.is_empty() {
                return Err(PramError::AdversaryStall { cycle: self.cycle });
            }
            if !any_failed {
                return Err(PramError::Deadlock { cycle: self.cycle });
            }
        }

        // --- Commit surviving write prefixes, slot by slot (COMMON
        // semantics: the snapshot algorithms of §3 are COMMON-legal). ---
        for slot in 0..self.write_budget {
            self.slot_writes.clear();
            for i in 0..p {
                let Some(t) = self.tentative[i].as_ref() else { continue };
                if slot >= t.writes.len() {
                    continue;
                }
                let survives = match self.fates[i] {
                    SnapshotFate::Completed => true,
                    SnapshotFate::Interrupted { committed_writes } => slot < committed_writes,
                    SnapshotFate::Idle => false,
                };
                if survives {
                    let (addr, value) = t.writes.writes()[slot];
                    self.slot_writes.push((Pid(i), addr, value));
                }
            }
            self.commit_slot()?;
        }

        // --- Charge work, update processor states, record the pattern. ---
        debug_assert!(self.events.is_empty());
        for i in 0..p {
            match self.fates[i] {
                SnapshotFate::Idle => {}
                SnapshotFate::Completed => {
                    let t = self.tentative[i].as_ref().expect("completed cycle exists");
                    self.stats.completed_cycles += 1;
                    self.stats.charged_instructions += (1 + t.writes.len()) as u64;
                    self.procs[i].completed += 1;
                    if t.halts {
                        self.procs[i].status = ProcStatus::Halted;
                    }
                    // The post-cycle private state is already in the slot
                    // (the tentative phase advances it in place).
                }
                SnapshotFate::Interrupted { committed_writes } => {
                    self.stats.interrupted_cycles += 1;
                    self.stats.partial_instructions += committed_writes as u64;
                }
            }
            if self.failed_now[i] {
                self.procs[i].status = ProcStatus::Failed;
                self.procs[i].state = None;
                self.stats.failures += 1;
                let point = self.fail_points[i].expect("failed processor has a recorded point");
                self.events.push(FailureEvent {
                    kind: FailureKind::Failure { point },
                    pid: i,
                    time: self.cycle,
                });
            }
        }
        for i in (0..p).filter(|&i| self.restarted[i]) {
            self.procs[i].status = ProcStatus::Alive;
            self.procs[i].state = Some(self.program.on_start(Pid(i)));
            self.stats.restarts += 1;
            self.events.push(FailureEvent {
                kind: FailureKind::Restart,
                pid: i,
                time: self.cycle + 1,
            });
        }
        // Failure events at this tick precede restart events at tick+1, so
        // pushing fails-then-restarts keeps the pattern time-ordered.
        self.pattern.extend(self.events.drain(..));
        self.cycle += 1;
        self.stats.parallel_time = self.cycle;

        // Restore the index's dense form for next tick's views, and
        // cross-check it against ground truth in debug builds.
        if self.tracked {
            self.unvisited.ensure_clean();
            debug_assert!(
                self.unvisited.matches(self.mem.size(), |addr| matches!(
                    self.program.completion_hint(addr, self.mem.peek(addr)),
                    CompletionHint::Outstanding
                )),
                "unvisited index diverged from the full scan after tick {}",
                self.cycle - 1,
            );
        }
        Ok(())
    }

    /// Merge one write slot under COMMON semantics, apply it, and fold each
    /// committed store into the unvisited index.
    fn commit_slot(&mut self) -> Result<()> {
        // (addr, pid) keys are unique, so the unstable sort is
        // deterministic.
        self.slot_writes.sort_unstable_by_key(|&(pid, addr, _)| (addr, pid));
        let mut i = 0;
        while i < self.slot_writes.len() {
            let (pid0, addr, v0) = self.slot_writes[i];
            let mut j = i + 1;
            while j < self.slot_writes.len() && self.slot_writes[j].1 == addr {
                if self.slot_writes[j].2 != v0 {
                    return Err(PramError::CommonWriteConflict {
                        addr,
                        cycle: self.cycle,
                        first: (pid0, v0),
                        second: (self.slot_writes[j].0, self.slot_writes[j].2),
                    });
                }
                j += 1;
            }
            if self.tracked {
                // Fold the committed write into the index *before* the
                // store (the old value is still visible).
                let old = self.program.completion_hint(addr, self.mem.peek(addr));
                let new = self.program.completion_hint(addr, v0);
                match (old, new) {
                    (CompletionHint::Outstanding, CompletionHint::Satisfied) => {
                        self.unvisited.remove(addr);
                    }
                    (CompletionHint::Satisfied, CompletionHint::Outstanding) => {
                        self.unvisited.insert(addr);
                    }
                    _ => {}
                }
            }
            self.mem.store(addr, v0)?;
            i = j;
        }
        Ok(())
    }
}

/// A [`WriteMode`] re-export note: the snapshot machine always checks COMMON
/// semantics, which is what the §3 algorithms require.
pub const SNAPSHOT_WRITE_MODE: WriteMode = WriteMode::Common;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoFailures;
    use crate::word::Word;

    /// Trivial snapshot Write-All: each processor writes the first unwritten
    /// cell it is responsible for.
    struct Direct {
        n: usize,
    }

    impl SnapshotProgram for Direct {
        type Private = ();
        fn shared_size(&self) -> usize {
            self.n
        }
        fn on_start(&self, _pid: Pid) {}
        fn execute(
            &self,
            pid: Pid,
            _st: &mut (),
            view: &SnapshotView<'_>,
            writes: &mut WriteSet,
        ) -> Step {
            // Snapshot power: scan everything, pick the pid-th unvisited.
            let unvisited: Vec<usize> = (0..self.n).filter(|&i| view.peek(i) == 0).collect();
            if unvisited.is_empty() {
                return Step::Halt;
            }
            let k = pid.0 % unvisited.len();
            writes.push(unvisited[k], 1);
            Step::Continue
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            (0..self.n).all(|i| mem.peek(i) == 1)
        }
    }

    /// `Direct` with a completion hint: same behaviour, but the machine
    /// maintains the unvisited index (and debug-asserts it against the full
    /// scan every tick).
    struct Hinted {
        n: usize,
    }

    impl SnapshotProgram for Hinted {
        type Private = ();
        fn shared_size(&self) -> usize {
            self.n
        }
        fn on_start(&self, _pid: Pid) {}
        fn execute(
            &self,
            pid: Pid,
            _st: &mut (),
            view: &SnapshotView<'_>,
            writes: &mut WriteSet,
        ) -> Step {
            let idx = view.unvisited().expect("hinted program gets an index");
            if idx.is_empty() {
                return Step::Halt;
            }
            writes.push(idx.select(pid.0 % idx.len()), 1);
            Step::Continue
        }
        fn is_complete(&self, mem: &SharedMemory) -> bool {
            (0..self.n).all(|i| mem.peek(i) == 1)
        }
        fn completion_hint(&self, _addr: usize, value: Word) -> CompletionHint {
            if value == 1 {
                CompletionHint::Satisfied
            } else {
                CompletionHint::Outstanding
            }
        }
    }

    #[test]
    fn snapshot_write_all_completes() {
        let prog = Direct { n: 16 };
        let mut m = SnapshotMachine::new(&prog, 16, 1).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert!(m.memory().as_slice().iter().all(|&v| v == 1));
        // With P = N and full snapshots, one cycle suffices.
        assert_eq!(report.stats.parallel_time, 1);
    }

    #[test]
    fn snapshot_accounting_counts_cycles() {
        let prog = Direct { n: 8 };
        let mut m = SnapshotMachine::new(&prog, 2, 1).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        // Two processors write disjoint cells each cycle (pid % len picks
        // positions 0 and 1), so 4 cycles of 2 completions each.
        assert_eq!(report.stats.completed_cycles, 8);
        assert_eq!(report.stats.parallel_time, 4);
        let _ = report.stats.overhead_ratio(8 as Word);
    }

    #[test]
    fn indexed_run_matches_scanning_run() {
        let scan = Direct { n: 24 };
        let mut m1 = SnapshotMachine::new(&scan, 5, 1).unwrap();
        let r1 = m1.run(&mut NoFailures).unwrap();
        let hinted = Hinted { n: 24 };
        let mut m2 = SnapshotMachine::new(&hinted, 5, 1).unwrap();
        let r2 = m2.run(&mut NoFailures).unwrap();
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.per_processor, r2.per_processor);
        assert_eq!(m1.memory().as_slice(), m2.memory().as_slice());
    }

    #[test]
    fn completed_report_moves_pattern_out() {
        let prog = Direct { n: 4 };
        let mut m = SnapshotMachine::new(&prog, 4, 1).unwrap();
        let report = m.run(&mut NoFailures).unwrap();
        assert!(report.pattern.is_empty());
        // A continuation run on the same machine starts a fresh pattern.
        assert!(m.pattern.is_empty());
    }

    #[test]
    fn snapshot_reads_are_uncharged() {
        let prog = Hinted { n: 8 };
        let mut m = SnapshotMachine::new(&prog, 4, 1).unwrap();
        m.run(&mut NoFailures).unwrap();
        // Whole-memory snapshots have unit cost by assumption; the per-cell
        // read counter stays untouched (the word machine does charge).
        assert_eq!(m.memory().read_count(), 0);
        assert_eq!(m.memory().write_count(), 8);
    }

    #[test]
    fn zero_write_budget_rejected() {
        let prog = Direct { n: 2 };
        assert!(matches!(SnapshotMachine::new(&prog, 1, 0), Err(PramError::InvalidConfig { .. })));
    }
}
