//! Update cycles: the unit of execution and accounting.
//!
//! An update cycle (paper §2.1) is a fixed-shape sequence: read a small
//! fixed number of shared cells, perform a fixed-time local computation, and
//! write a small fixed number of shared cells. The paper quotes budgets of
//! ≤ 4 reads and ≤ 2 writes as "sufficient for our exposition" while noting
//! the constants are instruction-set parameters; [`CycleBudget`] makes them
//! a machine parameter (the general PRAM simulation of §4.3 uses a slightly
//! wider cycle to move register words, see `rfsp-sim`).
//!
//! Because cycles are tiny *by model definition*, the per-cycle containers
//! ([`ReadSet`], [`WriteSet`], [`ValueSet`]) are inline fixed-capacity
//! arrays rather than heap vectors: filling them in the machine's hot loop
//! performs **zero heap allocations**. The capacities ([`MAX_READS`],
//! [`MAX_WRITES`]) bound every budget the workspace uses (the widest is the
//! interleaved PRAM-simulation cycle at 7 reads / 4 writes);
//! [`Machine::new`](crate::Machine::new) rejects budgets that exceed them.

use crate::word::Word;

/// Inline capacity of a [`ReadSet`] / [`ValueSet`]: every [`CycleBudget`]
/// must satisfy `reads <= MAX_READS`.
pub const MAX_READS: usize = 8;

/// Inline capacity of a [`WriteSet`]: every [`CycleBudget`] must satisfy
/// `writes <= MAX_WRITES`.
pub const MAX_WRITES: usize = 4;

/// Per-cycle read/write limits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CycleBudget {
    /// Maximum shared reads per update cycle.
    pub reads: usize,
    /// Maximum shared writes per update cycle.
    pub writes: usize,
}

impl CycleBudget {
    /// The paper's quoted budget: 4 reads, 2 writes.
    pub const PAPER: CycleBudget = CycleBudget { reads: 4, writes: 2 };

    /// A wider cycle used by the general PRAM simulation (moves a register
    /// word and a staged write per cycle): 6 reads, 3 writes.
    pub const SIMULATION: CycleBudget = CycleBudget { reads: 6, writes: 3 };

    /// Whether this budget fits the inline cycle buffers
    /// ([`MAX_READS`]/[`MAX_WRITES`]).
    pub fn fits_inline(self) -> bool {
        self.reads <= MAX_READS && self.writes <= MAX_WRITES
    }
}

impl Default for CycleBudget {
    fn default() -> Self {
        CycleBudget::PAPER
    }
}

/// The shared addresses a processor reads this cycle, in order.
///
/// Stored inline (capacity [`MAX_READS`], no heap). Pushes beyond the
/// capacity are *counted but not stored*: [`ReadSet::len`] keeps growing so
/// the machine's budget check (every budget fits the capacity) reports
/// [`BudgetExceeded`](crate::PramError::BudgetExceeded) instead of the
/// overflow being silently dropped.
#[derive(Clone, Copy, Eq)]
pub struct ReadSet {
    addrs: [usize; MAX_READS],
    len: usize,
}

impl Default for ReadSet {
    fn default() -> Self {
        ReadSet { addrs: [0; MAX_READS], len: 0 }
    }
}

impl ReadSet {
    /// Queue a read of absolute address `addr`. The corresponding value is
    /// delivered to [`Program::execute`](crate::Program::execute) at the
    /// same position.
    #[inline]
    pub fn push(&mut self, addr: usize) {
        if self.len < MAX_READS {
            self.addrs[self.len] = addr;
        }
        self.len += 1;
    }

    /// Addresses queued so far.
    #[inline]
    pub fn addrs(&self) -> &[usize] {
        &self.addrs[..self.len.min(MAX_READS)]
    }

    /// Number of queued reads (including any pushed past the inline
    /// capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no reads are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all queued reads (the buffer is reused in place).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl PartialEq for ReadSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.addrs() == other.addrs()
    }
}

impl std::fmt::Debug for ReadSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadSet").field("addrs", &self.addrs()).finish()
    }
}

/// The writes a processor emits this cycle, in order. Write *slots* matter:
/// the adversary may stop a processor after its first write but before its
/// second (word writes are atomic, failures fall between them).
///
/// Stored inline (capacity [`MAX_WRITES`], no heap); overflow semantics as
/// for [`ReadSet`].
#[derive(Clone, Copy, Eq)]
pub struct WriteSet {
    writes: [(usize, Word); MAX_WRITES],
    len: usize,
}

impl Default for WriteSet {
    fn default() -> Self {
        WriteSet { writes: [(0, 0); MAX_WRITES], len: 0 }
    }
}

impl WriteSet {
    /// Queue a write of `value` to absolute address `addr`.
    #[inline]
    pub fn push(&mut self, addr: usize, value: Word) {
        if self.len < MAX_WRITES {
            self.writes[self.len] = (addr, value);
        }
        self.len += 1;
    }

    /// `(address, value)` pairs queued so far.
    #[inline]
    pub fn writes(&self) -> &[(usize, Word)] {
        &self.writes[..self.len.min(MAX_WRITES)]
    }

    /// Number of queued writes (including any pushed past the inline
    /// capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no writes are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all queued writes (the buffer is reused in place).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl PartialEq for WriteSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.writes() == other.writes()
    }
}

impl std::fmt::Debug for WriteSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteSet").field("writes", &self.writes()).finish()
    }
}

/// The values returned by a cycle's reads, in request order. Inline
/// (capacity [`MAX_READS`], no heap); the machine only pushes values after
/// its budget check, so the capacity is never exceeded in practice.
///
/// Dereferences to `&[Word]`, so existing slice-style consumers
/// (`values[0]`, `values.len()`, iteration) work unchanged.
#[derive(Clone, Copy, Eq)]
pub struct ValueSet {
    vals: [Word; MAX_READS],
    len: usize,
}

impl Default for ValueSet {
    fn default() -> Self {
        ValueSet { vals: [0; MAX_READS], len: 0 }
    }
}

impl ValueSet {
    /// Append one read value.
    #[inline]
    pub fn push(&mut self, value: Word) {
        debug_assert!(self.len < MAX_READS, "value set overflow");
        if self.len < MAX_READS {
            self.vals[self.len] = value;
        }
        self.len += 1;
    }

    /// The values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Word] {
        &self.vals[..self.len.min(MAX_READS)]
    }

    /// Drop all values (the buffer is reused in place).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl std::ops::Deref for ValueSet {
    type Target = [Word];
    #[inline]
    fn deref(&self) -> &[Word] {
        self.as_slice()
    }
}

impl PartialEq for ValueSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for ValueSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl FromIterator<Word> for ValueSet {
    fn from_iter<I: IntoIterator<Item = Word>>(iter: I) -> Self {
        let mut v = ValueSet::default();
        for w in iter {
            v.push(w);
        }
        v
    }
}

/// What a processor's `execute` step decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Keep executing update cycles.
    Continue,
    /// Retire this processor: its local computation is finished. (A later
    /// restart re-enters the program from scratch.) The writes emitted in
    /// the same call are still committed — a halting cycle is an ordinary
    /// completed cycle.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets() {
        assert_eq!(CycleBudget::default(), CycleBudget::PAPER);
        assert_eq!(CycleBudget::PAPER.reads, 4);
        assert_eq!(CycleBudget::SIMULATION.writes, 3);
        assert!(CycleBudget::PAPER.fits_inline());
        assert!(CycleBudget::SIMULATION.fits_inline());
        assert!(!CycleBudget { reads: MAX_READS + 1, writes: 1 }.fits_inline());
        assert!(!CycleBudget { reads: 1, writes: MAX_WRITES + 1 }.fits_inline());
    }

    #[test]
    fn read_set_orders_addresses() {
        let mut r = ReadSet::default();
        r.push(9);
        r.push(2);
        assert_eq!(r.addrs(), &[9, 2]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.addrs(), &[] as &[usize]);
    }

    #[test]
    fn write_set_orders_slots() {
        let mut w = WriteSet::default();
        w.push(1, 10);
        w.push(0, 20);
        assert_eq!(w.writes(), &[(1, 10), (0, 20)]);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_is_counted_but_not_stored() {
        let mut r = ReadSet::default();
        for a in 0..MAX_READS + 3 {
            r.push(a);
        }
        assert_eq!(r.len(), MAX_READS + 3, "len reports the overflow");
        assert_eq!(r.addrs().len(), MAX_READS, "storage is capped");
        let mut w = WriteSet::default();
        for a in 0..MAX_WRITES + 2 {
            w.push(a, 1);
        }
        assert_eq!(w.len(), MAX_WRITES + 2);
        assert_eq!(w.writes().len(), MAX_WRITES);
    }

    #[test]
    fn value_set_derefs_to_slice() {
        let v: ValueSet = [3u64, 1, 4].into_iter().collect();
        assert_eq!(&v[..], &[3, 1, 4]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.first(), Some(&3));
    }

    #[test]
    fn equality_ignores_spare_capacity() {
        let mut a = ReadSet::default();
        let mut b = ReadSet::default();
        a.push(7);
        a.clear();
        a.push(1);
        b.push(1);
        assert_eq!(a, b, "stale cells past len must not affect equality");
    }
}
