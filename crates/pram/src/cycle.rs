//! Update cycles: the unit of execution and accounting.
//!
//! An update cycle (paper §2.1) is a fixed-shape sequence: read a small
//! fixed number of shared cells, perform a fixed-time local computation, and
//! write a small fixed number of shared cells. The paper quotes budgets of
//! ≤ 4 reads and ≤ 2 writes as "sufficient for our exposition" while noting
//! the constants are instruction-set parameters; [`CycleBudget`] makes them
//! a machine parameter (the general PRAM simulation of §4.3 uses a slightly
//! wider cycle to move register words, see `rfsp-sim`).

use crate::word::Word;

/// Per-cycle read/write limits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CycleBudget {
    /// Maximum shared reads per update cycle.
    pub reads: usize,
    /// Maximum shared writes per update cycle.
    pub writes: usize,
}

impl CycleBudget {
    /// The paper's quoted budget: 4 reads, 2 writes.
    pub const PAPER: CycleBudget = CycleBudget { reads: 4, writes: 2 };

    /// A wider cycle used by the general PRAM simulation (moves a register
    /// word and a staged write per cycle): 6 reads, 3 writes.
    pub const SIMULATION: CycleBudget = CycleBudget { reads: 6, writes: 3 };
}

impl Default for CycleBudget {
    fn default() -> Self {
        CycleBudget::PAPER
    }
}

/// The shared addresses a processor reads this cycle, in order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ReadSet {
    addrs: Vec<usize>,
}

impl ReadSet {
    /// Queue a read of absolute address `addr`. The corresponding value is
    /// delivered to [`Program::execute`](crate::Program::execute) at the
    /// same position.
    #[inline]
    pub fn push(&mut self, addr: usize) {
        self.addrs.push(addr);
    }

    /// Addresses queued so far.
    pub fn addrs(&self) -> &[usize] {
        &self.addrs
    }

    /// Number of queued reads.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether no reads are queued.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// The writes a processor emits this cycle, in order. Write *slots* matter:
/// the adversary may stop a processor after its first write but before its
/// second (word writes are atomic, failures fall between them).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WriteSet {
    writes: Vec<(usize, Word)>,
}

impl WriteSet {
    /// Queue a write of `value` to absolute address `addr`.
    #[inline]
    pub fn push(&mut self, addr: usize, value: Word) {
        self.writes.push((addr, value));
    }

    /// `(address, value)` pairs queued so far.
    pub fn writes(&self) -> &[(usize, Word)] {
        &self.writes
    }

    /// Number of queued writes.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether no writes are queued.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }
}

/// What a processor's `execute` step decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Keep executing update cycles.
    Continue,
    /// Retire this processor: its local computation is finished. (A later
    /// restart re-enters the program from scratch.) The writes emitted in
    /// the same call are still committed — a halting cycle is an ordinary
    /// completed cycle.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets() {
        assert_eq!(CycleBudget::default(), CycleBudget::PAPER);
        assert_eq!(CycleBudget::PAPER.reads, 4);
        assert_eq!(CycleBudget::SIMULATION.writes, 3);
    }

    #[test]
    fn read_set_orders_addresses() {
        let mut r = ReadSet::default();
        r.push(9);
        r.push(2);
        assert_eq!(r.addrs(), &[9, 2]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn write_set_orders_slots() {
        let mut w = WriteSet::default();
        w.push(1, 10);
        w.push(0, 20);
        assert_eq!(w.writes(), &[(1, 10), (0, 20)]);
    }
}
