//! Per-worker buffers of the parallel commit.
//!
//! The pooled engine's apply phase (see `Core::apply_pooled` in
//! [`crate::exec`]) merges the tick's surviving writes in three pooled
//! passes — scan, merge, store — that communicate exclusively through the
//! buffers in [`CommitScratch`]. The layout is rank-addressed so no two
//! workers ever share a row:
//!
//! * **buckets** — `groups × parts` rows; scan group `g` buckets the
//!   surviving writes of its PID range by destination address partition
//!   into rows `[g*parts, (g+1)*parts)`.
//! * **sorted** — one row per address partition: the concatenation of its
//!   bucket column, sorted by `(slot, addr, pid)` (unique keys, so the
//!   unstable sort is deterministic).
//! * **winners** — `parts × write_slots` rows: the CRCW winner per
//!   `(slot, addr)` group, address-ascending within a row by construction.
//! * **bank_deltas / index_ops** — per-partition accounting deltas and net
//!   completion-index operations, merged by the coordinator in rank order.
//! * **errs** — per-worker first-conflict slot, keyed by `(slot, addr)` so
//!   the coordinator can pick the globally-first error deterministically.
//!
//! All rows are reused across ticks; a steady-state tick performs no heap
//! allocation once the rows have grown to their working sizes.

use std::fmt;

use crate::error::PramError;
use crate::pool::SendPtr;
use crate::word::Word;

/// One surviving tentative write, bucketed by the scan pass.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CommitEntry {
    /// Write slot within the processor's surviving prefix.
    pub(crate) slot: u32,
    /// Destination address.
    pub(crate) addr: usize,
    /// Writing processor (CRCW resolution picks the lowest).
    pub(crate) pid: u32,
    /// Value written.
    pub(crate) value: Word,
}

/// The resolved CRCW winner of one `(slot, addr)` group.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SlotWinner {
    /// Destination address.
    pub(crate) addr: usize,
    /// Winning value.
    pub(crate) value: Word,
}

/// Reused buffers of the parallel commit; see the [module docs](self) for
/// the row-ownership layout.
#[derive(Default)]
pub(crate) struct CommitScratch {
    /// `groups × parts` bucket rows, indexed `g * parts + w`.
    pub(crate) buckets: Vec<Vec<CommitEntry>>,
    /// Per-partition sort arena.
    pub(crate) sorted: Vec<Vec<CommitEntry>>,
    /// `parts × write_slots` winner rows, indexed `w * stride + slot`.
    pub(crate) winners: Vec<Vec<SlotWinner>>,
    /// Per-partition committed-write counts per bank.
    pub(crate) bank_deltas: Vec<Vec<u64>>,
    /// Per-partition net completion-index operations `(addr, insert)`.
    pub(crate) index_ops: Vec<Vec<(usize, bool)>>,
    /// Per-worker first error, keyed by `(slot, addr)` for the
    /// deterministic global minimum.
    pub(crate) errs: Vec<Option<(u32, usize, PramError)>>,
    /// Raw base pointers of each memory bank's cells, refilled every tick.
    pub(crate) bank_ptrs: Vec<SendPtr<Word>>,
}

impl CommitScratch {
    /// Size every row table for `groups` scan groups, `parts` address
    /// partitions and `stride` write slots. Existing rows keep their
    /// capacity, so the steady state allocates nothing.
    pub(crate) fn prepare(&mut self, groups: usize, parts: usize, stride: usize, banks: usize) {
        self.buckets.resize_with(groups * parts, Vec::new);
        self.sorted.resize_with(parts, Vec::new);
        self.winners.resize_with(parts * stride, Vec::new);
        self.bank_deltas.resize_with(parts, Vec::new);
        for d in &mut self.bank_deltas {
            d.reserve(banks);
        }
        self.index_ops.resize_with(parts, Vec::new);
        self.errs.resize_with(parts.max(groups), || None);
    }

    /// Take the error with the smallest `(slot, addr)` key across all
    /// worker slots — exactly the error the sequential slot-by-slot scan
    /// would have hit first, since every worker records its own first
    /// error in `(slot, addr)` order. Remaining slots are left for the
    /// next pass to clear.
    pub(crate) fn take_min_err(&mut self) -> Option<PramError> {
        let mut best: Option<usize> = None;
        for i in 0..self.errs.len() {
            if let Some((slot, addr, _)) = &self.errs[i] {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (bs, ba, _) = self.errs[b].as_ref().expect("best slot holds an error");
                        (*slot, *addr) < (*bs, *ba)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best.and_then(|i| self.errs[i].take()).map(|(_, _, e)| e)
    }
}

impl fmt::Debug for CommitScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommitScratch")
            .field("buckets", &self.buckets.len())
            .field("sorted", &self.sorted.len())
            .field("winners", &self.winners.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_min_err_picks_the_smallest_slot_addr_key() {
        let mut s = CommitScratch::default();
        s.prepare(3, 3, 1, 1);
        s.errs[0] = Some((1, 5, PramError::AddressOutOfBounds { addr: 5, size: 4 }));
        s.errs[2] = Some((0, 9, PramError::AddressOutOfBounds { addr: 9, size: 4 }));
        let err = s.take_min_err().expect("an error is present");
        assert!(
            matches!(err, PramError::AddressOutOfBounds { addr: 9, .. }),
            "slot 0 precedes slot 1 regardless of address: {err:?}"
        );
        assert!(s.errs[2].is_none(), "the taken slot is cleared");
        assert!(s.errs[0].is_some(), "other slots are left for the next pass");
    }

    #[test]
    fn prepare_is_idempotent_and_preserves_capacity() {
        let mut s = CommitScratch::default();
        s.prepare(2, 2, 4, 1);
        assert_eq!(s.buckets.len(), 4);
        assert_eq!(s.winners.len(), 8);
        s.buckets[3].reserve(100);
        let cap = s.buckets[3].capacity();
        s.prepare(2, 2, 4, 1);
        assert_eq!(s.buckets[3].capacity(), cap, "rows keep their capacity");
    }
}
