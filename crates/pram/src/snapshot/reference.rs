//! The pre-index snapshot engine, kept verbatim as a differential-testing
//! oracle.
//!
//! [`ReferenceSnapshotMachine`] is the `SnapshotMachine` as it stood before
//! the incremental unvisited index: it allocates its working vectors every
//! tick, clones private states through the tentative phase, decides
//! completion with the full [`SnapshotProgram::is_complete`] scan, and
//! clones the [`FailurePattern`](crate::failure::FailurePattern) into the
//! report. It is deliberately *not* optimised — its value is that its
//! control flow is the old, independently-reviewed one, so the equivalence
//! proptests in `tests/snapshot_equivalence.rs` can replay arbitrary legal
//! fault schedules through both engines and require identical stats,
//! patterns, per-processor counts, and final memory. The only adaptation to
//! the new [`SnapshotProgram`] trait is that `execute` receives a bare
//! [`SnapshotView`] (no index) instead of `&SharedMemory` directly;
//! programs that require an index cannot run here.

use crate::accounting::{RunOutcome, RunReport, WorkStats};
use crate::adversary::{Adversary, FailPoint, MachineView, ProcMeta, ProcStatus, TentativeCycle};
use crate::cycle::{ReadSet, Step, ValueSet, WriteSet};
use crate::error::PramError;
use crate::failure::{FailureEvent, FailureKind, FailurePattern};
use crate::machine::RunLimits;
use crate::memory::SharedMemory;
use crate::snapshot::{SnapshotProgram, SnapshotView};
use crate::word::{Pid, Word};
use crate::Result;

#[derive(Clone, Debug)]
struct Slot<S> {
    status: ProcStatus,
    state: Option<S>,
    completed: u64,
}

/// The old (pre-index, allocating) snapshot executor. See the module docs.
#[derive(Debug)]
pub struct ReferenceSnapshotMachine<'p, P: SnapshotProgram> {
    program: &'p P,
    mem: SharedMemory,
    write_budget: usize,
    procs: Vec<Slot<P::Private>>,
    cycle: u64,
    stats: WorkStats,
    pattern: FailurePattern,
}

impl<'p, P: SnapshotProgram> ReferenceSnapshotMachine<'p, P> {
    /// Build a reference machine; same contract as
    /// [`SnapshotMachine::new`](crate::SnapshotMachine::new).
    ///
    /// # Errors
    ///
    /// [`PramError::InvalidConfig`] if `processors == 0` or
    /// `write_budget == 0`.
    pub fn new(program: &'p P, processors: usize, write_budget: usize) -> Result<Self> {
        if processors == 0 {
            return Err(PramError::InvalidConfig { detail: "need at least one processor".into() });
        }
        if write_budget == 0 {
            return Err(PramError::InvalidConfig {
                detail: "write budget must be positive".into(),
            });
        }
        let mut mem = SharedMemory::new(program.shared_size());
        program.init_memory(&mut mem);
        let procs = (0..processors)
            .map(|i| Slot {
                status: ProcStatus::Alive,
                state: Some(program.on_start(Pid(i))),
                completed: 0,
            })
            .collect();
        Ok(ReferenceSnapshotMachine {
            program,
            mem,
            write_budget,
            procs,
            cycle: 0,
            stats: WorkStats::default(),
            pattern: FailurePattern::new(),
        })
    }

    /// The shared memory (uncharged inspection).
    pub fn memory(&self) -> &SharedMemory {
        &self.mem
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WorkStats {
        &self.stats
    }

    /// Run to completion under `adversary`.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run<A: Adversary>(&mut self, adversary: &mut A) -> Result<RunReport> {
        self.run_with_limits(adversary, RunLimits::default())
    }

    /// Run with explicit limits.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub fn run_with_limits<A: Adversary>(
        &mut self,
        adversary: &mut A,
        limits: RunLimits,
    ) -> Result<RunReport> {
        let p = self.procs.len();
        let mut tentative: Vec<Option<TentativeCycle>> = vec![None; p];
        let mut post_states: Vec<Option<P::Private>> = vec![None; p];
        loop {
            if self.program.is_complete(&self.mem) {
                return Ok(RunReport {
                    outcome: RunOutcome::Completed,
                    stats: self.stats,
                    pattern: self.pattern.clone(),
                    per_processor: self.procs.iter().map(|s| s.completed).collect(),
                });
            }
            if self.cycle >= limits.max_cycles {
                return Err(PramError::CycleLimit { cycles: limits.max_cycles });
            }

            // Tentative phase: each alive processor computes against the
            // snapshot at tick start.
            for i in 0..p {
                tentative[i] = None;
                post_states[i] = None;
                if self.procs[i].status != ProcStatus::Alive {
                    continue;
                }
                let mut state =
                    self.procs[i].state.clone().expect("alive processor has private state");
                let mut writes = WriteSet::default();
                let view = SnapshotView::bare(&self.mem);
                let step = self.program.execute(Pid(i), &mut state, &view, &mut writes);
                if writes.len() > self.write_budget {
                    return Err(PramError::BudgetExceeded {
                        pid: Pid(i),
                        cycle: self.cycle,
                        kind: crate::error::BudgetKind::Writes,
                        used: writes.len(),
                        limit: self.write_budget,
                    });
                }
                for &(addr, _) in writes.writes() {
                    if addr >= self.mem.size() {
                        return Err(PramError::AddressOutOfBounds { addr, size: self.mem.size() });
                    }
                }
                tentative[i] = Some(TentativeCycle {
                    reads: ReadSet::default(),
                    values: ValueSet::default(),
                    writes,
                    halts: matches!(step, Step::Halt),
                });
                post_states[i] = Some(state);
            }

            // Adversary phase.
            let meta: Vec<ProcMeta> = self
                .procs
                .iter()
                .enumerate()
                .map(|(i, s)| ProcMeta {
                    pid: Pid(i),
                    status: s.status,
                    completed_cycles: s.completed,
                })
                .collect();
            let decisions = adversary.decide(&MachineView {
                cycle: self.cycle,
                processors: p,
                mem: &self.mem,
                procs: &meta,
                tentative: &tentative,
                unvisited: None,
            });

            // Validate + compute committed write counts.
            let mut committed: Vec<Option<usize>> =
                tentative.iter().map(|t| t.as_ref().map(|t| t.writes.len())).collect();
            let mut failed_now = vec![false; p];
            let mut fail_points: Vec<Option<FailPoint>> = vec![None; p];
            for &(pid, point) in &decisions.fails {
                if pid.0 >= p || failed_now[pid.0] {
                    return Err(PramError::InvalidAdversaryDecision {
                        cycle: self.cycle,
                        detail: format!("bad failure target {pid}"),
                    });
                }
                match self.procs[pid.0].status {
                    ProcStatus::Failed => {
                        return Err(PramError::InvalidAdversaryDecision {
                            cycle: self.cycle,
                            detail: format!("failure of already failed {pid}"),
                        });
                    }
                    ProcStatus::Halted => {
                        failed_now[pid.0] = true;
                        fail_points[pid.0] = Some(point);
                    }
                    ProcStatus::Alive => {
                        let len = tentative[pid.0].as_ref().map_or(0, |t| t.writes.len());
                        let c = match point {
                            FailPoint::BeforeReads | FailPoint::BeforeWrites => 0,
                            FailPoint::AfterWrite(k) => {
                                if k == 0 || k > len {
                                    return Err(PramError::InvalidAdversaryDecision {
                                        cycle: self.cycle,
                                        detail: format!("{pid}: bad fail point"),
                                    });
                                }
                                k
                            }
                        };
                        committed[pid.0] = Some(c);
                        failed_now[pid.0] = true;
                        fail_points[pid.0] = Some(point);
                    }
                }
            }
            let mut restarted = vec![false; p];
            for &pid in &decisions.restarts {
                let failed = pid.0 < p
                    && (self.procs[pid.0].status == ProcStatus::Failed || failed_now[pid.0]);
                if !failed || restarted[pid.0] {
                    return Err(PramError::InvalidAdversaryDecision {
                        cycle: self.cycle,
                        detail: format!("bad restart target {pid}"),
                    });
                }
                restarted[pid.0] = true;
            }

            // Progress condition.
            let any_active = tentative.iter().any(|t| t.is_some());
            let completing = (0..p)
                .filter(|&i| {
                    tentative[i].is_some()
                        && committed[i] == tentative[i].as_ref().map(|t| t.writes.len())
                        && !(failed_now[i] && committed[i] == Some(0))
                })
                .count();
            if any_active && completing == 0 {
                return Err(PramError::AdversaryStall { cycle: self.cycle });
            }
            if !any_active {
                let any_failed = self.procs.iter().any(|s| s.status == ProcStatus::Failed);
                if any_failed && decisions.restarts.is_empty() {
                    return Err(PramError::AdversaryStall { cycle: self.cycle });
                }
                if !any_failed {
                    return Err(PramError::Deadlock { cycle: self.cycle });
                }
            }

            // Commit slot by slot (COMMON semantics: the snapshot algorithms
            // of §3 are COMMON-legal).
            for slot in 0..self.write_budget {
                let mut slot_writes: Vec<(Pid, usize, Word)> = Vec::new();
                for i in 0..p {
                    let Some(t) = tentative[i].as_ref() else { continue };
                    if slot < t.writes.len() && slot < committed[i].unwrap_or(0) {
                        let (addr, value) = t.writes.writes()[slot];
                        slot_writes.push((Pid(i), addr, value));
                    }
                }
                slot_writes.sort_by_key(|&(pid, addr, _)| (addr, pid));
                let mut i = 0;
                while i < slot_writes.len() {
                    let (pid0, addr, v0) = slot_writes[i];
                    let mut j = i + 1;
                    while j < slot_writes.len() && slot_writes[j].1 == addr {
                        if slot_writes[j].2 != v0 {
                            return Err(PramError::CommonWriteConflict {
                                addr,
                                cycle: self.cycle,
                                first: (pid0, v0),
                                second: (slot_writes[j].0, slot_writes[j].2),
                            });
                        }
                        j += 1;
                    }
                    self.mem.store(addr, v0)?;
                    i = j;
                }
            }

            // Charge and update.
            let mut events: Vec<FailureEvent> = Vec::new();
            for i in 0..p {
                if let Some(t) = tentative[i].as_ref() {
                    let full = committed[i] == Some(t.writes.len())
                        && !(failed_now[i] && committed[i] == Some(0));
                    if full {
                        self.stats.completed_cycles += 1;
                        self.stats.charged_instructions += (1 + t.writes.len()) as u64;
                        self.procs[i].completed += 1;
                        if t.halts {
                            self.procs[i].status = ProcStatus::Halted;
                        }
                        self.procs[i].state = post_states[i].take();
                    } else {
                        self.stats.interrupted_cycles += 1;
                        self.stats.partial_instructions += committed[i].unwrap_or(0) as u64;
                    }
                }
                if failed_now[i] {
                    self.procs[i].status = ProcStatus::Failed;
                    self.procs[i].state = None;
                    self.stats.failures += 1;
                    let point = fail_points[i].expect("failed processor has a recorded point");
                    events.push(FailureEvent {
                        kind: FailureKind::Failure { point },
                        pid: i,
                        time: self.cycle,
                    });
                }
            }
            for (i, _) in restarted.iter().enumerate().filter(|(_, &r)| r) {
                self.procs[i].status = ProcStatus::Alive;
                self.procs[i].state = Some(self.program.on_start(Pid(i)));
                self.stats.restarts += 1;
                events.push(FailureEvent {
                    kind: FailureKind::Restart,
                    pid: i,
                    time: self.cycle + 1,
                });
            }
            self.pattern.extend(events);
            self.cycle += 1;
            self.stats.parallel_time = self.cycle;
        }
    }
}
