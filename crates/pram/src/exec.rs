//! The model-generic execution core shared by both machine models.
//!
//! The paper's two machines — the word-model CRCW PRAM of §2 (Theorems
//! 4.3/4.7) and the unit-cost-snapshot machine of §3 — share their entire
//! synchronous phase structure: plan tentative update cycles for every
//! alive processor, present the machine to the on-line adversary, validate
//! its stop/restart decisions, merge the surviving write prefixes slot by
//! slot under CRCW semantics, charge completed work, record the failure
//! pattern, and apply restarts at the next tick boundary. [`Core`]
//! implements that structure once; a model plugs in the parts that differ
//! through the [`ExecutionModel`] trait (how a tentative cycle is computed,
//! how interrupted work is charged, what its checkpoints look like).
//!
//! Everything the engines had grown separately is therefore available to
//! **every** model:
//!
//! * the run loop with [`RunLimits`], completion detection, and the
//!   [`RunControl`] pause hook for checkpointed long runs;
//! * [`Observer`] event emission — one stream, so word-model and
//!   snapshot-model runs trace identically;
//! * adversary-decision validation (shared with the models via
//!   [`crate::decisions`]);
//! * the incremental completion tracker: an [`UnvisitedIndex`] primed from
//!   [`ExecutionModel::completion_hint`] and folded on every committed
//!   write, replacing the O(N) `is_complete` scan with an O(1) emptiness
//!   test;
//! * versioned checkpoint save/restore tagged with the model's name
//!   ([`ExecutionModel::MODEL`]), so a word checkpoint cannot be restored
//!   into a snapshot machine or vice versa.
//!
//! The core stays **allocation-free in steady state**: all per-tick buffers
//! (tentative cycles, fates, slot merges, failure scratch) live in the
//! [`Core`] and are reused; index maintenance is O(committed writes)
//! amortized per tick with in-place compaction. Backends differ only in the
//! tentative phase they pass into [`Core::run_loop`] — the word machine's
//! persistent worker pool farms that phase out to real threads, the
//! sequential engines play it inline — so the event stream and all
//! accounting are byte-identical across backends *by construction* (pinned
//! by `tests/golden_equivalence.rs`).

use serde::{Deserialize, Serialize};

use crate::accounting::{RunOutcome, RunReport, WorkStats};
use crate::adversary::{
    Adversary, Decisions, FailPoint, MachineView, ProcMeta, ProcStatus, TentativeCycle,
};
use crate::checkpoint::{Checkpoint, ProcCheckpoint, CHECKPOINT_VERSION};
use crate::decisions::{resolve, CycleFate};
use crate::error::PramError;
use crate::failure::{FailureEvent, FailureKind, FailurePattern};
use crate::memory::{MemoryLayout, SharedMemory};
use crate::mode::WriteMode;
use crate::trace::{Observer, TraceEvent};
use crate::unvisited::UnvisitedIndex;
use crate::word::{Pid, Word};
use crate::{CompletionHint, Result};

/// Safety limits for a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunLimits {
    /// Abort with [`PramError::CycleLimit`] after this many ticks. Used by
    /// experiments to demonstrate non-terminating executions (e.g.
    /// algorithm W under restarts).
    pub max_cycles: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits { max_cycles: 100_000_000 }
    }
}

/// Verdict of a `run_controlled` control callback, consulted once per tick
/// at the tick boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunControl {
    /// Execute the next tick.
    Continue,
    /// Return [`RunStatus::Paused`] without executing the tick. The machine
    /// is left exactly at the tick boundary — checkpointable via
    /// `save_checkpoint` and resumable by calling a run method again.
    Pause,
}

/// How a controlled run ended.
#[derive(Debug)]
pub enum RunStatus {
    /// The program completed; the report is the same one an uncontrolled
    /// run would have produced.
    Completed(RunReport),
    /// The control callback paused the run before tick `cycle` executed.
    Paused {
        /// The next tick to execute.
        cycle: u64,
    },
}

/// What the pooled engine does when a worker thread catches a panic while
/// playing a processor's tentative cycle (see
/// [`Machine::run_threaded_isolated`](crate::Machine::run_threaded_isolated)).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PanicPolicy {
    /// Abort the run with [`PramError::WorkerPanic`], leaving the machine
    /// at the failed tick's boundary with all pre-tick state restored.
    #[default]
    Surface,
    /// Restore the pre-tick state, replay the tick on the sequential
    /// engine, and finish the rest of the run sequentially. The run's
    /// results are identical to an undisturbed run (the tick had committed
    /// nothing when the panic fired); only wall-clock parallelism is lost.
    FallbackSequential,
}

/// Processor bookkeeping in structure-of-arrays form.
///
/// Each of the core's hot loops touches exactly one of these arrays — the
/// adversary view reads statuses, the tentative phase mutates private
/// states, charging bumps completed counts — so keeping them in separate
/// dense vectors makes every scan contiguous instead of striding over a
/// padded per-processor struct (and lets the pooled backend hand workers a
/// raw pointer into the states alone while statuses stay a shared slice).
#[derive(Clone, Debug)]
pub(crate) struct ProcSoA<S> {
    /// Liveness, indexed by PID.
    pub(crate) status: Vec<ProcStatus>,
    /// Private memory, indexed by PID; `None` while failed.
    pub(crate) state: Vec<Option<S>>,
    /// Completed update cycles charged, indexed by PID.
    pub(crate) completed: Vec<u64>,
}

impl<S> ProcSoA<S> {
    pub(crate) fn len(&self) -> usize {
        self.status.len()
    }
}

/// The parts of a machine model the shared [`Core`] cannot know: how one
/// tentative cycle is computed, how interrupted work is charged, and how
/// the model identifies itself in checkpoints.
///
/// Implemented by the word model (inside [`crate::machine`]) and the
/// snapshot model (inside [`crate::snapshot`]); the public machines are
/// thin wrappers pairing a model value with a [`Core`].
pub trait ExecutionModel {
    /// Per-processor private memory; lost on failure.
    type Private: Clone + Send;

    /// The model's name, written into checkpoints; restore refuses a
    /// checkpoint taken under a different model.
    const MODEL: &'static str;

    /// Whether [`MachineView::unvisited`] exposes the completion tracker's
    /// index to the adversary. The snapshot model does (the §3 adversaries
    /// are defined on the unvisited set); the word model predates the index
    /// and keeps its adversary view stable.
    const ADVERSARY_SEES_INDEX: bool;

    /// Fresh private state for processor `pid` (start and restart).
    fn on_start(&self, pid: Pid) -> Self::Private;

    /// Global completion predicate (uncharged).
    fn is_complete(&self, mem: &SharedMemory) -> bool;

    /// Per-cell completion decomposition; same contract as
    /// [`Program::completion_hint`](crate::Program::completion_hint).
    fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint;

    /// Batched [`completion_hint`](ExecutionModel::completion_hint) over
    /// one contiguous lane of at most 64 cells starting at `base`: returns
    /// `(outstanding, tracked)` bit masks where bit `j` describes cell
    /// `base + j`. Must agree cell-wise with `completion_hint` — debug
    /// builds assert it when the batched tracker path runs. Models forward
    /// to their program, so a program can supply a branch-free classifier
    /// the compiler autovectorizes.
    fn completion_masks(&self, base: usize, values: &[Word]) -> (u64, u64) {
        crate::fold_completion_masks(base, values, |addr, value| self.completion_hint(addr, value))
    }

    /// Phase 1 (sequential reference implementation): fill
    /// `core.tentative[i]` for every alive processor from the tick-start
    /// memory, advancing private states in place. Pooled backends substitute
    /// their own phase via [`Core::run_loop`]'s `tentative` parameter.
    ///
    /// # Errors
    ///
    /// See [`PramError`] — typically budget or bounds violations.
    fn tentative(&self, core: &mut Core<Self::Private>) -> Result<()>;

    /// `S'` charge for a cycle interrupted after its reads with
    /// `committed_writes` of its writes committed. The word model charges
    /// `reads + 1 + committed`; the snapshot model's whole-memory read is
    /// free and its unit of local computation is only charged on
    /// completion, so it charges `committed` alone.
    fn partial_instructions(t: &TentativeCycle, committed_writes: usize) -> u64;

    /// `(reads, writes)` budget header for checkpoints. The snapshot model
    /// has no read budget and reports `(0, write_budget)`.
    fn checkpoint_budget(&self) -> (usize, usize);
}

/// The model-generic machine state and synchronous run loop.
///
/// A `Core` is the entire mutable state of a machine — shared memory,
/// processor slots, accounting, the completion tracker, and every reused
/// per-tick buffer. The public machines ([`Machine`](crate::Machine),
/// [`SnapshotMachine`](crate::SnapshotMachine)) wrap a `Core` together with
/// their [`ExecutionModel`] and delegate the phase structure here.
#[derive(Debug)]
pub struct Core<Pv> {
    pub(crate) mem: SharedMemory,
    pub(crate) mode: WriteMode,
    /// Number of write slots merged per tick (the write half of the budget).
    pub(crate) write_slots: usize,
    pub(crate) procs: ProcSoA<Pv>,
    pub(crate) cycle: u64,
    pub(crate) stats: WorkStats,
    pub(crate) pattern: FailurePattern,
    // Incremental completion tracker (see `ExecutionModel::completion_hint`):
    // whether the model opted in, and the index of outstanding cells.
    // Primed at construction and re-primed at every run entry.
    pub(crate) tracked: bool,
    pub(crate) unvisited: UnvisitedIndex,
    /// Lane width of the batched kernels. The default
    /// ([`DEFAULT_BATCH_WIDTH`]) selects the lane-mask batched paths and
    /// aligns pooled chunk claiming; `1` selects the scalar reference
    /// paths. Behavior is identical either way (pinned by the
    /// batched-vs-scalar differential proptests); only the instruction
    /// stream differs.
    pub(crate) batch_width: usize,
    // Reused per-tick buffers.
    pub(crate) tentative: Vec<Option<TentativeCycle>>,
    pub(crate) meta: Vec<ProcMeta>,
    pub(crate) fates: Vec<CycleFate>,
    pub(crate) slot_writes: Vec<(Pid, usize, Word)>,
    /// Processors with at least one surviving write this tick (compact
    /// list, built by the batch pre-pass in [`Core::apply`]).
    pub(crate) active: Vec<u32>,
    /// Per-processor surviving-write count for the current tick.
    pub(crate) surviving: Vec<u32>,
    pub(crate) failed_now: Vec<bool>,
    pub(crate) fail_points: Vec<Option<FailPoint>>,
    pub(crate) restarted: Vec<bool>,
    pub(crate) events: Vec<FailureEvent>,
}

/// Default lane width of the batched tentative-phase kernels: one `u64`
/// mask worth of cells.
pub const DEFAULT_BATCH_WIDTH: usize = crate::unvisited::LANE_WIDTH;

/// Pooled chunk alignment is capped so huge `batch_width × interleave`
/// combinations cannot serialize a run into one chunk.
const MAX_CHUNK_ALIGN: usize = 1 << 16;

fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm(a: usize, b: usize) -> usize {
    if a == 0 || b == 0 {
        return a.max(b);
    }
    a / gcd(a, b) * b
}

impl<Pv: Clone + Send> Core<Pv> {
    /// Build a core for `model` with `processors` slots over `mem`,
    /// merging `write_slots` write slots per tick under `mode`. The
    /// completion tracker is primed immediately, so lock-step `tick` use
    /// works without passing through a run entry.
    pub(crate) fn new<M: ExecutionModel<Private = Pv>>(
        model: &M,
        processors: usize,
        mem: SharedMemory,
        mode: WriteMode,
        write_slots: usize,
    ) -> Self {
        // The batch pre-pass keeps its compact processor list in u32.
        assert!(processors <= u32::MAX as usize, "processor count exceeds u32 range");
        let procs = ProcSoA {
            status: vec![ProcStatus::Alive; processors],
            state: (0..processors).map(|i| Some(model.on_start(Pid(i)))).collect(),
            completed: vec![0; processors],
        };
        let mut core = Core {
            mem,
            mode,
            write_slots,
            procs,
            cycle: 0,
            stats: WorkStats::default(),
            pattern: FailurePattern::new(),
            tracked: false,
            unvisited: UnvisitedIndex::new(0),
            batch_width: DEFAULT_BATCH_WIDTH,
            tentative: vec![None; processors],
            meta: Vec::with_capacity(processors),
            fates: vec![CycleFate::Idle; processors],
            slot_writes: Vec::new(),
            active: Vec::with_capacity(processors),
            surviving: vec![0; processors],
            failed_now: vec![false; processors],
            fail_points: vec![None; processors],
            restarted: vec![false; processors],
            events: Vec::new(),
        };
        core.init_tracker(model);
        core
    }

    /// Classify every shared cell via [`ExecutionModel::completion_hint`]
    /// and prime the unvisited index. The model is *tracked* iff it reports
    /// at least one tracked cell; untracked models keep the full-scan
    /// completion check and get no index.
    pub(crate) fn init_tracker<M: ExecutionModel<Private = Pv>>(&mut self, model: &M) {
        let mem = &self.mem;
        // Both paths walk the memory in bank-aligned chunks: each chunk is
        // one contiguous slice of its bank, so a banked layout is
        // classified without the per-address bank mapping.
        if self.batch_width > 1 {
            // Batched path: 64-cell lanes classified into bit masks by
            // `completion_masks`, whose hot implementations are
            // branch-free (see `WriteAllTasks::completion_masks`).
            let mut tracked_bits = 0u64;
            self.unvisited.rebuild_from_chunks_batched(mem.size(), mem.chunks(), |base, lane| {
                let (outstanding, tracked) = model.completion_masks(base, lane);
                #[cfg(debug_assertions)]
                {
                    let expected = crate::fold_completion_masks(base, lane, |addr, value| {
                        model.completion_hint(addr, value)
                    });
                    assert_eq!(
                        (outstanding, tracked),
                        expected,
                        "completion_masks disagrees with completion_hint on lane at {base}",
                    );
                }
                tracked_bits |= tracked;
                outstanding
            });
            self.tracked = tracked_bits != 0;
        } else {
            // Scalar reference path (`batch_width == 1`), kept verbatim for
            // the batched-vs-scalar differential proptests.
            let mut any_tracked = false;
            self.unvisited.rebuild_from_chunks(mem.size(), mem.chunks(), |addr, value| match model
                .completion_hint(addr, value)
            {
                CompletionHint::Untracked => false,
                CompletionHint::Outstanding => {
                    any_tracked = true;
                    true
                }
                CompletionHint::Satisfied => {
                    any_tracked = true;
                    false
                }
            });
            self.tracked = any_tracked;
        }
    }

    /// Chunk alignment for the pooled tentative phase: a multiple of the
    /// batch width (so a worker's chunk is whole lanes) and, on banked
    /// layouts, of the bank interleave (so a lane never straddles a bank
    /// boundary inside a chunk). Capped at a constant so pathological
    /// `batch_width × interleave` combinations cannot serialize a run into
    /// one chunk.
    pub(crate) fn chunk_align(&self) -> usize {
        let base = self.batch_width.max(1);
        let align = match self.mem.layout() {
            MemoryLayout::Banked { interleave, .. } => lcm(base, interleave),
            _ => base,
        };
        align.min(MAX_CHUNK_ALIGN)
    }

    /// O(1) completion test for tracked models (the index is empty), full
    /// scan otherwise. Debug builds cross-check the index against
    /// `is_complete`.
    fn completion_reached<M: ExecutionModel<Private = Pv>>(&self, model: &M) -> bool {
        if self.tracked {
            let done = self.unvisited.is_empty();
            debug_assert_eq!(
                done,
                model.is_complete(&self.mem),
                "completion tracker diverged from is_complete at tick {} \
                 ({} cells outstanding) — the hint contract is violated",
                self.cycle,
                self.unvisited.len(),
            );
            done
        } else {
            model.is_complete(&self.mem)
        }
    }

    /// Build the completed-run report. The recorded failure pattern is
    /// **moved** out of the core (it can be megabytes on adversarial runs);
    /// the core's own pattern is left empty, so a subsequent continuation
    /// run records a fresh pattern.
    fn take_completed_report(&mut self) -> RunReport {
        RunReport {
            outcome: RunOutcome::Completed,
            stats: self.stats,
            pattern: std::mem::take(&mut self.pattern),
            per_processor: self.procs.completed.clone(),
        }
    }

    /// Phase 2a: present the machine to the adversary and collect its
    /// decisions for this tick.
    fn collect_decisions<M, A>(&mut self, adversary: &mut A) -> Decisions
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        self.meta.clear();
        self.meta.extend(self.procs.status.iter().zip(&self.procs.completed).enumerate().map(
            |(i, (&status, &completed))| ProcMeta {
                pid: Pid(i),
                status,
                completed_cycles: completed,
            },
        ));
        let view = MachineView {
            cycle: self.cycle,
            processors: self.procs.len(),
            mem: &self.mem,
            procs: &self.meta,
            tentative: &self.tentative,
            unvisited: if M::ADVERSARY_SEES_INDEX && self.tracked {
                Some(&self.unvisited)
            } else {
                None
            },
        };
        adversary.decide(&view)
    }

    /// Execute exactly one observed tick: `TickStart`, the model's
    /// sequential tentative phase, adversary decisions, validate/commit/
    /// charge.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub(crate) fn tick_observed<M, A>(
        &mut self,
        model: &M,
        adversary: &mut A,
        observer: &mut dyn Observer,
    ) -> Result<()>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        observer.event(TraceEvent::TickStart { cycle: self.cycle });
        model.tentative(self)?;
        let decisions = self.collect_decisions::<M, A>(adversary);
        self.apply(model, decisions, observer)
    }

    /// The single run loop behind every public entry point of both
    /// machines. Backends differ only in the `tentative` phase they pass
    /// in, so the event stream and all accounting are shared by
    /// construction. The `control` callback runs at the tick boundary —
    /// after the completion and cycle-limit checks, before the tick's
    /// `TickStart` event — so pausing and resuming produces, by
    /// construction, the **concatenation** of the two runs' event streams,
    /// which equals the uninterrupted run's stream.
    ///
    /// # Errors
    ///
    /// See [`PramError`]; in particular [`PramError::CycleLimit`] when
    /// `limits` are exhausted.
    pub(crate) fn run_loop<M, A>(
        &mut self,
        model: &M,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
        mut tentative: impl FnMut(&mut Self) -> Result<()>,
        mut control: impl FnMut(u64) -> RunControl,
    ) -> Result<RunStatus>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        self.init_tracker(model);
        loop {
            if self.completion_reached(model) {
                observer.event(TraceEvent::Completed { cycle: self.cycle });
                return Ok(RunStatus::Completed(self.take_completed_report()));
            }
            if self.cycle >= limits.max_cycles {
                return Err(PramError::CycleLimit { cycles: limits.max_cycles });
            }
            if control(self.cycle) == RunControl::Pause {
                return Ok(RunStatus::Paused { cycle: self.cycle });
            }
            observer.event(TraceEvent::TickStart { cycle: self.cycle });
            tentative(self)?;
            let decisions = self.collect_decisions::<M, A>(adversary);
            self.apply(model, decisions, observer)?;
        }
    }

    /// [`Core::run_loop`] without a pause hook, unwrapped to a
    /// [`RunReport`].
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub(crate) fn run_to_completion<M, A>(
        &mut self,
        model: &M,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
        tentative: impl FnMut(&mut Self) -> Result<()>,
    ) -> Result<RunReport>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        match self
            .run_loop(model, adversary, limits, observer, tentative, |_| RunControl::Continue)?
        {
            RunStatus::Completed(report) => Ok(report),
            RunStatus::Paused { .. } => unreachable!("the control callback never pauses"),
        }
    }

    /// Phases 2b/3: validate the adversary's decisions (shared
    /// [`crate::decisions`] logic), merge surviving write prefixes slot by
    /// slot, charge work, fold commits into the completion tracker, record
    /// the failure pattern, apply restarts.
    pub(crate) fn apply<M>(
        &mut self,
        model: &M,
        decisions: Decisions,
        observer: &mut dyn Observer,
    ) -> Result<()>
    where
        M: ExecutionModel<Private = Pv>,
    {
        let p = self.procs.len();
        let statuses = &self.procs.status;
        resolve(
            self.cycle,
            &decisions,
            |i| statuses[i],
            &self.tentative,
            &mut self.fates,
            &mut self.failed_now,
            &mut self.fail_points,
            &mut self.restarted,
        )?;

        // --- Batch pre-pass: fold each processor's fate into a surviving-
        // write count once, instead of re-deriving it `write_slots` times.
        // The per-slot merge below then touches only the compact list of
        // processors that commit anything this tick, rather than striding
        // over all P tentative slots per write slot.
        self.active.clear();
        let mut max_slots = 0;
        for i in 0..p {
            let n = match self.fates[i] {
                CycleFate::Completed => {
                    self.tentative[i].as_ref().expect("completed cycle exists").writes.len()
                }
                CycleFate::Interrupted { committed_writes } => {
                    // Validated against the write count by `resolve`, but
                    // clamp anyway: `surviving` is the sole bound the slot
                    // loop indexes `writes()` with.
                    let t = self.tentative[i].as_ref().expect("interrupted cycle exists");
                    committed_writes.min(t.writes.len())
                }
                CycleFate::InterruptedBeforeReads | CycleFate::Idle => 0,
            };
            self.surviving[i] = n as u32;
            if n > 0 {
                self.active.push(i as u32);
                max_slots = max_slots.max(n);
            }
        }

        // A cycle's writes are budget-checked in the tentative phase and
        // `resolve` bounds committed prefixes by the cycle's write count,
        // so no survivor can exceed the write-slot budget.
        debug_assert!(max_slots <= self.write_slots);

        // --- Commit surviving write prefixes, slot by slot. ---
        // (`active` is detached during the loop so `commit_slot` can borrow
        // the rest of the core mutably; it is a reused buffer, so put it
        // back afterwards.)
        let active = std::mem::take(&mut self.active);
        for slot in 0..max_slots {
            self.slot_writes.clear();
            for &iu in &active {
                let i = iu as usize;
                if slot < self.surviving[i] as usize {
                    let t = self.tentative[i].as_ref().expect("active cycle exists");
                    let (addr, value) = t.writes.writes()[slot];
                    self.slot_writes.push((Pid(i), addr, value));
                }
            }
            self.commit_slot(model, observer)?;
        }
        self.active = active;

        // --- Charge work, update processor states, record the pattern. ---
        debug_assert!(self.events.is_empty());
        for i in 0..p {
            match self.fates[i] {
                CycleFate::Idle => {}
                CycleFate::Completed => {
                    let t = self.tentative[i].as_ref().expect("completed cycle exists");
                    observer.event(TraceEvent::CycleCompleted { cycle: self.cycle, pid: Pid(i) });
                    self.stats.completed_cycles += 1;
                    self.stats.charged_instructions += (t.reads.len() + 1 + t.writes.len()) as u64;
                    self.mem.charge_reads_at(t.reads.addrs());
                    self.procs.completed[i] += 1;
                    if t.halts {
                        self.procs.status[i] = ProcStatus::Halted;
                    }
                    // The post-cycle private state is already in the slot
                    // (the tentative phase advances it in place).
                }
                CycleFate::InterruptedBeforeReads => {
                    observer.event(TraceEvent::CycleInterrupted { cycle: self.cycle, pid: Pid(i) });
                    self.stats.interrupted_cycles += 1;
                    // Stopped before the cycle began: zero instructions, so
                    // zero partial work — explicitly, not via a sentinel.
                }
                CycleFate::Interrupted { committed_writes } => {
                    let t = self.tentative[i].as_ref().expect("interrupted cycle exists");
                    observer.event(TraceEvent::CycleInterrupted { cycle: self.cycle, pid: Pid(i) });
                    self.stats.interrupted_cycles += 1;
                    // What an interrupted cycle is charged differs by model
                    // (the snapshot's read and computation are free).
                    self.stats.partial_instructions += M::partial_instructions(t, committed_writes);
                    self.mem.charge_reads_at(t.reads.addrs());
                }
            }
            if self.failed_now[i] {
                self.procs.status[i] = ProcStatus::Failed;
                self.procs.state[i] = None;
                self.stats.failures += 1;
                let point = self.fail_points[i].expect("failed processor has a recorded point");
                observer.event(TraceEvent::Failure { cycle: self.cycle, pid: Pid(i), point });
                self.events.push(FailureEvent {
                    kind: FailureKind::Failure { point },
                    pid: i,
                    time: self.cycle,
                });
            }
        }
        for i in (0..p).filter(|&i| self.restarted[i]) {
            observer.event(TraceEvent::Restart { cycle: self.cycle, pid: Pid(i) });
            self.procs.status[i] = ProcStatus::Alive;
            self.procs.state[i] = Some(model.on_start(Pid(i)));
            self.stats.restarts += 1;
            self.events.push(FailureEvent {
                kind: FailureKind::Restart,
                pid: i,
                time: self.cycle + 1,
            });
        }
        // Failure events at this tick precede restart events at tick+1, so
        // pushing fails-then-restarts keeps the pattern time-ordered.
        self.pattern.extend(self.events.drain(..));

        self.cycle += 1;
        self.stats.parallel_time = self.cycle;

        // Restore the index's dense form for the next tick's views — but
        // only when the model has a reader: the snapshot model selects
        // from the index during its tentative phase and exposes it to the
        // adversary, so it must be dense at every tick boundary. The word
        // model only folds O(1) updates in and tests emptiness, and
        // compacting its tombstones every tick would put an O(N) scan on
        // the hot path — its index stays lazily dirty instead. Debug
        // builds always compact so the ground-truth cross-check below can
        // run.
        if self.tracked {
            if M::ADVERSARY_SEES_INDEX || cfg!(debug_assertions) {
                self.unvisited.ensure_clean();
            }
            debug_assert!(
                self.unvisited.matches(self.mem.size(), |addr| matches!(
                    model.completion_hint(addr, self.mem.peek(addr)),
                    CompletionHint::Outstanding
                )),
                "unvisited index diverged from the full scan after tick {}",
                self.cycle - 1,
            );
        }
        Ok(())
    }

    /// Merge one write slot under the core's CRCW semantics, apply it, and
    /// fold each committed store into the completion tracker.
    fn commit_slot<M>(&mut self, model: &M, observer: &mut dyn Observer) -> Result<()>
    where
        M: ExecutionModel<Private = Pv>,
    {
        // Group writers by address; within an address the lowest PID comes
        // first, making ARBITRARY/PRIORITY resolution "first writer wins".
        // (addr, pid) keys are unique, so the unstable sort is
        // deterministic.
        self.slot_writes.sort_unstable_by_key(|&(pid, addr, _)| (addr, pid));
        let mut i = 0;
        while i < self.slot_writes.len() {
            let (pid, addr, value) = self.slot_writes[i];
            let mut j = i + 1;
            let chosen = (pid, value);
            while j < self.slot_writes.len() {
                let (pid2, addr2, value2) = self.slot_writes[j];
                if addr2 != addr {
                    break;
                }
                match self.mode {
                    WriteMode::Common => {
                        if value2 != chosen.1 {
                            return Err(PramError::CommonWriteConflict {
                                addr,
                                cycle: self.cycle,
                                first: (chosen.0, chosen.1),
                                second: (pid2, value2),
                            });
                        }
                    }
                    WriteMode::Arbitrary | WriteMode::Priority => {
                        // chosen stays: lowest PID wins and writers are in
                        // PID order within equal addresses (see sort above).
                    }
                    WriteMode::Exclusive => {
                        return Err(PramError::ExclusiveWriteConflict { addr, cycle: self.cycle });
                    }
                }
                j += 1;
            }
            if self.tracked {
                // Fold the committed write into the unvisited index
                // *before* the store (the old value is still visible).
                let old = model.completion_hint(addr, self.mem.peek(addr));
                let new = model.completion_hint(addr, chosen.1);
                match (old, new) {
                    (CompletionHint::Outstanding, CompletionHint::Satisfied) => {
                        self.unvisited.remove(addr);
                    }
                    (CompletionHint::Satisfied, CompletionHint::Outstanding) => {
                        self.unvisited.insert(addr);
                    }
                    _ => {}
                }
            }
            self.mem.store(addr, chosen.1)?;
            observer.event(TraceEvent::Commit { cycle: self.cycle, addr, value: chosen.1 });
            i = j;
        }
        Ok(())
    }
}

impl<Pv> Core<Pv>
where
    Pv: Clone + Send + Serialize + Deserialize,
{
    /// Snapshot the core (and `adversary`) at the current tick boundary
    /// into a versioned [`Checkpoint`] tagged with the model's name.
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] if the adversary is not checkpointable
    /// ([`Adversary::save_state`] returned `None`).
    pub(crate) fn save_checkpoint<M, A>(&self, model: &M, adversary: &A) -> Result<Checkpoint>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        let adversary = adversary.save_state().ok_or_else(|| PramError::Checkpoint {
            detail: "the adversary is not checkpointable (save_state returned None)".into(),
        })?;
        let (budget_reads, budget_writes) = model.checkpoint_budget();
        let (bank_reads, bank_writes) = self.mem.bank_counters().into_iter().unzip();
        Ok(Checkpoint {
            version: CHECKPOINT_VERSION,
            model: M::MODEL.to_string(),
            cycle: self.cycle,
            mode: self.mode,
            budget_reads,
            budget_writes,
            layout: self.mem.layout(),
            // The merged, address-ordered image — the same bytes whatever
            // the physical layout.
            mem: self.mem.to_vec(),
            bank_reads,
            bank_writes,
            stats: self.stats,
            procs: self
                .procs
                .status
                .iter()
                .zip(&self.procs.completed)
                .zip(&self.procs.state)
                .map(|((&status, &completed), state)| ProcCheckpoint {
                    status,
                    completed,
                    state: state.as_ref().map_or(serde::Value::Null, |st| st.to_value()),
                })
                .collect(),
            pattern: self.pattern.clone(),
            adversary,
        })
    }

    /// Load `ck` into this core and `adversary`, resuming the checkpointed
    /// run at its tick boundary. Everything is validated **before**
    /// anything is mutated, so a failed restore leaves core and adversary
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] on a version, model or shape mismatch, an
    /// undecodable private state, an illegal recorded failure pattern, or
    /// an adversary that refuses the saved state.
    pub(crate) fn restore_checkpoint<M, A>(
        &mut self,
        model: &M,
        ck: &Checkpoint,
        adversary: &mut A,
    ) -> Result<()>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        let fail = |detail: String| PramError::Checkpoint { detail };
        if ck.version != CHECKPOINT_VERSION {
            return Err(fail(format!(
                "checkpoint version {} but this build reads version {CHECKPOINT_VERSION}",
                ck.version
            )));
        }
        if ck.model != M::MODEL {
            return Err(fail(format!(
                "checkpoint was taken under the \"{}\" model but this machine runs \"{}\"",
                ck.model,
                M::MODEL
            )));
        }
        if ck.layout != self.mem.layout() {
            return Err(fail(format!(
                "checkpoint was taken under the {} memory layout but this machine uses {} — \
                 cross-layout restore is not supported; rebuild the machine with the \
                 checkpoint's layout",
                ck.layout,
                self.mem.layout()
            )));
        }
        if ck.mem.len() != self.mem.size() {
            return Err(fail(format!(
                "checkpoint has {} memory cells but the machine has {}",
                ck.mem.len(),
                self.mem.size()
            )));
        }
        if ck.procs.len() != self.procs.len() {
            return Err(fail(format!(
                "checkpoint has {} processors but the machine has {}",
                ck.procs.len(),
                self.procs.len()
            )));
        }
        let (budget_reads, budget_writes) = model.checkpoint_budget();
        if (ck.budget_reads, ck.budget_writes) != (budget_reads, budget_writes) {
            return Err(fail(format!(
                "checkpoint budget ({} reads / {} writes) differs from the machine's \
                 ({} reads / {} writes)",
                ck.budget_reads, ck.budget_writes, budget_reads, budget_writes
            )));
        }
        if ck.mode != self.mode {
            return Err(fail(format!(
                "checkpoint write mode {} differs from the machine's {}",
                ck.mode, self.mode
            )));
        }
        ck.pattern
            .validate(Some(self.procs.len()))
            .map_err(|e| fail(format!("recorded pattern: {e}")))?;
        let mut states: Vec<Option<Pv>> = Vec::with_capacity(ck.procs.len());
        for (i, pc) in ck.procs.iter().enumerate() {
            let state = match pc.status {
                // A failed processor has no private memory; whatever the
                // checkpoint stores for it is ignored.
                ProcStatus::Failed => None,
                ProcStatus::Alive | ProcStatus::Halted => Some(
                    Pv::from_value(&pc.state)
                        .map_err(|e| fail(format!("P{i}'s private state does not decode: {e}")))?,
                ),
            };
            states.push(state);
        }
        // Rebuild the memory *before* mutating the adversary: `from_parts`
        // validates the cell image and per-bank counter shapes, and a
        // failure there must leave everything untouched.
        let mem = SharedMemory::from_parts(
            ck.layout,
            self.mem.size(),
            &ck.mem,
            &ck.bank_reads,
            &ck.bank_writes,
        )?;
        adversary
            .restore_state(&ck.adversary)
            .map_err(|e| fail(format!("adversary restore failed: {e}")))?;
        self.mem = mem;
        for (i, (pc, state)) in ck.procs.iter().zip(states).enumerate() {
            self.procs.status[i] = pc.status;
            self.procs.completed[i] = pc.completed;
            self.procs.state[i] = state;
        }
        self.cycle = ck.cycle;
        self.stats = ck.stats;
        self.pattern = ck.pattern.clone();
        // Re-prime the completion tracker from the restored memory: a stale
        // index must never survive a restore (and lock-step `tick` use may
        // not pass through a run entry).
        self.init_tracker(model);
        Ok(())
    }
}
