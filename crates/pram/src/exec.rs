//! Execution backends.
//!
//! The machine has two ways to execute a tick's tentative phase:
//!
//! * **Sequential** — [`Machine::run`](crate::Machine::run) /
//!   [`Machine::tick`](crate::Machine::tick): one host thread plays all `P`
//!   processors. Deterministic and fastest for small `P`.
//! * **Threaded** — [`Machine::run_threaded`](crate::Machine::run_threaded):
//!   the tentative phase (plan → read → compute) of each tick is fanned out
//!   over worker threads with `crossbeam` scoped threads; the adversary and
//!   commit phases stay serial. Because the tentative phase only *reads*
//!   the tick-start memory and writes disjoint per-processor slots, the
//!   result is bit-identical to the sequential engine — the synchronous
//!   PRAM semantics are preserved exactly while the heavy per-processor
//!   work runs on real cores.
//!
//! Both backends share all accounting, adversary and conflict-resolution
//! code, so every experiment can be cross-checked between them.

// The backends are implemented on `Machine` itself (see `machine.rs`); this
// module exists to document them and to host future backends (e.g. a
// lock-free asynchronous executor for Algorithm X).
