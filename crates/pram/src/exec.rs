//! The model-generic execution core shared by both machine models.
//!
//! The paper's two machines — the word-model CRCW PRAM of §2 (Theorems
//! 4.3/4.7) and the unit-cost-snapshot machine of §3 — share their entire
//! synchronous phase structure: plan tentative update cycles for every
//! alive processor, present the machine to the on-line adversary, validate
//! its stop/restart decisions, merge the surviving write prefixes slot by
//! slot under CRCW semantics, charge completed work, record the failure
//! pattern, and apply restarts at the next tick boundary. [`Core`]
//! implements that structure once; a model plugs in the parts that differ
//! through the [`ExecutionModel`] trait (how a tentative cycle is computed,
//! how interrupted work is charged, what its checkpoints look like).
//!
//! Everything the engines had grown separately is therefore available to
//! **every** model:
//!
//! * the run loop with [`RunLimits`], completion detection, and the
//!   [`RunControl`] pause hook for checkpointed long runs;
//! * [`Observer`] event emission — one stream, so word-model and
//!   snapshot-model runs trace identically;
//! * adversary-decision validation (shared with the models via
//!   [`crate::decisions`]);
//! * the incremental completion tracker: an [`UnvisitedIndex`] primed from
//!   [`ExecutionModel::completion_hint`] and folded on every committed
//!   write, replacing the O(N) `is_complete` scan with an O(1) emptiness
//!   test;
//! * versioned checkpoint save/restore tagged with the model's name
//!   ([`ExecutionModel::MODEL`]), so a word checkpoint cannot be restored
//!   into a snapshot machine or vice versa.
//!
//! The core stays **allocation-free in steady state**: all per-tick buffers
//! (tentative cycles, fates, slot merges, failure scratch) live in the
//! [`Core`] and are reused; index maintenance is O(committed writes)
//! amortized per tick with in-place compaction. Backends implement the
//! [`Backend`] hooks passed into [`Core::run_loop`] — the word machine's
//! persistent worker pool farms the tentative phase, the commit merge and
//! the index rebuild out to real threads, the sequential engines play every
//! phase inline — so the event stream and all accounting are byte-identical
//! across backends *by construction* (pinned by
//! `tests/golden_equivalence.rs`).

use serde::{Deserialize, Serialize};

use crate::accounting::{RunOutcome, RunReport, WorkStats};
use crate::adversary::{
    Adversary, Decisions, FailPoint, MachineView, ProcMeta, ProcStatus, TentativeCycle,
};
use crate::checkpoint::{Checkpoint, ProcCheckpoint, CHECKPOINT_VERSION};
use crate::commit::{CommitEntry, CommitScratch, SlotWinner};
use crate::cycle::MAX_WRITES;
use crate::decisions::{resolve, CycleFate};
use crate::error::PramError;
use crate::failure::{FailureEvent, FailureKind, FailurePattern};
use crate::memory::{MemoryLayout, SharedMemory};
use crate::mode::WriteMode;
use crate::pool::{
    SendPtr, TickPool, CLASS_COMMIT_MERGE, CLASS_COMMIT_SCAN, CLASS_COMMIT_STORE, CLASS_REBUILD,
};
use crate::trace::{Observer, TraceEvent};
use crate::unvisited::UnvisitedIndex;
use crate::word::{Pid, Word};
use crate::{CompletionHint, Result};

/// Safety limits for a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunLimits {
    /// Abort with [`PramError::CycleLimit`] after this many ticks. Used by
    /// experiments to demonstrate non-terminating executions (e.g.
    /// algorithm W under restarts).
    pub max_cycles: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits { max_cycles: 100_000_000 }
    }
}

/// Verdict of a `run_controlled` control callback, consulted once per tick
/// at the tick boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunControl {
    /// Execute the next tick.
    Continue,
    /// Return [`RunStatus::Paused`] without executing the tick. The machine
    /// is left exactly at the tick boundary — checkpointable via
    /// `save_checkpoint` and resumable by calling a run method again.
    Pause,
}

/// How a controlled run ended.
#[derive(Debug)]
pub enum RunStatus {
    /// The program completed; the report is the same one an uncontrolled
    /// run would have produced.
    Completed(RunReport),
    /// The control callback paused the run before tick `cycle` executed.
    Paused {
        /// The next tick to execute.
        cycle: u64,
    },
}

/// What the pooled engine does when a worker thread catches a panic while
/// playing a processor's tentative cycle (see
/// [`Machine::run_threaded_isolated`](crate::Machine::run_threaded_isolated)).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PanicPolicy {
    /// Abort the run with [`PramError::WorkerPanic`], leaving the machine
    /// at the failed tick's boundary with all pre-tick state restored.
    #[default]
    Surface,
    /// Restore the pre-tick state, replay the tick on the sequential
    /// engine, and finish the rest of the run sequentially. The run's
    /// results are identical to an undisturbed run (the tick had committed
    /// nothing when the panic fired); only wall-clock parallelism is lost.
    FallbackSequential,
}

/// Processor bookkeeping in structure-of-arrays form.
///
/// Each of the core's hot loops touches exactly one of these arrays — the
/// adversary view reads statuses, the tentative phase mutates private
/// states, charging bumps completed counts — so keeping them in separate
/// dense vectors makes every scan contiguous instead of striding over a
/// padded per-processor struct (and lets the pooled backend hand workers a
/// raw pointer into the states alone while statuses stay a shared slice).
#[derive(Clone, Debug)]
pub(crate) struct ProcSoA<S> {
    /// Liveness, indexed by PID.
    pub(crate) status: Vec<ProcStatus>,
    /// Private memory, indexed by PID; `None` while failed.
    pub(crate) state: Vec<Option<S>>,
    /// Completed update cycles charged, indexed by PID.
    pub(crate) completed: Vec<u64>,
}

impl<S> ProcSoA<S> {
    pub(crate) fn len(&self) -> usize {
        self.status.len()
    }
}

/// The parts of a machine model the shared [`Core`] cannot know: how one
/// tentative cycle is computed, how interrupted work is charged, and how
/// the model identifies itself in checkpoints.
///
/// Implemented by the word model (inside [`crate::machine`]) and the
/// snapshot model (inside [`crate::snapshot`]); the public machines are
/// thin wrappers pairing a model value with a [`Core`].
pub trait ExecutionModel {
    /// Per-processor private memory; lost on failure.
    type Private: Clone + Send;

    /// The model's name, written into checkpoints; restore refuses a
    /// checkpoint taken under a different model.
    const MODEL: &'static str;

    /// Whether [`MachineView::unvisited`] exposes the completion tracker's
    /// index to the adversary. The snapshot model does (the §3 adversaries
    /// are defined on the unvisited set); the word model predates the index
    /// and keeps its adversary view stable.
    const ADVERSARY_SEES_INDEX: bool;

    /// Fresh private state for processor `pid` (start and restart).
    fn on_start(&self, pid: Pid) -> Self::Private;

    /// Global completion predicate (uncharged).
    fn is_complete(&self, mem: &SharedMemory) -> bool;

    /// Per-cell completion decomposition; same contract as
    /// [`Program::completion_hint`](crate::Program::completion_hint).
    fn completion_hint(&self, addr: usize, value: Word) -> CompletionHint;

    /// Batched [`completion_hint`](ExecutionModel::completion_hint) over
    /// one contiguous lane of at most 64 cells starting at `base`: returns
    /// `(outstanding, tracked)` bit masks where bit `j` describes cell
    /// `base + j`. Must agree cell-wise with `completion_hint` — debug
    /// builds assert it when the batched tracker path runs. Models forward
    /// to their program, so a program can supply a branch-free classifier
    /// the compiler autovectorizes.
    fn completion_masks(&self, base: usize, values: &[Word]) -> (u64, u64) {
        crate::fold_completion_masks(base, values, |addr, value| self.completion_hint(addr, value))
    }

    /// Phase 1 (sequential reference implementation): fill
    /// `core.tentative[i]` for every alive processor from the tick-start
    /// memory, advancing private states in place. Pooled backends substitute
    /// their own phase via [`Core::run_loop`]'s `tentative` parameter.
    ///
    /// # Errors
    ///
    /// See [`PramError`] — typically budget or bounds violations.
    fn tentative(&self, core: &mut Core<Self::Private>) -> Result<()>;

    /// `S'` charge for a cycle interrupted after its reads with
    /// `committed_writes` of its writes committed. The word model charges
    /// `reads + 1 + committed`; the snapshot model's whole-memory read is
    /// free and its unit of local computation is only charged on
    /// completion, so it charges `committed` alone.
    fn partial_instructions(t: &TentativeCycle, committed_writes: usize) -> u64;

    /// `(reads, writes)` budget header for checkpoints. The snapshot model
    /// has no read budget and reports `(0, write_budget)`.
    fn checkpoint_budget(&self) -> (usize, usize);
}

/// The three per-tick hooks a run backend supplies to [`Core::run_loop`]:
/// how the completion tracker is primed at run entry, how the tentative
/// phase executes, and how the tick's decisions are applied. The defaults
/// are the sequential reference paths; the word machine's pooled backends
/// (see `crate::machine`) override them with the worker-pool phases. Every
/// override must be observationally identical to the default — event
/// streams, stats, memory, and the index are pinned byte-identical by the
/// golden and differential tests.
pub(crate) trait Backend<M: ExecutionModel> {
    /// Prime the completion tracker at run entry.
    fn prime(&mut self, model: &M, core: &mut Core<M::Private>) {
        core.init_tracker(model);
    }

    /// Phase 1: fill `core.tentative[i]` for every alive processor.
    ///
    /// # Errors
    ///
    /// See [`PramError`] — typically budget or bounds violations.
    fn tentative(&mut self, model: &M, core: &mut Core<M::Private>) -> Result<()>;

    /// Phases 2b/3: validate decisions, commit, charge.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    fn apply(
        &mut self,
        model: &M,
        core: &mut Core<M::Private>,
        decisions: Decisions,
        observer: &mut dyn Observer,
    ) -> Result<()> {
        core.apply(model, decisions, observer)
    }
}

/// The sequential backend: every phase plays inline through the reference
/// implementations.
pub(crate) struct SeqBackend;

impl<M: ExecutionModel> Backend<M> for SeqBackend {
    fn tentative(&mut self, model: &M, core: &mut Core<M::Private>) -> Result<()> {
        model.tentative(core)
    }
}

/// The model-generic machine state and synchronous run loop.
///
/// A `Core` is the entire mutable state of a machine — shared memory,
/// processor slots, accounting, the completion tracker, and every reused
/// per-tick buffer. The public machines ([`Machine`](crate::Machine),
/// [`SnapshotMachine`](crate::SnapshotMachine)) wrap a `Core` together with
/// their [`ExecutionModel`] and delegate the phase structure here.
#[derive(Debug)]
pub struct Core<Pv> {
    pub(crate) mem: SharedMemory,
    pub(crate) mode: WriteMode,
    /// Number of write slots merged per tick (the write half of the budget).
    pub(crate) write_slots: usize,
    pub(crate) procs: ProcSoA<Pv>,
    pub(crate) cycle: u64,
    pub(crate) stats: WorkStats,
    pub(crate) pattern: FailurePattern,
    // Incremental completion tracker (see `ExecutionModel::completion_hint`):
    // whether the model opted in, and the index of outstanding cells.
    // Primed at construction and re-primed at every run entry.
    pub(crate) tracked: bool,
    pub(crate) unvisited: UnvisitedIndex,
    /// Lane width of the batched kernels. The default
    /// ([`DEFAULT_BATCH_WIDTH`]) selects the lane-mask batched paths and
    /// aligns pooled chunk claiming; `1` selects the scalar reference
    /// paths. Behavior is identical either way (pinned by the
    /// batched-vs-scalar differential proptests); only the instruction
    /// stream differs.
    pub(crate) batch_width: usize,
    // Reused per-tick buffers.
    pub(crate) tentative: Vec<Option<TentativeCycle>>,
    pub(crate) meta: Vec<ProcMeta>,
    pub(crate) fates: Vec<CycleFate>,
    pub(crate) slot_writes: Vec<(Pid, usize, Word)>,
    /// Processors with at least one surviving write this tick (compact
    /// list, built by the batch pre-pass in [`Core::apply`]).
    pub(crate) active: Vec<u32>,
    /// Per-processor surviving-write count for the current tick.
    pub(crate) surviving: Vec<u32>,
    pub(crate) failed_now: Vec<bool>,
    pub(crate) fail_points: Vec<Option<FailPoint>>,
    pub(crate) restarted: Vec<bool>,
    pub(crate) events: Vec<FailureEvent>,
    /// Per-worker buffers of the parallel commit (see [`crate::commit`]);
    /// reused across ticks so the pooled apply stays allocation-free in
    /// steady state.
    pub(crate) commit: CommitScratch,
}

/// Default lane width of the batched tentative-phase kernels: one `u64`
/// mask worth of cells.
pub const DEFAULT_BATCH_WIDTH: usize = crate::unvisited::LANE_WIDTH;

/// Pooled chunk alignment is capped so huge `batch_width × interleave`
/// combinations cannot serialize a run into one chunk.
const MAX_CHUNK_ALIGN: usize = 1 << 16;

/// Smallest address space worth sharding the index rebuild over the pool:
/// below this the sequential rebuild finishes before the workers would wake
/// up. Tests force the sharded path regardless via `RFSP_POOL_INLINE_NS=0`.
const SHARDED_REBUILD_MIN: usize = 1 << 20;

fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn lcm(a: usize, b: usize) -> usize {
    if a == 0 || b == 0 {
        return a.max(b);
    }
    a / gcd(a, b) * b
}

impl<Pv: Clone + Send> Core<Pv> {
    /// Build a core for `model` with `processors` slots over `mem`,
    /// merging `write_slots` write slots per tick under `mode`. The
    /// completion tracker is primed immediately, so lock-step `tick` use
    /// works without passing through a run entry.
    pub(crate) fn new<M: ExecutionModel<Private = Pv>>(
        model: &M,
        processors: usize,
        mem: SharedMemory,
        mode: WriteMode,
        write_slots: usize,
    ) -> Self {
        // The batch pre-pass keeps its compact processor list in u32.
        assert!(processors <= u32::MAX as usize, "processor count exceeds u32 range");
        let procs = ProcSoA {
            status: vec![ProcStatus::Alive; processors],
            state: (0..processors).map(|i| Some(model.on_start(Pid(i)))).collect(),
            completed: vec![0; processors],
        };
        let mut core = Core {
            mem,
            mode,
            write_slots,
            procs,
            cycle: 0,
            stats: WorkStats::default(),
            pattern: FailurePattern::new(),
            tracked: false,
            unvisited: UnvisitedIndex::new(0),
            batch_width: DEFAULT_BATCH_WIDTH,
            tentative: vec![None; processors],
            meta: Vec::with_capacity(processors),
            fates: vec![CycleFate::Idle; processors],
            slot_writes: Vec::new(),
            active: Vec::with_capacity(processors),
            surviving: vec![0; processors],
            failed_now: vec![false; processors],
            fail_points: vec![None; processors],
            restarted: vec![false; processors],
            events: Vec::new(),
            commit: CommitScratch::default(),
        };
        core.init_tracker(model);
        core
    }

    /// Classify every shared cell via [`ExecutionModel::completion_hint`]
    /// and prime the unvisited index. The model is *tracked* iff it reports
    /// at least one tracked cell; untracked models keep the full-scan
    /// completion check and get no index.
    pub(crate) fn init_tracker<M: ExecutionModel<Private = Pv>>(&mut self, model: &M) {
        let mem = &self.mem;
        // Both paths walk the memory in bank-aligned chunks: each chunk is
        // one contiguous slice of its bank, so a banked layout is
        // classified without the per-address bank mapping.
        if self.batch_width > 1 {
            // Batched path: 64-cell lanes classified into bit masks by
            // `completion_masks`, whose hot implementations are
            // branch-free (see `WriteAllTasks::completion_masks`).
            let mut tracked_bits = 0u64;
            self.unvisited.rebuild_from_chunks_batched(mem.size(), mem.chunks(), |base, lane| {
                let (outstanding, tracked) = model.completion_masks(base, lane);
                #[cfg(debug_assertions)]
                {
                    let expected = crate::fold_completion_masks(base, lane, |addr, value| {
                        model.completion_hint(addr, value)
                    });
                    assert_eq!(
                        (outstanding, tracked),
                        expected,
                        "completion_masks disagrees with completion_hint on lane at {base}",
                    );
                }
                tracked_bits |= tracked;
                outstanding
            });
            self.tracked = tracked_bits != 0;
        } else {
            // Scalar reference path (`batch_width == 1`), kept verbatim for
            // the batched-vs-scalar differential proptests.
            let mut any_tracked = false;
            self.unvisited.rebuild_from_chunks(mem.size(), mem.chunks(), |addr, value| match model
                .completion_hint(addr, value)
            {
                CompletionHint::Untracked => false,
                CompletionHint::Outstanding => {
                    any_tracked = true;
                    true
                }
                CompletionHint::Satisfied => {
                    any_tracked = true;
                    false
                }
            });
            self.tracked = any_tracked;
        }
    }

    /// Chunk alignment for the pooled tentative phase: a multiple of the
    /// batch width (so a worker's chunk is whole lanes) and, on banked
    /// layouts, of the bank interleave (so a lane never straddles a bank
    /// boundary inside a chunk). Capped at a constant so pathological
    /// `batch_width × interleave` combinations cannot serialize a run into
    /// one chunk.
    pub(crate) fn chunk_align(&self) -> usize {
        let base = self.batch_width.max(1);
        let align = match self.mem.layout() {
            MemoryLayout::Banked { interleave, .. } => lcm(base, interleave),
            _ => base,
        };
        align.min(MAX_CHUNK_ALIGN)
    }

    /// O(1) completion test for tracked models (the index is empty), full
    /// scan otherwise. Debug builds cross-check the index against
    /// `is_complete`.
    fn completion_reached<M: ExecutionModel<Private = Pv>>(&self, model: &M) -> bool {
        if self.tracked {
            let done = self.unvisited.is_empty();
            debug_assert_eq!(
                done,
                model.is_complete(&self.mem),
                "completion tracker diverged from is_complete at tick {} \
                 ({} cells outstanding) — the hint contract is violated",
                self.cycle,
                self.unvisited.len(),
            );
            done
        } else {
            model.is_complete(&self.mem)
        }
    }

    /// Build the completed-run report. The recorded failure pattern is
    /// **moved** out of the core (it can be megabytes on adversarial runs);
    /// the core's own pattern is left empty, so a subsequent continuation
    /// run records a fresh pattern.
    fn take_completed_report(&mut self) -> RunReport {
        RunReport {
            outcome: RunOutcome::Completed,
            stats: self.stats,
            pattern: std::mem::take(&mut self.pattern),
            per_processor: self.procs.completed.clone(),
        }
    }

    /// Phase 2a: present the machine to the adversary and collect its
    /// decisions for this tick.
    fn collect_decisions<M, A>(&mut self, adversary: &mut A) -> Decisions
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        self.meta.clear();
        self.meta.extend(self.procs.status.iter().zip(&self.procs.completed).enumerate().map(
            |(i, (&status, &completed))| ProcMeta {
                pid: Pid(i),
                status,
                completed_cycles: completed,
            },
        ));
        let view = MachineView {
            cycle: self.cycle,
            processors: self.procs.len(),
            mem: &self.mem,
            procs: &self.meta,
            tentative: &self.tentative,
            unvisited: if M::ADVERSARY_SEES_INDEX && self.tracked {
                Some(&self.unvisited)
            } else {
                None
            },
        };
        adversary.decide(&view)
    }

    /// Execute exactly one observed tick: `TickStart`, the model's
    /// sequential tentative phase, adversary decisions, validate/commit/
    /// charge.
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub(crate) fn tick_observed<M, A>(
        &mut self,
        model: &M,
        adversary: &mut A,
        observer: &mut dyn Observer,
    ) -> Result<()>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        observer.event(TraceEvent::TickStart { cycle: self.cycle });
        model.tentative(self)?;
        let decisions = self.collect_decisions::<M, A>(adversary);
        self.apply(model, decisions, observer)
    }

    /// The single run loop behind every public entry point of both
    /// machines. Backends differ only in the [`Backend`] hooks they pass
    /// in, so the event stream and all accounting are shared by
    /// construction. The `control` callback runs at the tick boundary —
    /// after the completion and cycle-limit checks, before the tick's
    /// `TickStart` event — so pausing and resuming produces, by
    /// construction, the **concatenation** of the two runs' event streams,
    /// which equals the uninterrupted run's stream.
    ///
    /// # Errors
    ///
    /// See [`PramError`]; in particular [`PramError::CycleLimit`] when
    /// `limits` are exhausted.
    pub(crate) fn run_loop<M, A, B>(
        &mut self,
        model: &M,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
        backend: &mut B,
        mut control: impl FnMut(u64) -> RunControl,
    ) -> Result<RunStatus>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
        B: Backend<M>,
    {
        backend.prime(model, self);
        loop {
            if self.completion_reached(model) {
                observer.event(TraceEvent::Completed { cycle: self.cycle });
                return Ok(RunStatus::Completed(self.take_completed_report()));
            }
            if self.cycle >= limits.max_cycles {
                return Err(PramError::CycleLimit { cycles: limits.max_cycles });
            }
            if control(self.cycle) == RunControl::Pause {
                return Ok(RunStatus::Paused { cycle: self.cycle });
            }
            observer.event(TraceEvent::TickStart { cycle: self.cycle });
            backend.tentative(model, self)?;
            let decisions = self.collect_decisions::<M, A>(adversary);
            backend.apply(model, self, decisions, observer)?;
        }
    }

    /// [`Core::run_loop`] without a pause hook, unwrapped to a
    /// [`RunReport`].
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub(crate) fn run_to_completion<M, A, B>(
        &mut self,
        model: &M,
        adversary: &mut A,
        limits: RunLimits,
        observer: &mut dyn Observer,
        backend: &mut B,
    ) -> Result<RunReport>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
        B: Backend<M>,
    {
        match self
            .run_loop(model, adversary, limits, observer, backend, |_| RunControl::Continue)?
        {
            RunStatus::Completed(report) => Ok(report),
            RunStatus::Paused { .. } => unreachable!("the control callback never pauses"),
        }
    }

    /// Phases 2b/3: validate the adversary's decisions (shared
    /// [`crate::decisions`] logic), merge surviving write prefixes slot by
    /// slot, charge work, fold commits into the completion tracker, record
    /// the failure pattern, apply restarts.
    pub(crate) fn apply<M>(
        &mut self,
        model: &M,
        decisions: Decisions,
        observer: &mut dyn Observer,
    ) -> Result<()>
    where
        M: ExecutionModel<Private = Pv>,
    {
        let max_slots = self.resolve_and_prepass(decisions)?;

        // --- Commit surviving write prefixes, slot by slot. ---
        // (`active` is detached during the loop so `commit_slot` can borrow
        // the rest of the core mutably; it is a reused buffer, so put it
        // back afterwards.)
        let active = std::mem::take(&mut self.active);
        for slot in 0..max_slots {
            self.slot_writes.clear();
            for &iu in &active {
                let i = iu as usize;
                if slot < self.surviving[i] as usize {
                    let t = self.tentative[i].as_ref().expect("active cycle exists");
                    let (addr, value) = t.writes.writes()[slot];
                    self.slot_writes.push((Pid(i), addr, value));
                }
            }
            self.commit_slot(model, observer)?;
        }
        self.active = active;

        self.charge_and_finish(model, observer);
        Ok(())
    }

    /// Phase 2b: validate the adversary's decisions and fold each
    /// processor's fate into a surviving-write count once (instead of
    /// re-deriving it `write_slots` times). Returns the maximum surviving
    /// prefix length — the number of write slots the commit must merge.
    fn resolve_and_prepass(&mut self, decisions: Decisions) -> Result<usize> {
        let p = self.procs.len();
        let statuses = &self.procs.status;
        resolve(
            self.cycle,
            &decisions,
            |i| statuses[i],
            &self.tentative,
            &mut self.fates,
            &mut self.failed_now,
            &mut self.fail_points,
            &mut self.restarted,
        )?;

        // The per-slot merge then touches only the compact list of
        // processors that commit anything this tick, rather than striding
        // over all P tentative slots per write slot.
        self.active.clear();
        let mut max_slots = 0;
        for i in 0..p {
            let n = match self.fates[i] {
                CycleFate::Completed => {
                    self.tentative[i].as_ref().expect("completed cycle exists").writes.len()
                }
                CycleFate::Interrupted { committed_writes } => {
                    // Validated against the write count by `resolve`, but
                    // clamp anyway: `surviving` is the sole bound the slot
                    // loop indexes `writes()` with.
                    let t = self.tentative[i].as_ref().expect("interrupted cycle exists");
                    committed_writes.min(t.writes.len())
                }
                CycleFate::InterruptedBeforeReads | CycleFate::Idle => 0,
            };
            self.surviving[i] = n as u32;
            if n > 0 {
                self.active.push(i as u32);
                max_slots = max_slots.max(n);
            }
        }

        // A cycle's writes are budget-checked in the tentative phase and
        // `resolve` bounds committed prefixes by the cycle's write count,
        // so no survivor can exceed the write-slot budget.
        debug_assert!(max_slots <= self.write_slots);
        Ok(max_slots)
    }

    /// Phase 3: charge work, update processor states, record the failure
    /// pattern, advance the clock, restore the index's dense form.
    fn charge_and_finish<M>(&mut self, model: &M, observer: &mut dyn Observer)
    where
        M: ExecutionModel<Private = Pv>,
    {
        let p = self.procs.len();
        // --- Charge work, update processor states, record the pattern. ---
        debug_assert!(self.events.is_empty());
        for i in 0..p {
            match self.fates[i] {
                CycleFate::Idle => {}
                CycleFate::Completed => {
                    let t = self.tentative[i].as_ref().expect("completed cycle exists");
                    observer.event(TraceEvent::CycleCompleted { cycle: self.cycle, pid: Pid(i) });
                    self.stats.completed_cycles += 1;
                    self.stats.charged_instructions += (t.reads.len() + 1 + t.writes.len()) as u64;
                    self.mem.charge_reads_at(t.reads.addrs());
                    self.procs.completed[i] += 1;
                    if t.halts {
                        self.procs.status[i] = ProcStatus::Halted;
                    }
                    // The post-cycle private state is already in the slot
                    // (the tentative phase advances it in place).
                }
                CycleFate::InterruptedBeforeReads => {
                    observer.event(TraceEvent::CycleInterrupted { cycle: self.cycle, pid: Pid(i) });
                    self.stats.interrupted_cycles += 1;
                    // Stopped before the cycle began: zero instructions, so
                    // zero partial work — explicitly, not via a sentinel.
                }
                CycleFate::Interrupted { committed_writes } => {
                    let t = self.tentative[i].as_ref().expect("interrupted cycle exists");
                    observer.event(TraceEvent::CycleInterrupted { cycle: self.cycle, pid: Pid(i) });
                    self.stats.interrupted_cycles += 1;
                    // What an interrupted cycle is charged differs by model
                    // (the snapshot's read and computation are free).
                    self.stats.partial_instructions += M::partial_instructions(t, committed_writes);
                    self.mem.charge_reads_at(t.reads.addrs());
                }
            }
            if self.failed_now[i] {
                self.procs.status[i] = ProcStatus::Failed;
                self.procs.state[i] = None;
                self.stats.failures += 1;
                let point = self.fail_points[i].expect("failed processor has a recorded point");
                observer.event(TraceEvent::Failure { cycle: self.cycle, pid: Pid(i), point });
                self.events.push(FailureEvent {
                    kind: FailureKind::Failure { point },
                    pid: i,
                    time: self.cycle,
                });
            }
        }
        for i in (0..p).filter(|&i| self.restarted[i]) {
            observer.event(TraceEvent::Restart { cycle: self.cycle, pid: Pid(i) });
            self.procs.status[i] = ProcStatus::Alive;
            self.procs.state[i] = Some(model.on_start(Pid(i)));
            self.stats.restarts += 1;
            self.events.push(FailureEvent {
                kind: FailureKind::Restart,
                pid: i,
                time: self.cycle + 1,
            });
        }
        // Failure events at this tick precede restart events at tick+1, so
        // pushing fails-then-restarts keeps the pattern time-ordered.
        self.pattern.extend(self.events.drain(..));

        self.cycle += 1;
        self.stats.parallel_time = self.cycle;

        // Restore the index's dense form for the next tick's views — but
        // only when the model has a reader: the snapshot model selects
        // from the index during its tentative phase and exposes it to the
        // adversary, so it must be dense at every tick boundary. The word
        // model only folds O(1) updates in and tests emptiness, and
        // compacting its tombstones every tick would put an O(N) scan on
        // the hot path — its index stays lazily dirty instead. Debug
        // builds always compact so the ground-truth cross-check below can
        // run.
        if self.tracked {
            if M::ADVERSARY_SEES_INDEX || cfg!(debug_assertions) {
                self.unvisited.ensure_clean();
            }
            debug_assert!(
                self.unvisited.matches(self.mem.size(), |addr| matches!(
                    model.completion_hint(addr, self.mem.peek(addr)),
                    CompletionHint::Outstanding
                )),
                "unvisited index diverged from the full scan after tick {}",
                self.cycle - 1,
            );
        }
    }

    /// Merge one write slot under the core's CRCW semantics, apply it, and
    /// fold each committed store into the completion tracker.
    fn commit_slot<M>(&mut self, model: &M, observer: &mut dyn Observer) -> Result<()>
    where
        M: ExecutionModel<Private = Pv>,
    {
        // Group writers by address; within an address the lowest PID comes
        // first, making ARBITRARY/PRIORITY resolution "first writer wins".
        // (addr, pid) keys are unique, so the unstable sort is
        // deterministic.
        self.slot_writes.sort_unstable_by_key(|&(pid, addr, _)| (addr, pid));
        let mut i = 0;
        while i < self.slot_writes.len() {
            let (pid, addr, value) = self.slot_writes[i];
            let mut j = i + 1;
            let chosen = (pid, value);
            while j < self.slot_writes.len() {
                let (pid2, addr2, value2) = self.slot_writes[j];
                if addr2 != addr {
                    break;
                }
                match self.mode {
                    WriteMode::Common => {
                        if value2 != chosen.1 {
                            return Err(PramError::CommonWriteConflict {
                                addr,
                                cycle: self.cycle,
                                first: (chosen.0, chosen.1),
                                second: (pid2, value2),
                            });
                        }
                    }
                    WriteMode::Arbitrary | WriteMode::Priority => {
                        // chosen stays: lowest PID wins and writers are in
                        // PID order within equal addresses (see sort above).
                    }
                    WriteMode::Exclusive => {
                        return Err(PramError::ExclusiveWriteConflict { addr, cycle: self.cycle });
                    }
                }
                j += 1;
            }
            if self.tracked {
                // Fold the committed write into the unvisited index
                // *before* the store (the old value is still visible).
                let old = model.completion_hint(addr, self.mem.peek(addr));
                let new = model.completion_hint(addr, chosen.1);
                match (old, new) {
                    (CompletionHint::Outstanding, CompletionHint::Satisfied) => {
                        self.unvisited.remove(addr);
                    }
                    (CompletionHint::Satisfied, CompletionHint::Outstanding) => {
                        self.unvisited.insert(addr);
                    }
                    _ => {}
                }
            }
            self.mem.store(addr, chosen.1)?;
            observer.event(TraceEvent::Commit { cycle: self.cycle, addr, value: chosen.1 });
            i = j;
        }
        Ok(())
    }

    /// [`Core::apply`] with the commit merge farmed out to the worker pool.
    ///
    /// Observationally identical to the sequential apply on every
    /// successful tick: same memory image, same `Commit` event stream (the
    /// deterministic rank-ordered merge reproduces the slot-major,
    /// address-ascending order), same stats and bank counters, same index
    /// membership. On a CRCW conflict it reports the same error the
    /// sequential scan would hit first; the machine state after an error is
    /// unspecified under both backends (the sequential engine stops
    /// mid-commit, this one withholds the whole tick's stores except those
    /// of already-finished partitions — see DESIGN.md §15).
    ///
    /// # Errors
    ///
    /// See [`PramError`].
    pub(crate) fn apply_pooled<M>(
        &mut self,
        model: &M,
        decisions: Decisions,
        observer: &mut dyn Observer,
        pool: &TickPool,
    ) -> Result<()>
    where
        M: ExecutionModel<Private = Pv> + Sync,
    {
        // On a host that cannot run workers concurrently the bucket/merge
        // dance is pure overhead — fall back to the serial commit unless
        // the tests force the parallel path.
        if !pool.force_parallel() && !pool.multicore() {
            return self.apply(model, decisions, observer);
        }
        let max_slots = self.resolve_and_prepass(decisions)?;
        if max_slots > 0 {
            self.commit_pooled(model, max_slots, observer, pool)?;
        }
        self.charge_and_finish(model, observer);
        Ok(())
    }

    /// The parallel commit (see `crate::commit` for the buffer layout):
    ///
    /// 1. **Scan** — worker groups bucket the surviving writes of disjoint
    ///    PID ranges by destination address partition.
    /// 2. **Merge** — each address partition sorts its bucket rows by
    ///    `(slot, addr, pid)` and resolves CRCW winners per `(slot, addr)`
    ///    group, recording per-bank write deltas; conflicts are recorded,
    ///    not applied.
    /// 3. **Store** — each partition k-way-merges its per-slot winner lists
    ///    by address, folds the completion-hint chain, and writes the final
    ///    value per address through raw bank pointers. Runs only if no
    ///    partition recorded a conflict.
    ///
    /// The coordinator then merges the accounting deltas, replays the
    /// `Commit` events in slot-major rank order (partitions are contiguous
    /// ascending address ranges, so this is exactly the sequential order),
    /// and applies the net index operations.
    fn commit_pooled<M>(
        &mut self,
        model: &M,
        max_slots: usize,
        observer: &mut dyn Observer,
        pool: &TickPool,
    ) -> Result<()>
    where
        M: ExecutionModel<Private = Pv> + Sync,
    {
        let groups = pool.threads();
        let parts = pool.threads();
        let p = self.procs.len();
        let gsize = p.div_ceil(groups).max(1);
        let size = self.mem.size();
        // ceil(size/parts) guarantees addr / part_size < parts for every
        // in-bounds address.
        let part_size = size.div_ceil(parts).max(1);
        let stride = self.write_slots.max(1);
        debug_assert!(max_slots <= MAX_WRITES, "write budget exceeds the merge's head array");
        let bank_count = self.mem.bank_count();
        let layout = self.mem.layout();
        let cycle = self.cycle;
        let mode = self.mode;
        let tracked = self.tracked;
        self.commit.prepare(groups, parts, stride, bank_count);
        self.mem.bank_cell_ptrs(&mut self.commit.bank_ptrs);

        // --- Phase 1: scan. Group g owns PIDs [g*gsize, (g+1)*gsize) and
        // bucket rows [g*parts, (g+1)*parts) — disjoint per group.
        {
            let tentative = &self.tentative;
            let surviving = &self.surviving;
            let buckets_ptr = SendPtr::new(self.commit.buckets.as_mut_ptr());
            let errs_ptr = SendPtr::new(self.commit.errs.as_mut_ptr());
            let scan = move |g0: usize, g1: usize| -> Result<()> {
                for g in g0..g1 {
                    // SAFETY: rows [g*parts, (g+1)*parts) and errs[g] are
                    // owned exclusively by group g this epoch.
                    let rows = unsafe {
                        std::slice::from_raw_parts_mut(buckets_ptr.ptr().add(g * parts), parts)
                    };
                    let err = unsafe { &mut *errs_ptr.ptr().add(g) };
                    *err = None;
                    for row in rows.iter_mut() {
                        row.clear();
                    }
                    for i in (g * gsize).min(p)..((g + 1) * gsize).min(p) {
                        let n = surviving[i] as usize;
                        if n == 0 {
                            continue;
                        }
                        let t = tentative[i].as_ref().expect("surviving cycle exists");
                        for (s, &(addr, value)) in t.writes.writes()[..n].iter().enumerate() {
                            if addr >= size {
                                // Defensive: the tentative phase bounds-
                                // checks writes, but an out-of-bounds store
                                // must error like the sequential commit,
                                // not corrupt a bucket row. Keep the
                                // group's minimum-(slot, addr) offender.
                                let key = (s as u32, addr);
                                if err.as_ref().is_none_or(|&(es, ea, _)| key < (es, ea)) {
                                    *err = Some((
                                        key.0,
                                        key.1,
                                        PramError::AddressOutOfBounds { addr, size },
                                    ));
                                }
                                continue;
                            }
                            rows[addr / part_size].push(CommitEntry {
                                slot: s as u32,
                                addr,
                                pid: i as u32,
                                value,
                            });
                        }
                    }
                }
                Ok(())
            };
            pool.run_tick(CLASS_COMMIT_SCAN, groups, 1, &scan)?;
        }
        if let Some(err) = self.commit.take_min_err() {
            return Err(err);
        }

        // --- Phase 2: merge. Partition w owns the address range
        // [w*part_size, (w+1)*part_size) and its own sorted/winners/deltas
        // rows.
        {
            let buckets = &self.commit.buckets;
            let sorted_ptr = SendPtr::new(self.commit.sorted.as_mut_ptr());
            let winners_ptr = SendPtr::new(self.commit.winners.as_mut_ptr());
            let deltas_ptr = SendPtr::new(self.commit.bank_deltas.as_mut_ptr());
            let errs_ptr = SendPtr::new(self.commit.errs.as_mut_ptr());
            let merge = move |w0: usize, w1: usize| -> Result<()> {
                for w in w0..w1 {
                    // SAFETY: sorted[w], winners[w*stride..], bank_deltas[w]
                    // and errs[w] are owned exclusively by partition w.
                    let sorted = unsafe { &mut *sorted_ptr.ptr().add(w) };
                    let winners = unsafe {
                        std::slice::from_raw_parts_mut(winners_ptr.ptr().add(w * stride), stride)
                    };
                    let deltas = unsafe { &mut *deltas_ptr.ptr().add(w) };
                    let err = unsafe { &mut *errs_ptr.ptr().add(w) };
                    *err = None;
                    sorted.clear();
                    for g in 0..groups {
                        sorted.extend_from_slice(&buckets[g * parts + w]);
                    }
                    // (slot, addr, pid) keys are unique, so the unstable
                    // sort is deterministic; within a (slot, addr) group the
                    // lowest PID comes first, exactly like the sequential
                    // per-slot sort.
                    sorted.sort_unstable_by_key(|e| (e.slot, e.addr, e.pid));
                    for row in winners[..max_slots].iter_mut() {
                        row.clear();
                    }
                    deltas.clear();
                    deltas.resize(bank_count, 0);
                    let mut i = 0;
                    'scan: while i < sorted.len() {
                        let e = sorted[i];
                        let mut j = i + 1;
                        while j < sorted.len()
                            && sorted[j].slot == e.slot
                            && sorted[j].addr == e.addr
                        {
                            let e2 = sorted[j];
                            match mode {
                                WriteMode::Common => {
                                    if e2.value != e.value {
                                        *err = Some((
                                            e.slot,
                                            e.addr,
                                            PramError::CommonWriteConflict {
                                                addr: e.addr,
                                                cycle,
                                                first: (Pid(e.pid as usize), e.value),
                                                second: (Pid(e2.pid as usize), e2.value),
                                            },
                                        ));
                                        break 'scan;
                                    }
                                }
                                WriteMode::Arbitrary | WriteMode::Priority => {
                                    // Lowest PID (the group head) wins.
                                }
                                WriteMode::Exclusive => {
                                    *err = Some((
                                        e.slot,
                                        e.addr,
                                        PramError::ExclusiveWriteConflict { addr: e.addr, cycle },
                                    ));
                                    break 'scan;
                                }
                            }
                            j += 1;
                        }
                        winners[e.slot as usize].push(SlotWinner { addr: e.addr, value: e.value });
                        deltas[layout.bank_of(e.addr)] += 1;
                        i = j;
                    }
                }
                Ok(())
            };
            pool.run_tick(CLASS_COMMIT_MERGE, parts, 1, &merge)?;
        }
        if let Some(err) = self.commit.take_min_err() {
            // The scan runs in (slot, addr) order and stops at its first
            // conflict, so the minimum across partitions is exactly the
            // error the sequential slot loop would return. No stores, no
            // events, no accounting are applied for the failed tick.
            return Err(err);
        }

        // --- Phase 3: store. Partition w writes only addresses inside its
        // range; `locate` maps disjoint addresses to disjoint (bank, cell)
        // slots, so the raw-pointer stores never race.
        {
            let winners = &self.commit.winners;
            let bank_ptrs = &self.commit.bank_ptrs;
            let ops_ptr = SendPtr::new(self.commit.index_ops.as_mut_ptr());
            let store = move |w0: usize, w1: usize| -> Result<()> {
                for w in w0..w1 {
                    // SAFETY: index_ops[w] is owned exclusively by
                    // partition w.
                    let ops = unsafe { &mut *ops_ptr.ptr().add(w) };
                    ops.clear();
                    let rows = &winners[w * stride..w * stride + max_slots];
                    let mut heads = [0usize; MAX_WRITES];
                    loop {
                        // Next address in the k-way merge of the per-slot
                        // winner lists (each is address-ascending).
                        let mut next: Option<usize> = None;
                        for (s, row) in rows.iter().enumerate() {
                            if let Some(wn) = row.get(heads[s]) {
                                next = Some(next.map_or(wn.addr, |a: usize| a.min(wn.addr)));
                            }
                        }
                        let Some(addr) = next else { break };
                        let (bank, off) = layout.locate(addr);
                        // SAFETY: addr is in partition w's range; see above.
                        let cell = unsafe { bank_ptrs[bank].ptr().add(off) };
                        let initial = unsafe { *cell };
                        // Fold the slot chain exactly like the sequential
                        // engine: each store's "old" value is the previous
                        // slot's winner. Successive index operations for
                        // one address strictly alternate remove/insert, so
                        // membership after the chain equals membership
                        // after the *last* operation alone — and insert/
                        // remove are idempotent on membership, so the
                        // coordinator applies just that one.
                        let mut cur =
                            if tracked { Some(model.completion_hint(addr, initial)) } else { None };
                        let mut value = initial;
                        let mut net: Option<bool> = None;
                        for (s, row) in rows.iter().enumerate() {
                            if let Some(wn) = row.get(heads[s]) {
                                if wn.addr == addr {
                                    heads[s] += 1;
                                    value = wn.value;
                                    if let Some(old) = cur {
                                        let new = model.completion_hint(addr, wn.value);
                                        match (old, new) {
                                            (
                                                CompletionHint::Outstanding,
                                                CompletionHint::Satisfied,
                                            ) => net = Some(false),
                                            (
                                                CompletionHint::Satisfied,
                                                CompletionHint::Outstanding,
                                            ) => net = Some(true),
                                            _ => {}
                                        }
                                        cur = Some(new);
                                    }
                                }
                            }
                        }
                        // SAFETY: as above — exclusive by address partition.
                        unsafe { *cell = value };
                        if let Some(insert) = net {
                            ops.push((addr, insert));
                        }
                    }
                }
                Ok(())
            };
            pool.run_tick(CLASS_COMMIT_STORE, parts, 1, &store)?;
        }

        // --- Deterministic rank-ordered merge on the coordinator. ---
        for w in 0..parts {
            let deltas = std::mem::take(&mut self.commit.bank_deltas[w]);
            self.mem.add_bank_writes(&deltas);
            self.commit.bank_deltas[w] = deltas;
        }
        // Slot-major, then partitions in rank order: partitions are
        // contiguous ascending address ranges and each winner row is
        // address-ascending, so this replays the sequential engine's
        // slot-major address-ascending Commit stream byte for byte.
        for s in 0..max_slots {
            for w in 0..parts {
                for wn in &self.commit.winners[w * stride + s] {
                    observer.event(TraceEvent::Commit { cycle, addr: wn.addr, value: wn.value });
                }
            }
        }
        if tracked {
            let commit = &self.commit;
            let unvisited = &mut self.unvisited;
            for w in 0..parts {
                for &(addr, insert) in &commit.index_ops[w] {
                    if insert {
                        unvisited.insert(addr);
                    } else {
                        unvisited.remove(addr);
                    }
                }
            }
        }
        Ok(())
    }

    /// [`Core::init_tracker`] with the rebuild sharded across the pool when
    /// the address space is large enough to pay for it (always, when the
    /// tests force the parallel path). Falls back to the sequential rebuild
    /// if a worker panics mid-fill (the classifier is model code).
    pub(crate) fn init_tracker_pooled<M>(&mut self, model: &M, pool: &TickPool)
    where
        M: ExecutionModel<Private = Pv> + Sync,
    {
        let sharded = self.batch_width > 1
            && (pool.force_parallel()
                || (pool.multicore() && self.mem.size() >= SHARDED_REBUILD_MIN));
        if !sharded || self.try_sharded_rebuild(model, pool).is_err() {
            self.init_tracker(model);
        }
    }

    /// The sharded rebuild: count outstanding cells per chunk-aligned
    /// address partition, prefix-sum the counts into dense-items offsets in
    /// rank order, then let each partition fill its own disjoint slice of
    /// the index's dense form directly. The rank-ordered stitch is implicit
    /// in the offsets: concatenating the partitions is exactly the
    /// ascending dense form a sequential rebuild produces.
    fn try_sharded_rebuild<M>(&mut self, model: &M, pool: &TickPool) -> Result<()>
    where
        M: ExecutionModel<Private = Pv> + Sync,
    {
        let parts = pool.threads();
        let size = self.mem.size();
        let align = self.chunk_align();
        let part = size.div_ceil(parts).max(1).next_multiple_of(align);
        let bounds = |w: usize| ((w * part).min(size), ((w + 1) * part).min(size));

        // --- Pass 1: count outstanding cells and OR tracked bits per
        // partition.
        let mut counts: Vec<(usize, bool)> = vec![(0, false); parts];
        {
            let mem = &self.mem;
            let counts_ptr = SendPtr::new(counts.as_mut_ptr());
            let count = move |w0: usize, w1: usize| -> Result<()> {
                for w in w0..w1 {
                    let (lo, hi) = bounds(w);
                    let mut outstanding_total = 0usize;
                    let mut tracked_bits = 0u64;
                    for (chunk_base, cells) in mem.chunks_in(lo, hi) {
                        let mut base = chunk_base;
                        for lane in cells.chunks(crate::unvisited::LANE_WIDTH) {
                            let (outstanding, tracked) = model.completion_masks(base, lane);
                            #[cfg(debug_assertions)]
                            {
                                let expected =
                                    crate::fold_completion_masks(base, lane, |addr, value| {
                                        model.completion_hint(addr, value)
                                    });
                                assert_eq!(
                                    (outstanding, tracked),
                                    expected,
                                    "completion_masks disagrees with completion_hint at {base}",
                                );
                            }
                            outstanding_total += outstanding.count_ones() as usize;
                            tracked_bits |= tracked;
                            base += lane.len();
                        }
                    }
                    // SAFETY: counts[w] is owned exclusively by partition w;
                    // the pool barrier publishes the writes.
                    unsafe { *counts_ptr.ptr().add(w) = (outstanding_total, tracked_bits != 0) };
                }
                Ok(())
            };
            pool.run_tick(CLASS_REBUILD, parts, 1, &count)?;
        }
        let mut offsets = Vec::with_capacity(parts);
        let mut total = 0usize;
        for &(n, _) in &counts {
            offsets.push(total);
            total += n;
        }

        // --- Pass 2: raw fill. Partition w owns pos[lo..hi] and items
        // slots [offsets[w], offsets[w] + counts[w]).
        let raw = self.unvisited.begin_sharded_rebuild(size, total);
        {
            let mem = &self.mem;
            let offsets = &offsets;
            let counts = &counts;
            let fill = move |w0: usize, w1: usize| -> Result<()> {
                for w in w0..w1 {
                    let (lo, hi) = bounds(w);
                    // SAFETY: disjoint per-partition ranges, in bounds.
                    unsafe { raw.clear_pos(lo, hi) };
                    let mut slot = offsets[w];
                    for (chunk_base, cells) in mem.chunks_in(lo, hi) {
                        let mut base = chunk_base;
                        for lane in cells.chunks(crate::unvisited::LANE_WIDTH) {
                            let (mut mask, _) = model.completion_masks(base, lane);
                            // Ascending set bits keep the partition's slice
                            // of the dense form address-ordered.
                            while mask != 0 {
                                let j = mask.trailing_zeros() as usize;
                                mask &= mask - 1;
                                // SAFETY: slot stays inside the partition's
                                // items range (pass 1 counted these bits).
                                unsafe { raw.set(slot, base + j) };
                                slot += 1;
                            }
                            base += lane.len();
                        }
                    }
                    let _counted = counts[w].0;
                    debug_assert_eq!(slot - offsets[w], _counted);
                }
                Ok(())
            };
            pool.run_tick(CLASS_REBUILD, parts, 1, &fill)?;
        }
        // SAFETY: every pos cell in [0, size) and items slot in [0, total)
        // was written by exactly one partition; the pool barrier
        // synchronized the writes.
        unsafe { self.unvisited.finish_sharded_rebuild(size, total) };
        self.tracked = counts.iter().any(|&(_, t)| t);
        Ok(())
    }
}

impl<Pv> Core<Pv>
where
    Pv: Clone + Send + Serialize + Deserialize,
{
    /// Snapshot the core (and `adversary`) at the current tick boundary
    /// into a versioned [`Checkpoint`] tagged with the model's name.
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] if the adversary is not checkpointable
    /// ([`Adversary::save_state`] returned `None`).
    pub(crate) fn save_checkpoint<M, A>(&self, model: &M, adversary: &A) -> Result<Checkpoint>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        let adversary = adversary.save_state().ok_or_else(|| PramError::Checkpoint {
            detail: "the adversary is not checkpointable (save_state returned None)".into(),
        })?;
        let (budget_reads, budget_writes) = model.checkpoint_budget();
        let (bank_reads, bank_writes) = self.mem.bank_counters().into_iter().unzip();
        Ok(Checkpoint {
            version: CHECKPOINT_VERSION,
            model: M::MODEL.to_string(),
            cycle: self.cycle,
            mode: self.mode,
            budget_reads,
            budget_writes,
            layout: self.mem.layout(),
            // The merged, address-ordered image — the same bytes whatever
            // the physical layout.
            mem: self.mem.to_vec(),
            bank_reads,
            bank_writes,
            stats: self.stats,
            procs: self
                .procs
                .status
                .iter()
                .zip(&self.procs.completed)
                .zip(&self.procs.state)
                .map(|((&status, &completed), state)| ProcCheckpoint {
                    status,
                    completed,
                    state: state.as_ref().map_or(serde::Value::Null, |st| st.to_value()),
                })
                .collect(),
            pattern: self.pattern.clone(),
            adversary,
            // Policy state is runner-level: a policy-driven runner fills
            // this in after saving (see `crate::policy`); the core has no
            // policy of its own.
            policy: serde::Value::Null,
        })
    }

    /// Load `ck` into this core and `adversary`, resuming the checkpointed
    /// run at its tick boundary. Everything is validated **before**
    /// anything is mutated, so a failed restore leaves core and adversary
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] on a version, model or shape mismatch, an
    /// undecodable private state, an illegal recorded failure pattern, or
    /// an adversary that refuses the saved state.
    pub(crate) fn restore_checkpoint<M, A>(
        &mut self,
        model: &M,
        ck: &Checkpoint,
        adversary: &mut A,
    ) -> Result<()>
    where
        M: ExecutionModel<Private = Pv>,
        A: Adversary,
    {
        let fail = |detail: String| PramError::Checkpoint { detail };
        if ck.version != CHECKPOINT_VERSION {
            return Err(fail(format!(
                "checkpoint version {} but this build reads version {CHECKPOINT_VERSION}",
                ck.version
            )));
        }
        if ck.model != M::MODEL {
            return Err(fail(format!(
                "checkpoint was taken under the \"{}\" model but this machine runs \"{}\"",
                ck.model,
                M::MODEL
            )));
        }
        if ck.layout != self.mem.layout() {
            return Err(fail(format!(
                "checkpoint was taken under the {} memory layout but this machine uses {} — \
                 cross-layout restore is not supported; rebuild the machine with the \
                 checkpoint's layout",
                ck.layout,
                self.mem.layout()
            )));
        }
        if ck.mem.len() != self.mem.size() {
            return Err(fail(format!(
                "checkpoint has {} memory cells but the machine has {}",
                ck.mem.len(),
                self.mem.size()
            )));
        }
        if ck.procs.len() != self.procs.len() {
            return Err(fail(format!(
                "checkpoint has {} processors but the machine has {}",
                ck.procs.len(),
                self.procs.len()
            )));
        }
        let (budget_reads, budget_writes) = model.checkpoint_budget();
        if (ck.budget_reads, ck.budget_writes) != (budget_reads, budget_writes) {
            return Err(fail(format!(
                "checkpoint budget ({} reads / {} writes) differs from the machine's \
                 ({} reads / {} writes)",
                ck.budget_reads, ck.budget_writes, budget_reads, budget_writes
            )));
        }
        if ck.mode != self.mode {
            return Err(fail(format!(
                "checkpoint write mode {} differs from the machine's {}",
                ck.mode, self.mode
            )));
        }
        ck.pattern
            .validate(Some(self.procs.len()))
            .map_err(|e| fail(format!("recorded pattern: {e}")))?;
        let mut states: Vec<Option<Pv>> = Vec::with_capacity(ck.procs.len());
        for (i, pc) in ck.procs.iter().enumerate() {
            let state = match pc.status {
                // A failed processor has no private memory; whatever the
                // checkpoint stores for it is ignored.
                ProcStatus::Failed => None,
                ProcStatus::Alive | ProcStatus::Halted => Some(
                    Pv::from_value(&pc.state)
                        .map_err(|e| fail(format!("P{i}'s private state does not decode: {e}")))?,
                ),
            };
            states.push(state);
        }
        // Rebuild the memory *before* mutating the adversary: `from_parts`
        // validates the cell image and per-bank counter shapes, and a
        // failure there must leave everything untouched.
        let mem = SharedMemory::from_parts(
            ck.layout,
            self.mem.size(),
            &ck.mem,
            &ck.bank_reads,
            &ck.bank_writes,
        )?;
        adversary
            .restore_state(&ck.adversary)
            .map_err(|e| fail(format!("adversary restore failed: {e}")))?;
        self.mem = mem;
        for (i, (pc, state)) in ck.procs.iter().zip(states).enumerate() {
            self.procs.status[i] = pc.status;
            self.procs.completed[i] = pc.completed;
            self.procs.state[i] = state;
        }
        self.cycle = ck.cycle;
        self.stats = ck.stats;
        self.pattern = ck.pattern.clone();
        // Re-prime the completion tracker from the restored memory: a stale
        // index must never survive a restore (and lock-step `tick` use may
        // not pass through a run entry).
        self.init_tracker(model);
        Ok(())
    }
}
