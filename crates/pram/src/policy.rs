//! Adaptive checkpoint/restart policy: Young/Daly interval tuning driven
//! by the observed failure process.
//!
//! The crash-safe long-run mode (PR 4) checkpoints every `K` ticks, with
//! `K` chosen by hand. That knob decides the whole wasted-work tradeoff:
//! checkpoint too often and the run pays checkpoint overhead for faults
//! that never come; too rarely and every crash replays a long tail of
//! lost ticks. A [`PolicyEngine`] closes the loop. It watches the same
//! [`TraceEvent`] stream every other observer sees, folds the failure
//! events into a fixed-point EWMA intensity estimate `λ` (failures per
//! tick), and steers the interval toward the Young/Daly optimum
//!
//! ```text
//! K* ≈ sqrt(2·C / λ)
//! ```
//!
//! where `C` is the checkpoint cost in tick units. The steering is AIMD:
//! the interval decays multiplicatively toward a lower target (react fast
//! when failures spike) and grows additively toward a higher one (reclaim
//! overhead cautiously when the machine calms down), clamped to
//! `[k_min, k_max]`.
//!
//! **Determinism.** Checkpoint-cadence decisions must be a pure function
//! of the event stream, or a killed-and-resumed run would checkpoint at
//! different ticks than the uninterrupted run and the soak cross-checks
//! could never demand bit-identical behavior. The engine therefore does
//! all arithmetic in integers (no float accumulation order to worry
//! about) and feeds its cost model only deterministic inputs: the
//! configured prior and the *byte size* of each machine checkpoint —
//! never the measured wall-clock save time. For the same reason the
//! engine carries **no telemetry**: wasted-work accounting
//! ([`WastedWork`](crate::trace::WastedWork)) lives with the runner,
//! outside the policy state, so a resumed run (whose restore/replay
//! counters necessarily differ from the uninterrupted run's) still
//! serializes byte-identical policy state and checkpoints at the
//! identical ticks.
//!
//! The engine's full state serializes to a [`Value`] that rides inside
//! the v4 [`Checkpoint`](crate::Checkpoint) (its `policy` field), so a
//! resumed run continues the *same* policy trajectory. Restoring refuses
//! state saved under a different policy kind or tuning — resuming a
//! `fixed:500` run under `adaptive` would silently change where
//! checkpoints land, which is exactly the nondeterminism the codec
//! version gate exists to prevent.
//!
//! The engine also escalates the pooled engine's
//! [`PanicPolicy`](crate::PanicPolicy): an adaptive run starts on
//! [`PanicPolicy::Surface`] (a worker panic aborts the tick and surfaces,
//! leaving the machine at the tick boundary) and falls back to
//! [`PanicPolicy::FallbackSequential`] only after repeated panics — the
//! optimistic stance costs nothing when panics are rare and keeps the
//! failure visible while they are.

use serde::Value;

use crate::error::PramError;
use crate::exec::PanicPolicy;
use crate::trace::{Observer, TraceEvent};

/// Fixed-point scale for the EWMA failure intensity: `lambda_fp` holds
/// `λ · LAMBDA_SCALE` where `λ` is failures per tick.
const LAMBDA_SCALE: u64 = 1 << 20;

/// Which policy a [`PolicyEngine`] implements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// Checkpoint every `K` ticks, unconditionally (the PR 4 behavior).
    Fixed(u64),
    /// Young/Daly + AIMD online tuning.
    Adaptive,
}

impl PolicyKind {
    /// Parse a `--policy` argument: `adaptive`, or `fixed:K` with `K >= 1`.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown kinds and degenerate (`0` or
    /// unparseable) fixed intervals.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "adaptive" {
            return Ok(PolicyKind::Adaptive);
        }
        if let Some(k) = text.strip_prefix("fixed:") {
            let k: u64 = k
                .parse()
                .map_err(|_| format!("bad fixed checkpoint interval '{k}' (want fixed:K)"))?;
            if k == 0 {
                return Err("fixed:0 would checkpoint every tick boundary forever; \
                            use a positive interval"
                    .into());
            }
            return Ok(PolicyKind::Fixed(k));
        }
        Err(format!("unknown policy '{text}' (adaptive|fixed:K)"))
    }

    fn tag(&self) -> &'static str {
        match self {
            PolicyKind::Fixed(_) => "fixed",
            PolicyKind::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::Fixed(k) => write!(f, "fixed:{k}"),
            PolicyKind::Adaptive => write!(f, "adaptive"),
        }
    }
}

/// Tuning knobs of the adaptive rule. All deterministic inputs; the
/// defaults suit the tick scales the long-run mode and benches use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PolicyConfig {
    /// Prior checkpoint cost `C` in tick units (refined online from
    /// checkpoint byte sizes).
    pub cost_ticks: u64,
    /// Lower clamp on the interval.
    pub k_min: u64,
    /// Upper clamp on the interval (also the interval while no failure
    /// has been observed yet).
    pub k_max: u64,
    /// EWMA window exponent: the intensity estimate averages over
    /// `2^ewma_shift` ticks.
    pub ewma_shift: u32,
    /// How many checkpoint bytes cost about one tick of work, for the
    /// online cost refinement. Byte sizes are deterministic, wall-clock
    /// save times are not — so this is the only measured input the cost
    /// model is allowed.
    pub bytes_per_tick: u64,
    /// Worker panics tolerated on [`PanicPolicy::Surface`] before the
    /// engine escalates to [`PanicPolicy::FallbackSequential`].
    pub panic_threshold: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            cost_ticks: 8,
            k_min: 4,
            k_max: 4096,
            ewma_shift: 5,
            bytes_per_tick: 4096,
            panic_threshold: 3,
        }
    }
}

/// The policy engine: an [`Observer`] that tracks the failure process and
/// answers "checkpoint now?" at every tick boundary.
///
/// Drive it by [`Tee`](crate::trace::Tee)-ing it onto whatever observer
/// the run already uses, ask [`PolicyEngine::checkpoint_due`] inside the
/// run-control callback, and call [`PolicyEngine::record_checkpoint`]
/// after each checkpoint actually written. [`PolicyEngine::save_state`] /
/// [`PolicyEngine::restore_state`] move the engine through the v4
/// checkpoint codec.
#[derive(Clone, Debug)]
pub struct PolicyEngine {
    kind: PolicyKind,
    config: PolicyConfig,
    /// EWMA failure intensity, `λ · LAMBDA_SCALE`.
    lambda_fp: u64,
    /// Online checkpoint cost estimate, `C · LAMBDA_SCALE` tick units.
    cost_fp: u64,
    /// Current interval (adaptive) or the fixed `K`.
    k: u64,
    /// Tick boundary of the last checkpoint written (0 = none yet).
    last_checkpoint: u64,
    /// Ticks folded so far.
    ticks: u64,
    /// Failure events in the currently open tick.
    open_failures: u64,
    /// Whether a tick is open (so the first TickStart does not fold an
    /// empty phantom tick).
    tick_open: bool,
    /// Worker panics survived so far.
    panics: u32,
}

/// Integer square root (floor), enough for interval arithmetic.
fn isqrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = v;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

impl PolicyEngine {
    /// An engine with default tuning.
    pub fn new(kind: PolicyKind) -> Self {
        Self::with_config(kind, PolicyConfig::default())
    }

    /// An engine with explicit tuning.
    pub fn with_config(kind: PolicyKind, config: PolicyConfig) -> Self {
        let k = match kind {
            PolicyKind::Fixed(k) => k,
            // Start at the geometric mean of the clamps: close enough to
            // any plausible optimum that the first interval is never a
            // catastrophe in either direction, and AIMD converges from
            // there as evidence arrives.
            PolicyKind::Adaptive => {
                isqrt(config.k_min * config.k_max).clamp(config.k_min, config.k_max)
            }
        };
        PolicyEngine {
            kind,
            config,
            lambda_fp: 0,
            cost_fp: config.cost_ticks * LAMBDA_SCALE,
            k,
            last_checkpoint: 0,
            ticks: 0,
            open_failures: 0,
            tick_open: false,
            panics: 0,
        }
    }

    /// The policy this engine implements.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The interval currently in force.
    pub fn interval(&self) -> u64 {
        self.k
    }

    /// The current intensity estimate `λ` in millifailures per tick
    /// (telemetry only).
    pub fn lambda_milli(&self) -> u64 {
        self.lambda_fp * 1000 / LAMBDA_SCALE
    }

    /// The tick boundary at which the next checkpoint falls due if the
    /// interval does not move (a pause-target hint for run controllers;
    /// [`PolicyEngine::checkpoint_due`] is the authority).
    pub fn next_due(&self) -> u64 {
        self.last_checkpoint + self.k
    }

    /// Fold one closed tick's failure count into the estimate and steer
    /// the interval. Exposed for simulation harnesses (the bench sweep
    /// replays recorded failure series through this exact code path); the
    /// [`Observer`] impl calls it once per completed tick.
    pub fn observe_tick(&mut self, failures: u64) {
        self.ticks += 1;
        let s = self.config.ewma_shift;
        // Decay at least 1 so the integer EWMA reaches zero in calm
        // regimes instead of stalling just below 2^s.
        let decay = (self.lambda_fp >> s).max(1);
        self.lambda_fp = self.lambda_fp.saturating_sub(decay) + ((failures * LAMBDA_SCALE) >> s);
        if self.kind == PolicyKind::Adaptive {
            self.steer();
        }
    }

    /// One AIMD step toward the Young/Daly target.
    fn steer(&mut self) {
        // K* = sqrt(2·C/λ); C and λ both carry LAMBDA_SCALE, which
        // cancels in the quotient. No failures observed → widest interval.
        let target = (2 * self.cost_fp)
            .checked_div(self.lambda_fp)
            .map_or(self.config.k_max, isqrt)
            .clamp(self.config.k_min, self.config.k_max);
        if target < self.k {
            // Multiplicative decrease: halve, but never past the target.
            self.k = (self.k / 2).max(target);
        } else if target > self.k {
            // Additive increase, proportional to the checkpoint cost so
            // convergence does not stall at large intervals.
            let step = (self.config.cost_ticks / 2).max(1);
            self.k = (self.k + step).min(target);
        }
    }

    /// Whether a checkpoint is due at the tick boundary before `cycle`:
    /// the interval in force has elapsed since the last checkpoint. For a
    /// fresh fixed policy this reproduces the PR 4 `cycle % K == 0`
    /// cadence exactly (checkpoints land at `K, 2K, …`); for the adaptive
    /// policy the live (steered) interval applies.
    pub fn checkpoint_due(&self, cycle: u64) -> bool {
        cycle > 0 && cycle >= self.last_checkpoint + self.k
    }

    /// Record a checkpoint actually written at tick boundary `cycle`.
    /// `bytes` is the serialized *machine* checkpoint size, which refines
    /// the cost model — a deterministic input, unlike wall-clock save
    /// time, which the engine refuses to know about.
    pub fn record_checkpoint(&mut self, cycle: u64, bytes: u64) {
        // EWMA the byte-derived cost toward the observed size (same
        // window as the intensity estimate).
        let observed_fp = (bytes.max(1) * LAMBDA_SCALE).div_ceil(self.config.bytes_per_tick);
        let s = self.config.ewma_shift;
        self.cost_fp = self.cost_fp - (self.cost_fp >> s) + (observed_fp >> s);
        self.last_checkpoint = cycle;
    }

    /// Record a surfaced worker panic; returns the policy to retry under.
    pub fn record_panic(&mut self) -> PanicPolicy {
        self.panics = self.panics.saturating_add(1);
        self.panic_policy()
    }

    /// Reinitialize the decision state for a from-scratch restart (a
    /// panic recovery with no checkpoint to rewind to), keeping only the
    /// panic count — forgetting it would reset the escalation clock and a
    /// deterministic panic could live-loop the run forever.
    pub fn reset_preserving_panics(&mut self) {
        let panics = self.panics;
        *self = Self::with_config(self.kind, self.config);
        self.panics = panics;
    }

    /// The [`PanicPolicy`] the run should currently use. Fixed policies
    /// keep the long-run mode's historical always-degrade stance;
    /// adaptive runs stay optimistic until `panic_threshold` panics.
    pub fn panic_policy(&self) -> PanicPolicy {
        match self.kind {
            PolicyKind::Fixed(_) => PanicPolicy::FallbackSequential,
            PolicyKind::Adaptive => {
                if self.panics >= self.config.panic_threshold {
                    PanicPolicy::FallbackSequential
                } else {
                    PanicPolicy::Surface
                }
            }
        }
    }

    /// Serialize the full engine state for the checkpoint's `policy`
    /// field. Identical streams produce identical state (the soak lane's
    /// cross-check relies on byte equality of this value's JSON).
    pub fn save_state(&self) -> Value {
        let c = &self.config;
        let fixed_k = match self.kind {
            PolicyKind::Fixed(k) => k,
            PolicyKind::Adaptive => 0,
        };
        Value::Map(vec![
            ("kind".into(), Value::Str(self.kind.tag().into())),
            ("fixed_k".into(), Value::UInt(fixed_k)),
            ("cost_ticks".into(), Value::UInt(c.cost_ticks)),
            ("k_min".into(), Value::UInt(c.k_min)),
            ("k_max".into(), Value::UInt(c.k_max)),
            ("ewma_shift".into(), Value::UInt(u64::from(c.ewma_shift))),
            ("bytes_per_tick".into(), Value::UInt(c.bytes_per_tick)),
            ("panic_threshold".into(), Value::UInt(u64::from(c.panic_threshold))),
            ("lambda_fp".into(), Value::UInt(self.lambda_fp)),
            ("cost_fp".into(), Value::UInt(self.cost_fp)),
            ("k".into(), Value::UInt(self.k)),
            ("last_checkpoint".into(), Value::UInt(self.last_checkpoint)),
            ("ticks".into(), Value::UInt(self.ticks)),
            ("panics".into(), Value::UInt(u64::from(self.panics))),
            // A pause lands on a tick boundary, where the just-finished
            // tick is still open (it folds only at the next TickStart or
            // at Completed). Persist it, or a resumed engine would drop
            // one tick observation and drift off the uninterrupted run.
            ("tick_open".into(), Value::UInt(u64::from(self.tick_open))),
            ("open_failures".into(), Value::UInt(self.open_failures)),
        ])
    }

    /// Restore engine state saved by [`PolicyEngine::save_state`].
    ///
    /// # Errors
    ///
    /// [`PramError::Checkpoint`] on a malformed value, or — the refusal
    /// this codec version exists for — state saved under a different
    /// policy kind or tuning than this engine's: resuming a run under a
    /// different policy would silently move its checkpoint cadence.
    pub fn restore_state(&mut self, state: &Value) -> Result<(), PramError> {
        let fail = |detail: String| PramError::Checkpoint { detail };
        let want = |name: &str| -> Result<u64, PramError> {
            state
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| fail(format!("policy state needs an integer `{name}` field")))
        };
        let kind = state
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("policy state needs a `kind` tag".into()))?;
        let fixed_k = want("fixed_k")?;
        let saved_kind = match kind {
            "adaptive" => PolicyKind::Adaptive,
            "fixed" => PolicyKind::Fixed(fixed_k),
            other => return Err(fail(format!("unknown policy kind `{other}` in checkpoint"))),
        };
        if saved_kind != self.kind {
            return Err(fail(format!(
                "cross-policy restore refused: the checkpoint was taken under policy \
                 `{saved_kind}` but this run uses `{}`",
                self.kind
            )));
        }
        let saved_config = PolicyConfig {
            cost_ticks: want("cost_ticks")?,
            k_min: want("k_min")?,
            k_max: want("k_max")?,
            ewma_shift: want("ewma_shift")? as u32,
            bytes_per_tick: want("bytes_per_tick")?,
            panic_threshold: want("panic_threshold")? as u32,
        };
        if saved_config != self.config {
            return Err(fail(format!(
                "cross-policy restore refused: the checkpoint's tuning {saved_config:?} \
                 differs from this run's {:?}",
                self.config
            )));
        }
        self.lambda_fp = want("lambda_fp")?;
        self.cost_fp = want("cost_fp")?;
        self.k = want("k")?;
        self.last_checkpoint = want("last_checkpoint")?;
        self.ticks = want("ticks")?;
        self.panics = want("panics")? as u32;
        self.tick_open = want("tick_open")? != 0;
        self.open_failures = want("open_failures")?;
        Ok(())
    }

    fn fold_open_tick(&mut self) {
        if self.tick_open {
            let failures = self.open_failures;
            self.tick_open = false;
            self.open_failures = 0;
            self.observe_tick(failures);
        }
    }
}

impl Observer for PolicyEngine {
    fn event(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::TickStart { .. } => {
                self.fold_open_tick();
                self.tick_open = true;
            }
            TraceEvent::Failure { .. } if self.tick_open => self.open_failures += 1,
            TraceEvent::Completed { .. } => self.fold_open_tick(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_adaptive_and_fixed() {
        assert_eq!(PolicyKind::parse("adaptive").unwrap(), PolicyKind::Adaptive);
        assert_eq!(PolicyKind::parse("fixed:500").unwrap(), PolicyKind::Fixed(500));
        assert!(PolicyKind::parse("fixed:0").is_err(), "degenerate interval");
        assert!(PolicyKind::parse("fixed:x").is_err());
        assert!(PolicyKind::parse("nope").is_err());
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for v in [0u64, 1, 2, 3, 4, 8, 9, 15, 16, 1 << 40, u64::MAX] {
            let r = isqrt(v);
            assert!(r * r <= v, "isqrt({v}) = {r}");
            assert!(r.checked_add(1).is_none_or(|r1| r1.checked_mul(r1).is_none_or(|sq| sq > v)));
        }
    }

    #[test]
    fn fixed_keeps_interval_cadence() {
        let mut e = PolicyEngine::new(PolicyKind::Fixed(5));
        for t in 0..100 {
            e.observe_tick(u64::from(t % 3 == 0));
        }
        assert!(!e.checkpoint_due(0));
        assert!(e.checkpoint_due(5));
        e.record_checkpoint(5, 2048);
        assert!(!e.checkpoint_due(7));
        assert!(e.checkpoint_due(10));
        assert_eq!(e.interval(), 5, "fixed interval never moves");
    }

    #[test]
    fn adaptive_shrinks_under_faults_and_recovers() {
        let mut e = PolicyEngine::new(PolicyKind::Adaptive);
        let cfg = PolicyConfig::default();
        let calm_k = e.interval();
        assert_eq!(calm_k, isqrt(cfg.k_min * cfg.k_max), "starts at the geometric mean");
        // Heavy failure regime: λ → ~2 failures/tick, K* = sqrt(2·8/2) ≈ 2
        // clamps to k_min.
        for _ in 0..200 {
            e.observe_tick(2);
        }
        assert_eq!(e.interval(), PolicyConfig::default().k_min, "AIMD decreased");
        // Calm again: additive recovery toward k_max.
        for _ in 0..50 {
            e.observe_tick(0);
        }
        assert!(e.interval() > PolicyConfig::default().k_min, "AIMD increasing");
        let mid = e.interval();
        for _ in 0..5000 {
            e.observe_tick(0);
        }
        assert!(e.interval() > mid);
        assert_eq!(e.interval(), PolicyConfig::default().k_max, "full recovery");
    }

    #[test]
    fn adaptive_cadence_follows_record_checkpoint() {
        let mut e = PolicyEngine::with_config(
            PolicyKind::Adaptive,
            PolicyConfig { k_min: 8, k_max: 8, ..PolicyConfig::default() },
        );
        assert_eq!(e.interval(), 8);
        assert!(!e.checkpoint_due(7));
        assert!(e.checkpoint_due(8));
        assert_eq!(e.next_due(), 8);
        e.record_checkpoint(8, 1024);
        assert!(!e.checkpoint_due(9));
        assert!(e.checkpoint_due(16));
        assert_eq!(e.next_due(), 16);
    }

    #[test]
    fn panic_escalation_is_thresholded() {
        let mut e = PolicyEngine::new(PolicyKind::Adaptive);
        assert_eq!(e.panic_policy(), PanicPolicy::Surface);
        assert_eq!(e.record_panic(), PanicPolicy::Surface);
        assert_eq!(e.record_panic(), PanicPolicy::Surface);
        assert_eq!(e.record_panic(), PanicPolicy::FallbackSequential, "third panic escalates");
        // Fixed runs keep the historical always-degrade behavior.
        let f = PolicyEngine::new(PolicyKind::Fixed(10));
        assert_eq!(f.panic_policy(), PanicPolicy::FallbackSequential);
    }

    #[test]
    fn state_roundtrips_and_decisions_are_stream_deterministic() {
        // Feed the same synthetic failure series to (a) one uninterrupted
        // engine and (b) an engine that is serialized/restored halfway —
        // identical state and identical subsequent decisions.
        let series: Vec<u64> = (0..400).map(|t| u64::from(t % 7 == 0) * 2).collect();
        let mut straight = PolicyEngine::new(PolicyKind::Adaptive);
        let mut first = PolicyEngine::new(PolicyKind::Adaptive);
        for &f in &series[..200] {
            straight.observe_tick(f);
            first.observe_tick(f);
        }
        let saved = first.save_state();
        let mut second = PolicyEngine::new(PolicyKind::Adaptive);
        second.restore_state(&saved).unwrap();
        for &f in &series[200..] {
            straight.observe_tick(f);
            second.observe_tick(f);
        }
        assert_eq!(
            serde::json::to_string(&straight.save_state()),
            serde::json::to_string(&second.save_state()),
            "resumed engine diverged from the uninterrupted one"
        );
        for cycle in 0..4096 {
            assert_eq!(straight.checkpoint_due(cycle), second.checkpoint_due(cycle));
        }
    }

    #[test]
    fn cross_policy_restore_is_refused() {
        let adaptive = PolicyEngine::new(PolicyKind::Adaptive);
        let saved = adaptive.save_state();
        let mut fixed = PolicyEngine::new(PolicyKind::Fixed(100));
        let err = fixed.restore_state(&saved).unwrap_err();
        assert!(err.to_string().contains("cross-policy restore refused"), "{err}");
        // Same kind, different tuning: also refused.
        let mut tuned = PolicyEngine::with_config(
            PolicyKind::Adaptive,
            PolicyConfig { k_max: 64, ..PolicyConfig::default() },
        );
        let err = tuned.restore_state(&saved).unwrap_err();
        assert!(err.to_string().contains("cross-policy restore refused"), "{err}");
        // And the matching engine accepts it.
        let mut ok = PolicyEngine::new(PolicyKind::Adaptive);
        ok.restore_state(&saved).unwrap();
    }

    #[test]
    fn observer_folds_failures_per_tick() {
        use crate::adversary::FailPoint;
        use crate::word::Pid;
        let mut e = PolicyEngine::new(PolicyKind::Adaptive);
        e.event(TraceEvent::TickStart { cycle: 0 });
        e.event(TraceEvent::Failure { cycle: 0, pid: Pid(1), point: FailPoint::BeforeReads });
        e.event(TraceEvent::Failure { cycle: 0, pid: Pid(2), point: FailPoint::BeforeWrites });
        e.event(TraceEvent::TickStart { cycle: 1 });
        e.event(TraceEvent::Completed { cycle: 1 });
        let mut by_hand = PolicyEngine::new(PolicyKind::Adaptive);
        by_hand.observe_tick(2);
        by_hand.observe_tick(0);
        assert_eq!(
            serde::json::to_string(&e.save_state()),
            serde::json::to_string(&by_hand.save_state())
        );
    }
}
