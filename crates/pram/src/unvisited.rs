//! Incremental unvisited-set index: a dense, position-ordered set of
//! shared-memory addresses with O(1) rank/select.
//!
//! The snapshot algorithms of §3 and the pigeonhole adversary of
//! Theorem 3.1 both consume the same quantity every tick: the list of
//! still-unvisited Write-All cells, *numbered by position*. Computing it by
//! scanning memory costs O(N) per processor per tick and caps the
//! experiments at small N. [`UnvisitedIndex`] maintains that list
//! incrementally from committed writes instead: the machine folds every
//! commit into the index in O(1) amortized, and consumers get
//!
//! * [`len`](UnvisitedIndex::len) / [`is_empty`](UnvisitedIndex::is_empty)
//!   — the outstanding count, replacing the O(N) completion scan;
//! * [`select`](UnvisitedIndex::select) — the k-th unvisited address in
//!   ascending order, O(1);
//! * [`rank_of`](UnvisitedIndex::rank_of) — position of an address within
//!   the unvisited list, O(1);
//! * [`slice_in`](UnvisitedIndex::slice_in) — the unvisited addresses
//!   inside a [`Region`], as one contiguous slice (two binary searches).
//!
//! # Representation
//!
//! A dense `items` vector of live addresses plus a `pos` position map
//! (`pos[addr]` = slot in `items`, or [`ABSENT`]). Removal is a *tombstone*:
//! the position-map entry is cleared in O(1) and the stale `items` slot is
//! left behind; an element at slot `r` is live iff `pos[items[r]] == r`.
//! [`ensure_clean`](UnvisitedIndex::ensure_clean) compacts the tombstones
//! away in place (and re-sorts after out-of-order inserts), restoring the
//! dense ascending-address form the accessors require. A plain swap-remove
//! set would make removal O(1) without tombstones, but it scrambles the
//! order — and position order is load-bearing: the §3 balanced-allocation
//! rule and the pigeonhole adversary's tie-breaking are both defined on
//! cells *numbered by position*.
//!
//! Each tick the machine performs O(committed writes) removals/inserts and
//! one `ensure_clean`; compaction is O(pending tombstones + live) and every
//! tombstone is scanned at most once after its removal, so maintenance is
//! O(writes) amortized per tick. Steady-state maintenance performs **no
//! heap allocation**: compaction is in place, and inserts reuse slack left
//! by prior removals (a program that re-dirties more cells than were ever
//! outstanding at once may grow the buffer, which is the usual amortized
//! `Vec` growth).

use crate::region::Region;
use crate::word::Word;

/// Sentinel for "address not in the set" in the position map.
const ABSENT: usize = usize::MAX;

/// A dense set of shared-memory addresses in ascending order with O(1)
/// rank/select, O(1) amortized removal and insertion, and contiguous
/// per-[`Region`] slicing. See the [module docs](self) for the
/// representation and cost model.
#[derive(Clone, Debug, Default)]
pub struct UnvisitedIndex {
    /// Live addresses in ascending order, possibly interleaved with stale
    /// (tombstoned) entries until the next [`UnvisitedIndex::ensure_clean`].
    items: Vec<usize>,
    /// `pos[addr]` = slot of `addr` in `items`, or [`ABSENT`].
    pos: Vec<usize>,
    /// Number of live addresses (maintained eagerly, valid even when dirty).
    live: usize,
    /// Whether `items` contains tombstoned entries.
    holes: bool,
    /// Whether inserts appended out of ascending order.
    unsorted: bool,
}

impl UnvisitedIndex {
    /// An empty index over the address space `0..size`.
    pub fn new(size: usize) -> Self {
        UnvisitedIndex {
            items: Vec::new(),
            pos: vec![ABSENT; size],
            live: 0,
            holes: false,
            unsorted: false,
        }
    }

    /// Reclassify the whole address space: afterwards the index contains
    /// exactly the addresses for which `is_outstanding` returns `true`,
    /// clean and in ascending order. O(size).
    pub fn rebuild(&mut self, size: usize, mut is_outstanding: impl FnMut(usize) -> bool) {
        self.items.clear();
        self.pos.clear();
        self.pos.resize(size, ABSENT);
        for addr in 0..size {
            if is_outstanding(addr) {
                self.pos[addr] = self.items.len();
                self.items.push(addr);
            }
        }
        self.live = self.items.len();
        self.holes = false;
        self.unsorted = false;
    }

    /// [`UnvisitedIndex::rebuild`] fed from bank-aligned cell chunks
    /// (`(base_addr, cells)` in ascending address order, e.g.
    /// [`SharedMemory::chunks`](crate::SharedMemory::chunks)): the
    /// classifier gets each cell's value directly from the contiguous
    /// chunk, so a banked memory is reclassified without paying the
    /// per-address bank mapping. O(size).
    pub fn rebuild_from_chunks<'a>(
        &mut self,
        size: usize,
        chunks: impl Iterator<Item = (usize, &'a [Word])>,
        mut is_outstanding: impl FnMut(usize, Word) -> bool,
    ) {
        self.items.clear();
        self.pos.clear();
        self.pos.resize(size, ABSENT);
        for (base, cells) in chunks {
            for (off, &value) in cells.iter().enumerate() {
                let addr = base + off;
                if is_outstanding(addr, value) {
                    self.pos[addr] = self.items.len();
                    self.items.push(addr);
                }
            }
        }
        self.live = self.items.len();
        self.holes = false;
        self.unsorted = false;
    }

    /// Number of addresses in the set. Valid even while dirty.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the set is empty. Valid even while dirty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `addr` is in the set. O(1), valid even while dirty.
    pub fn contains(&self, addr: usize) -> bool {
        self.pos.get(addr).is_some_and(|&p| p != ABSENT)
    }

    /// Whether the dense accessors ([`select`](UnvisitedIndex::select),
    /// [`rank_of`](UnvisitedIndex::rank_of),
    /// [`as_slice`](UnvisitedIndex::as_slice),
    /// [`slice_in`](UnvisitedIndex::slice_in)) may be used right now.
    pub fn is_clean(&self) -> bool {
        !self.holes && !self.unsorted
    }

    /// Add `addr` to the set. Returns `false` (no-op) if already present.
    /// O(1) amortized.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the address space the index was built
    /// over.
    pub fn insert(&mut self, addr: usize) -> bool {
        assert!(addr < self.pos.len(), "address {addr} outside indexed space");
        if self.pos[addr] != ABSENT {
            return false;
        }
        if self.items.len() == self.items.capacity() && self.holes {
            // Reuse tombstone slack before letting the buffer grow.
            self.compact();
        }
        self.pos[addr] = self.items.len();
        self.items.push(addr);
        self.live += 1;
        if !self.unsorted {
            // An append extending the ascending tail keeps the index clean;
            // with holes present the tail entry may be stale, so be
            // conservative.
            let extends_tail =
                !self.holes && (self.items.len() < 2 || self.items[self.items.len() - 2] < addr);
            self.unsorted = !extends_tail;
        }
        true
    }

    /// Remove `addr` from the set (tombstone; O(1)). Returns `false`
    /// (no-op) if not present.
    pub fn remove(&mut self, addr: usize) -> bool {
        if !self.contains(addr) {
            return false;
        }
        self.pos[addr] = ABSENT;
        self.live -= 1;
        self.holes = true;
        true
    }

    /// Restore the dense ascending form: drop tombstones in place and
    /// re-sort if inserts appended out of order. O(pending work); a no-op
    /// when already clean. Performs no allocation.
    pub fn ensure_clean(&mut self) {
        if self.holes {
            self.compact();
        }
        if self.unsorted {
            self.items.sort_unstable();
            for (slot, &addr) in self.items.iter().enumerate() {
                self.pos[addr] = slot;
            }
            self.unsorted = false;
        }
    }

    /// Drop tombstoned entries in place. An entry at slot `r` is live iff
    /// `pos[items[r]] == r`; live entries keep their relative order.
    fn compact(&mut self) {
        let mut w = 0;
        for r in 0..self.items.len() {
            let addr = self.items[r];
            if self.pos[addr] == r {
                self.items[w] = addr;
                self.pos[addr] = w;
                w += 1;
            }
        }
        self.items.truncate(w);
        self.holes = false;
    }

    /// The `k`-th address in ascending order (0-based). O(1).
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`. Debug builds additionally assert the index
    /// is clean.
    pub fn select(&self, k: usize) -> usize {
        debug_assert!(self.is_clean(), "select on a dirty index — call ensure_clean first");
        self.items[k]
    }

    /// Rank of `addr` within the ascending order, if present. O(1).
    pub fn rank_of(&self, addr: usize) -> Option<usize> {
        debug_assert!(self.is_clean(), "rank_of on a dirty index — call ensure_clean first");
        match self.pos.get(addr) {
            Some(&p) if p != ABSENT => Some(p),
            _ => None,
        }
    }

    /// All addresses in ascending order.
    pub fn as_slice(&self) -> &[usize] {
        debug_assert!(self.is_clean(), "as_slice on a dirty index — call ensure_clean first");
        &self.items
    }

    /// The rank range occupied by addresses inside `region`: two binary
    /// searches, O(log len).
    pub fn range_in(&self, region: Region) -> std::ops::Range<usize> {
        debug_assert!(self.is_clean(), "range_in on a dirty index — call ensure_clean first");
        let lo = self.items.partition_point(|&a| a < region.base());
        let hi = self.items.partition_point(|&a| a < region.base() + region.len());
        lo..hi
    }

    /// The addresses inside `region`, ascending, as one contiguous slice.
    pub fn slice_in(&self, region: Region) -> &[usize] {
        let range = self.range_in(region);
        &self.items[range]
    }

    /// Number of addresses inside `region`. O(log len).
    pub fn count_in(&self, region: Region) -> usize {
        self.range_in(region).len()
    }

    /// Full cross-check against ground truth: the index is clean, covers
    /// the `0..size` address space, and contains exactly the addresses for
    /// which `is_outstanding` holds, in strictly ascending order. Intended
    /// for `debug_assert!` use by the machine.
    pub fn matches(&self, size: usize, mut is_outstanding: impl FnMut(usize) -> bool) -> bool {
        if !self.is_clean() || self.pos.len() != size || self.items.len() != self.live {
            return false;
        }
        let mut expected = 0;
        for addr in 0..size {
            if is_outstanding(addr) != self.contains(addr) {
                return false;
            }
            if self.contains(addr) && self.items[self.pos[addr]] != addr {
                return false;
            }
            if is_outstanding(addr) {
                expected += 1;
            }
        }
        expected == self.live && self.items.windows(2).all(|w| w[0] < w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::LayoutBuilder;

    fn fresh(live: &[usize], size: usize) -> UnvisitedIndex {
        let mut idx = UnvisitedIndex::new(size);
        idx.rebuild(size, |a| live.contains(&a));
        idx
    }

    #[test]
    fn rebuild_orders_by_position() {
        let idx = fresh(&[5, 1, 3], 8);
        assert_eq!(idx.as_slice(), &[1, 3, 5]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.select(1), 3);
        assert_eq!(idx.rank_of(5), Some(2));
        assert_eq!(idx.rank_of(2), None);
        assert!(idx.matches(8, |a| [1, 3, 5].contains(&a)));
    }

    #[test]
    fn remove_is_tombstoned_then_compacted() {
        let mut idx = fresh(&[0, 1, 2, 3], 4);
        assert!(idx.remove(1));
        assert!(!idx.remove(1), "second removal is a no-op");
        assert_eq!(idx.len(), 3);
        assert!(!idx.contains(1));
        assert!(!idx.is_clean());
        idx.ensure_clean();
        assert_eq!(idx.as_slice(), &[0, 2, 3]);
        assert_eq!(idx.rank_of(3), Some(2));
        assert!(idx.matches(4, |a| a != 1));
    }

    #[test]
    fn insert_restores_position_order() {
        let mut idx = fresh(&[0, 4], 8);
        assert!(idx.insert(2));
        assert!(!idx.insert(2), "second insert is a no-op");
        idx.ensure_clean();
        assert_eq!(idx.as_slice(), &[0, 2, 4]);
        // Tail-extending appends stay clean without a sort.
        assert!(idx.insert(7));
        assert!(idx.is_clean());
        assert_eq!(idx.as_slice(), &[0, 2, 4, 7]);
    }

    #[test]
    fn remove_then_reinsert_same_address() {
        let mut idx = fresh(&[0, 1, 2], 4);
        idx.remove(1);
        assert!(idx.insert(1));
        idx.ensure_clean();
        assert_eq!(idx.as_slice(), &[0, 1, 2]);
        assert!(idx.matches(4, |a| a < 3));
    }

    #[test]
    fn insert_then_remove_before_clean() {
        let mut idx = fresh(&[0], 4);
        idx.insert(2);
        idx.remove(2);
        idx.ensure_clean();
        assert_eq!(idx.as_slice(), &[0]);
        assert!(idx.matches(4, |a| a == 0));
    }

    #[test]
    fn region_slicing_is_contiguous() {
        let mut layout = LayoutBuilder::new();
        let a = layout.alloc(4);
        let b = layout.alloc(4);
        let idx = fresh(&[1, 2, 5, 6], layout.total());
        assert_eq!(idx.slice_in(a), &[1, 2]);
        assert_eq!(idx.slice_in(b), &[5, 6]);
        assert_eq!(idx.range_in(b), 2..4);
        assert_eq!(idx.count_in(a), 2);
        assert_eq!(idx.slice_in(Region::EMPTY), &[] as &[usize]);
    }

    #[test]
    fn interleaved_churn_matches_ground_truth() {
        let size = 64;
        let mut idx = UnvisitedIndex::new(size);
        idx.rebuild(size, |_| true);
        let mut truth: Vec<bool> = vec![true; size];
        // Deterministic churn: walk a fixed stride, toggling membership.
        let mut a = 17usize;
        for step in 0..500 {
            a = (a * 31 + 7) % size;
            if truth[a] {
                idx.remove(a);
                truth[a] = false;
            } else {
                idx.insert(a);
                truth[a] = true;
            }
            if step % 7 == 0 {
                idx.ensure_clean();
            }
            assert_eq!(idx.len(), truth.iter().filter(|&&t| t).count());
        }
        idx.ensure_clean();
        assert!(idx.matches(size, |addr| truth[addr]));
    }

    #[test]
    #[should_panic(expected = "outside indexed space")]
    fn insert_out_of_space_panics() {
        let mut idx = UnvisitedIndex::new(2);
        idx.insert(2);
    }
}
