//! Incremental unvisited-set index: a dense, position-ordered set of
//! shared-memory addresses with O(1) rank/select.
//!
//! The snapshot algorithms of §3 and the pigeonhole adversary of
//! Theorem 3.1 both consume the same quantity every tick: the list of
//! still-unvisited Write-All cells, *numbered by position*. Computing it by
//! scanning memory costs O(N) per processor per tick and caps the
//! experiments at small N. [`UnvisitedIndex`] maintains that list
//! incrementally from committed writes instead: the machine folds every
//! commit into the index in O(1) amortized, and consumers get
//!
//! * [`len`](UnvisitedIndex::len) / [`is_empty`](UnvisitedIndex::is_empty)
//!   — the outstanding count, replacing the O(N) completion scan;
//! * [`select`](UnvisitedIndex::select) — the k-th unvisited address in
//!   ascending order, O(1);
//! * [`rank_of`](UnvisitedIndex::rank_of) — position of an address within
//!   the unvisited list, O(1);
//! * [`slice_in`](UnvisitedIndex::slice_in) — the unvisited addresses
//!   inside a [`Region`], as one contiguous [`AddrSlice`] (two binary
//!   searches).
//!
//! # Representation
//!
//! A dense `items` vector of live addresses plus a `pos` position map
//! (`pos[addr]` = slot in `items`, or an absent sentinel). Removal is a
//! *tombstone*: the position-map entry is cleared in O(1) and the stale
//! `items` slot is left behind; an element at slot `r` is live iff
//! `pos[items[r]] == r`.
//! [`ensure_clean`](UnvisitedIndex::ensure_clean) compacts the tombstones
//! away in place (and re-sorts after out-of-order inserts), restoring the
//! dense ascending-address form the accessors require. A plain swap-remove
//! set would make removal O(1) without tombstones, but it scrambles the
//! order — and position order is load-bearing: the §3 balanced-allocation
//! rule and the pigeonhole adversary's tie-breaking are both defined on
//! cells *numbered by position*.
//!
//! Both vectors are **width-generic**: an index over an address space of
//! `size <= u32::MAX` stores addresses and slots as `u32`, halving the hot
//! working set the rebuild and the per-tick accessors stream over; larger
//! spaces fall back to `usize` words. The width is an internal property of
//! the storage — every public accessor speaks `usize` addresses, and slice
//! views are returned as the width-erased [`AddrSlice`].
//!
//! Each tick the machine performs O(committed writes) removals/inserts and
//! one `ensure_clean`; compaction is O(pending tombstones + live) and every
//! tombstone is scanned at most once after its removal, so maintenance is
//! O(writes) amortized per tick. Steady-state maintenance performs **no
//! heap allocation**: compaction is in place, and inserts reuse slack left
//! by prior removals (a program that re-dirties more cells than were ever
//! outstanding at once may grow the buffer, which is the usual amortized
//! `Vec` growth).

use crate::pool::SendPtr;
use crate::region::Region;
use crate::word::Word;

/// Storage word for the packed index: addresses and slot numbers are kept
/// in this width. `ABSENT` marks "address not in the set" in the position
/// map; it can never collide with a real slot because slots are bounded by
/// the address-space size, which fits the width by construction.
trait IndexWord: Copy + Ord {
    const ABSENT: Self;
    fn from_usize(v: usize) -> Self;
    fn to_usize(self) -> usize;
}

impl IndexWord for u32 {
    const ABSENT: Self = u32::MAX;
    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        v as u32
    }
    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }
}

impl IndexWord for usize {
    const ABSENT: Self = usize::MAX;
    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        v
    }
    #[inline(always)]
    fn to_usize(self) -> usize {
        self
    }
}

/// Largest address space the `u32` representation can hold: every address
/// is `< size <= u32::MAX`, so `u32::MAX` itself stays free for the absent
/// sentinel.
const NARROW_LIMIT: usize = u32::MAX as usize;

/// The width-generic storage behind [`UnvisitedIndex`]; see the module
/// docs for the representation and cost model.
#[derive(Clone, Debug, Default)]
struct Packed<W: IndexWord> {
    /// Live addresses in ascending order, possibly interleaved with stale
    /// (tombstoned) entries until the next `ensure_clean`.
    items: Vec<W>,
    /// `pos[addr]` = slot of `addr` in `items`, or `W::ABSENT`.
    pos: Vec<W>,
    /// Number of live addresses (maintained eagerly, valid even when dirty).
    live: usize,
    /// Whether `items` contains tombstoned entries.
    holes: bool,
    /// Whether inserts appended out of ascending order.
    unsorted: bool,
}

impl<W: IndexWord> Packed<W> {
    fn new(size: usize) -> Self {
        Packed {
            items: Vec::new(),
            pos: vec![W::ABSENT; size],
            live: 0,
            holes: false,
            unsorted: false,
        }
    }

    fn reset(&mut self, size: usize) {
        self.items.clear();
        self.pos.clear();
        self.pos.resize(size, W::ABSENT);
    }

    fn seal(&mut self) {
        self.live = self.items.len();
        self.holes = false;
        self.unsorted = false;
    }

    #[inline]
    fn push_addr(&mut self, addr: usize) {
        self.pos[addr] = W::from_usize(self.items.len());
        self.items.push(W::from_usize(addr));
    }

    fn rebuild(&mut self, size: usize, mut is_outstanding: impl FnMut(usize) -> bool) {
        self.reset(size);
        for addr in 0..size {
            if is_outstanding(addr) {
                self.push_addr(addr);
            }
        }
        self.seal();
    }

    fn rebuild_from_chunks<'a>(
        &mut self,
        size: usize,
        chunks: impl Iterator<Item = (usize, &'a [Word])>,
        mut is_outstanding: impl FnMut(usize, Word) -> bool,
    ) {
        self.reset(size);
        for (base, cells) in chunks {
            for (off, &value) in cells.iter().enumerate() {
                let addr = base + off;
                if is_outstanding(addr, value) {
                    self.push_addr(addr);
                }
            }
        }
        self.seal();
    }

    fn rebuild_from_chunks_batched<'a>(
        &mut self,
        size: usize,
        chunks: impl Iterator<Item = (usize, &'a [Word])>,
        mut lane_mask: impl FnMut(usize, &'a [Word]) -> u64,
    ) {
        self.reset(size);
        for (chunk_base, cells) in chunks {
            let mut base = chunk_base;
            for lane in cells.chunks(LANE_WIDTH) {
                let mut mask = lane_mask(base, lane);
                debug_assert!(
                    lane.len() == LANE_WIDTH || mask >> lane.len() == 0,
                    "lane mask has bits beyond the lane's {} cells",
                    lane.len()
                );
                // Iterate the set bits in ascending order: appends stay
                // sorted, so the rebuilt index is clean by construction.
                while mask != 0 {
                    let j = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    self.push_addr(base + j);
                }
                base += lane.len();
            }
        }
        self.seal();
    }

    /// Start a sharded rebuild: clear both vectors, reserve capacity for
    /// the final shape (`total` live items over a `size` address space) and
    /// expose the spare capacity as raw pointers. The vectors keep length
    /// 0 — the uninitialized capacity is only ever *written* through the
    /// pointers, never read — until [`Packed::finish_fill`] commits the
    /// lengths.
    fn begin_fill(&mut self, size: usize, total: usize) -> (*mut W, *mut W) {
        self.items.clear();
        self.items.reserve(total);
        self.pos.clear();
        self.pos.reserve(size);
        (self.items.as_mut_ptr(), self.pos.as_mut_ptr())
    }

    /// Commit a sharded rebuild.
    ///
    /// # Safety
    ///
    /// Every `items` slot in `[0, total)` and every `pos` cell in
    /// `[0, size)` must have been initialized through the
    /// [`Packed::begin_fill`] pointers since that call, with `total` and
    /// `size` no larger than the capacities it reserved.
    unsafe fn finish_fill(&mut self, size: usize, total: usize) {
        unsafe {
            self.items.set_len(total);
            self.pos.set_len(size);
        }
        self.seal();
    }

    #[inline]
    fn contains(&self, addr: usize) -> bool {
        self.pos.get(addr).is_some_and(|&p| p != W::ABSENT)
    }

    fn is_clean(&self) -> bool {
        !self.holes && !self.unsorted
    }

    fn insert(&mut self, addr: usize) -> bool {
        assert!(addr < self.pos.len(), "address {addr} outside indexed space");
        if self.pos[addr] != W::ABSENT {
            return false;
        }
        if self.items.len() == self.items.capacity() && self.holes {
            // Reuse tombstone slack before letting the buffer grow.
            self.compact();
        }
        self.push_addr(addr);
        self.live += 1;
        if !self.unsorted {
            // An append extending the ascending tail keeps the index clean;
            // with holes present the tail entry may be stale, so be
            // conservative.
            let extends_tail = !self.holes
                && (self.items.len() < 2 || self.items[self.items.len() - 2] < W::from_usize(addr));
            self.unsorted = !extends_tail;
        }
        true
    }

    fn remove(&mut self, addr: usize) -> bool {
        if !self.contains(addr) {
            return false;
        }
        self.pos[addr] = W::ABSENT;
        self.live -= 1;
        self.holes = true;
        true
    }

    fn ensure_clean(&mut self) {
        if self.holes {
            self.compact();
        }
        if self.unsorted {
            self.items.sort_unstable();
            for (slot, &addr) in self.items.iter().enumerate() {
                self.pos[addr.to_usize()] = W::from_usize(slot);
            }
            self.unsorted = false;
        }
    }

    /// Drop tombstoned entries in place. An entry at slot `r` is live iff
    /// `pos[items[r]] == r`; live entries keep their relative order.
    fn compact(&mut self) {
        let mut w = 0;
        for r in 0..self.items.len() {
            let addr = self.items[r];
            if self.pos[addr.to_usize()] == W::from_usize(r) {
                self.items[w] = addr;
                self.pos[addr.to_usize()] = W::from_usize(w);
                w += 1;
            }
        }
        self.items.truncate(w);
        self.holes = false;
    }

    #[inline]
    fn select(&self, k: usize) -> usize {
        debug_assert!(self.is_clean(), "select on a dirty index — call ensure_clean first");
        self.items[k].to_usize()
    }

    #[inline]
    fn rank_of(&self, addr: usize) -> Option<usize> {
        debug_assert!(self.is_clean(), "rank_of on a dirty index — call ensure_clean first");
        match self.pos.get(addr) {
            Some(&p) if p != W::ABSENT => Some(p.to_usize()),
            _ => None,
        }
    }

    fn range_in(&self, region: Region) -> std::ops::Range<usize> {
        debug_assert!(self.is_clean(), "range_in on a dirty index — call ensure_clean first");
        let lo = self.items.partition_point(|&a| a.to_usize() < region.base());
        let hi = self.items.partition_point(|&a| a.to_usize() < region.base() + region.len());
        lo..hi
    }

    fn matches(&self, size: usize, mut is_outstanding: impl FnMut(usize) -> bool) -> bool {
        if !self.is_clean() || self.pos.len() != size || self.items.len() != self.live {
            return false;
        }
        let mut expected = 0;
        for addr in 0..size {
            if is_outstanding(addr) != self.contains(addr) {
                return false;
            }
            if self.contains(addr) && self.items[self.pos[addr].to_usize()].to_usize() != addr {
                return false;
            }
            if is_outstanding(addr) {
                expected += 1;
            }
        }
        expected == self.live && self.items.windows(2).all(|w| w[0] < w[1])
    }
}

/// Width of one lane of the batched rebuild
/// ([`UnvisitedIndex::rebuild_from_chunks_batched`]): cells are classified
/// 64 at a time into one `u64` bit mask.
pub const LANE_WIDTH: usize = 64;

#[derive(Clone, Debug)]
enum Repr {
    /// Address space fits `u32` (`size <= u32::MAX`): half-width storage.
    Narrow(Packed<u32>),
    /// Full-width fallback for larger address spaces.
    Wide(Packed<usize>),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Narrow(Packed::default())
    }
}

/// Dispatch a method body over whichever packed representation is active.
macro_rules! on_repr {
    ($self:expr, $p:ident => $body:expr) => {
        match &$self.repr {
            Repr::Narrow($p) => $body,
            Repr::Wide($p) => $body,
        }
    };
}

macro_rules! on_repr_mut {
    ($self:expr, $p:ident => $body:expr) => {
        match &mut $self.repr {
            Repr::Narrow($p) => $body,
            Repr::Wide($p) => $body,
        }
    };
}

/// A dense set of shared-memory addresses in ascending order with O(1)
/// rank/select, O(1) amortized removal and insertion, and contiguous
/// per-[`Region`] slicing. See the [module docs](self) for the
/// representation and cost model.
#[derive(Clone, Debug, Default)]
pub struct UnvisitedIndex {
    repr: Repr,
}

impl UnvisitedIndex {
    /// An empty index over the address space `0..size`. Spaces of at most
    /// `u32::MAX` addresses use the half-width `u32` storage.
    pub fn new(size: usize) -> Self {
        let repr = if size <= NARROW_LIMIT {
            Repr::Narrow(Packed::new(size))
        } else {
            Repr::Wide(Packed::new(size))
        };
        UnvisitedIndex { repr }
    }

    /// Re-select the storage width for `size`, reusing the existing
    /// buffers when the width is unchanged.
    fn set_width(&mut self, size: usize) {
        match (&mut self.repr, size <= NARROW_LIMIT) {
            (Repr::Narrow(_), true) | (Repr::Wide(_), false) => {}
            (repr, true) => *repr = Repr::Narrow(Packed::new(size)),
            (repr, false) => *repr = Repr::Wide(Packed::new(size)),
        }
    }

    /// Reclassify the whole address space: afterwards the index contains
    /// exactly the addresses for which `is_outstanding` returns `true`,
    /// clean and in ascending order. O(size).
    pub fn rebuild(&mut self, size: usize, is_outstanding: impl FnMut(usize) -> bool) {
        self.set_width(size);
        on_repr_mut!(self, p => p.rebuild(size, is_outstanding));
    }

    /// [`UnvisitedIndex::rebuild`] fed from bank-aligned cell chunks
    /// (`(base_addr, cells)` in ascending address order, e.g.
    /// [`SharedMemory::chunks`](crate::SharedMemory::chunks)): the
    /// classifier gets each cell's value directly from the contiguous
    /// chunk, so a banked memory is reclassified without paying the
    /// per-address bank mapping. O(size).
    pub fn rebuild_from_chunks<'a>(
        &mut self,
        size: usize,
        chunks: impl Iterator<Item = (usize, &'a [Word])>,
        is_outstanding: impl FnMut(usize, Word) -> bool,
    ) {
        self.set_width(size);
        on_repr_mut!(self, p => p.rebuild_from_chunks(size, chunks, is_outstanding));
    }

    /// Batched [`UnvisitedIndex::rebuild_from_chunks`]: each chunk is
    /// processed in fixed-width lanes of up to [`LANE_WIDTH`] cells, and
    /// the classifier answers per lane with one `u64` bit mask (bit `j`
    /// set iff cell `lane_base + j` is outstanding). The mask's set bits
    /// are drained with `trailing_zeros`, so a mostly-satisfied memory
    /// costs O(size / 64) mask computations plus O(outstanding) pushes —
    /// and the classifier body is a tight, branch-free loop the compiler
    /// can autovectorize. Produces exactly the same index as the scalar
    /// rebuild for a classifier that agrees cell-wise.
    pub fn rebuild_from_chunks_batched<'a>(
        &mut self,
        size: usize,
        chunks: impl Iterator<Item = (usize, &'a [Word])>,
        lane_mask: impl FnMut(usize, &'a [Word]) -> u64,
    ) {
        self.set_width(size);
        on_repr_mut!(self, p => p.rebuild_from_chunks_batched(size, chunks, lane_mask));
    }

    /// Number of addresses in the set. Valid even while dirty.
    #[inline]
    pub fn len(&self) -> usize {
        on_repr!(self, p => p.live)
    }

    /// Whether the set is empty. Valid even while dirty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `addr` is in the set. O(1), valid even while dirty.
    #[inline]
    pub fn contains(&self, addr: usize) -> bool {
        on_repr!(self, p => p.contains(addr))
    }

    /// Whether the dense accessors ([`select`](UnvisitedIndex::select),
    /// [`rank_of`](UnvisitedIndex::rank_of),
    /// [`as_slice`](UnvisitedIndex::as_slice),
    /// [`slice_in`](UnvisitedIndex::slice_in)) may be used right now.
    pub fn is_clean(&self) -> bool {
        on_repr!(self, p => p.is_clean())
    }

    /// Add `addr` to the set. Returns `false` (no-op) if already present.
    /// O(1) amortized.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the address space the index was built
    /// over.
    pub fn insert(&mut self, addr: usize) -> bool {
        on_repr_mut!(self, p => p.insert(addr))
    }

    /// Remove `addr` from the set (tombstone; O(1)). Returns `false`
    /// (no-op) if not present.
    pub fn remove(&mut self, addr: usize) -> bool {
        on_repr_mut!(self, p => p.remove(addr))
    }

    /// Restore the dense ascending form: drop tombstones in place and
    /// re-sort if inserts appended out of order. O(pending work); a no-op
    /// when already clean. Performs no allocation.
    pub fn ensure_clean(&mut self) {
        on_repr_mut!(self, p => p.ensure_clean());
    }

    /// The `k`-th address in ascending order (0-based). O(1).
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`. Debug builds additionally assert the index
    /// is clean.
    #[inline]
    pub fn select(&self, k: usize) -> usize {
        on_repr!(self, p => p.select(k))
    }

    /// Rank of `addr` within the ascending order, if present. O(1).
    #[inline]
    pub fn rank_of(&self, addr: usize) -> Option<usize> {
        on_repr!(self, p => p.rank_of(addr))
    }

    /// All addresses in ascending order, as a width-erased view.
    pub fn as_slice(&self) -> AddrSlice<'_> {
        debug_assert!(self.is_clean(), "as_slice on a dirty index — call ensure_clean first");
        match &self.repr {
            Repr::Narrow(p) => AddrSlice::Narrow(&p.items),
            Repr::Wide(p) => AddrSlice::Wide(&p.items),
        }
    }

    /// The rank range occupied by addresses inside `region`: two binary
    /// searches, O(log len).
    pub fn range_in(&self, region: Region) -> std::ops::Range<usize> {
        on_repr!(self, p => p.range_in(region))
    }

    /// The addresses inside `region`, ascending, as one contiguous
    /// width-erased view.
    pub fn slice_in(&self, region: Region) -> AddrSlice<'_> {
        let range = self.range_in(region);
        match &self.repr {
            Repr::Narrow(p) => AddrSlice::Narrow(&p.items[range]),
            Repr::Wide(p) => AddrSlice::Wide(&p.items[range]),
        }
    }

    /// Number of addresses inside `region`. O(log len).
    pub fn count_in(&self, region: Region) -> usize {
        self.range_in(region).len()
    }

    /// Full cross-check against ground truth: the index is clean, covers
    /// the `0..size` address space, and contains exactly the addresses for
    /// which `is_outstanding` holds, in strictly ascending order. Intended
    /// for `debug_assert!` use by the machine.
    pub fn matches(&self, size: usize, is_outstanding: impl FnMut(usize) -> bool) -> bool {
        on_repr!(self, p => p.matches(size, is_outstanding))
    }

    /// Start a sharded (multi-worker) rebuild of the whole index: the
    /// caller has pre-counted `total` outstanding addresses over the
    /// `0..size` space and now wants each worker to fill a disjoint slice
    /// of the dense form directly. Returns a width-erased [`RawFill`]
    /// handle; workers write their partitions through it, and
    /// [`UnvisitedIndex::finish_sharded_rebuild`] commits the result.
    ///
    /// The stitch is implicit in the addressing: partition `w` owns the
    /// address range `[lo_w, hi_w)` and the items range
    /// `[offset_w, offset_w + count_w)` where `offset_w` is the prefix sum
    /// of the per-partition outstanding counts in rank order — so the
    /// concatenation is exactly the ascending dense form a sequential
    /// rebuild produces, with no data movement at the seam.
    pub(crate) fn begin_sharded_rebuild(&mut self, size: usize, total: usize) -> RawFill {
        self.set_width(size);
        match &mut self.repr {
            Repr::Narrow(p) => {
                let (items, pos) = p.begin_fill(size, total);
                RawFill::Narrow { items: SendPtr::new(items), pos: SendPtr::new(pos) }
            }
            Repr::Wide(p) => {
                let (items, pos) = p.begin_fill(size, total);
                RawFill::Wide { items: SendPtr::new(items), pos: SendPtr::new(pos) }
            }
        }
    }

    /// Commit a sharded rebuild started by
    /// [`UnvisitedIndex::begin_sharded_rebuild`]; afterwards the index is
    /// clean and dense.
    ///
    /// # Safety
    ///
    /// Every items slot in `[0, total)` and every position-map cell in
    /// `[0, size)` must have been written through the [`RawFill`] handle
    /// (via [`RawFill::clear_pos`] / [`RawFill::set`]) since the matching
    /// `begin_sharded_rebuild(size, total)` call, and all worker writes
    /// must have been synchronized-with (the pool barrier does this).
    pub(crate) unsafe fn finish_sharded_rebuild(&mut self, size: usize, total: usize) {
        on_repr_mut!(self, p => unsafe { p.finish_fill(size, total) });
    }

    /// Force the full-width `usize` representation regardless of size —
    /// test hook so the wide code paths are exercised on small spaces.
    #[cfg(test)]
    fn force_wide(&mut self) {
        if let Repr::Narrow(p) = &self.repr {
            let mut wide = Packed::<usize>::new(p.pos.len());
            wide.items = p.items.iter().map(|&a| a as usize).collect();
            for (addr, &slot) in p.pos.iter().enumerate() {
                wide.pos[addr] = if slot == u32::MAX { usize::MAX } else { slot as usize };
            }
            wide.live = p.live;
            wide.holes = p.holes;
            wide.unsorted = p.unsorted;
            self.repr = Repr::Wide(wide);
        }
    }
}

/// Width-erased raw-pointer handle for a sharded index rebuild
/// ([`UnvisitedIndex::begin_sharded_rebuild`]): `items` points at the
/// dense-items spare capacity, `pos` at the position-map spare capacity.
/// `Copy + Send + Sync` so every pool worker can hold one; soundness rests
/// on workers writing disjoint ranges, which the caller proves.
#[derive(Clone, Copy)]
pub(crate) enum RawFill {
    /// Half-width (`u32`) storage.
    Narrow {
        /// Dense-items buffer base.
        items: SendPtr<u32>,
        /// Position-map buffer base.
        pos: SendPtr<u32>,
    },
    /// Full-width (`usize`) storage.
    Wide {
        /// Dense-items buffer base.
        items: SendPtr<usize>,
        /// Position-map buffer base.
        pos: SendPtr<usize>,
    },
}

impl RawFill {
    /// Mark every address in `[lo, hi)` absent. All-ones bytes spell the
    /// absent sentinel in both widths (`u32::MAX` / `usize::MAX`).
    ///
    /// # Safety
    ///
    /// The caller must own `pos[lo..hi]` exclusively and `hi` must be
    /// within the capacity reserved by `begin_sharded_rebuild`.
    pub(crate) unsafe fn clear_pos(&self, lo: usize, hi: usize) {
        match self {
            RawFill::Narrow { pos, .. } => unsafe {
                std::ptr::write_bytes(pos.ptr().add(lo), 0xFF, hi - lo);
            },
            RawFill::Wide { pos, .. } => unsafe {
                std::ptr::write_bytes(pos.ptr().add(lo), 0xFF, hi - lo);
            },
        }
    }

    /// Record `addr` as the `slot`-th dense item (`items[slot] = addr`,
    /// `pos[addr] = slot`).
    ///
    /// # Safety
    ///
    /// The caller must own `items[slot]` and `pos[addr]` exclusively, both
    /// within the capacities reserved by `begin_sharded_rebuild`.
    pub(crate) unsafe fn set(&self, slot: usize, addr: usize) {
        match self {
            RawFill::Narrow { items, pos } => unsafe {
                *items.ptr().add(slot) = addr as u32;
                *pos.ptr().add(addr) = slot as u32;
            },
            RawFill::Wide { items, pos } => unsafe {
                *items.ptr().add(slot) = addr;
                *pos.ptr().add(addr) = slot;
            },
        }
    }
}

/// A width-erased view of a contiguous run of index entries: the borrow
/// either points at `u32` or `usize` storage, and every accessor speaks
/// `usize` addresses. Replaces the `&[usize]` slices the index returned
/// before the storage became width-generic.
#[derive(Clone, Copy, Debug)]
pub enum AddrSlice<'a> {
    /// Borrowed half-width storage.
    Narrow(&'a [u32]),
    /// Borrowed full-width storage.
    Wide(&'a [usize]),
}

impl<'a> AddrSlice<'a> {
    /// Number of addresses in the view.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            AddrSlice::Narrow(s) => s.len(),
            AddrSlice::Wide(s) => s.len(),
        }
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k`-th address of the view, if in bounds.
    #[inline]
    pub fn get(&self, k: usize) -> Option<usize> {
        match self {
            AddrSlice::Narrow(s) => s.get(k).map(|&a| a as usize),
            AddrSlice::Wide(s) => s.get(k).copied(),
        }
    }

    /// The addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + 'a {
        // Both arms widen to one concrete iterator type via Either-style
        // chaining: map each narrow item up front.
        let (narrow, wide) = match self {
            AddrSlice::Narrow(s) => (Some(s.iter()), None),
            AddrSlice::Wide(s) => (None, Some(s.iter())),
        };
        narrow.into_iter().flatten().map(|&a| a as usize).chain(wide.into_iter().flatten().copied())
    }

    /// The addresses as an owned `Vec<usize>`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl PartialEq<&[usize]> for AddrSlice<'_> {
    fn eq(&self, other: &&[usize]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl<const N: usize> PartialEq<&[usize; N]> for AddrSlice<'_> {
    fn eq(&self, other: &&[usize; N]) -> bool {
        *self == &other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::LayoutBuilder;

    fn fresh(live: &[usize], size: usize) -> UnvisitedIndex {
        let mut idx = UnvisitedIndex::new(size);
        idx.rebuild(size, |a| live.contains(&a));
        idx
    }

    #[test]
    fn rebuild_orders_by_position() {
        let idx = fresh(&[5, 1, 3], 8);
        assert_eq!(idx.as_slice(), &[1, 3, 5]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.select(1), 3);
        assert_eq!(idx.rank_of(5), Some(2));
        assert_eq!(idx.rank_of(2), None);
        assert!(idx.matches(8, |a| [1, 3, 5].contains(&a)));
    }

    #[test]
    fn remove_is_tombstoned_then_compacted() {
        let mut idx = fresh(&[0, 1, 2, 3], 4);
        assert!(idx.remove(1));
        assert!(!idx.remove(1), "second removal is a no-op");
        assert_eq!(idx.len(), 3);
        assert!(!idx.contains(1));
        assert!(!idx.is_clean());
        idx.ensure_clean();
        assert_eq!(idx.as_slice(), &[0, 2, 3]);
        assert_eq!(idx.rank_of(3), Some(2));
        assert!(idx.matches(4, |a| a != 1));
    }

    #[test]
    fn insert_restores_position_order() {
        let mut idx = fresh(&[0, 4], 8);
        assert!(idx.insert(2));
        assert!(!idx.insert(2), "second insert is a no-op");
        idx.ensure_clean();
        assert_eq!(idx.as_slice(), &[0, 2, 4]);
        // Tail-extending appends stay clean without a sort.
        assert!(idx.insert(7));
        assert!(idx.is_clean());
        assert_eq!(idx.as_slice(), &[0, 2, 4, 7]);
    }

    #[test]
    fn remove_then_reinsert_same_address() {
        let mut idx = fresh(&[0, 1, 2], 4);
        idx.remove(1);
        assert!(idx.insert(1));
        idx.ensure_clean();
        assert_eq!(idx.as_slice(), &[0, 1, 2]);
        assert!(idx.matches(4, |a| a < 3));
    }

    #[test]
    fn insert_then_remove_before_clean() {
        let mut idx = fresh(&[0], 4);
        idx.insert(2);
        idx.remove(2);
        idx.ensure_clean();
        assert_eq!(idx.as_slice(), &[0]);
        assert!(idx.matches(4, |a| a == 0));
    }

    #[test]
    fn region_slicing_is_contiguous() {
        let mut layout = LayoutBuilder::new();
        let a = layout.alloc(4);
        let b = layout.alloc(4);
        let idx = fresh(&[1, 2, 5, 6], layout.total());
        assert_eq!(idx.slice_in(a), &[1, 2]);
        assert_eq!(idx.slice_in(b), &[5, 6]);
        assert_eq!(idx.range_in(b), 2..4);
        assert_eq!(idx.count_in(a), 2);
        assert_eq!(idx.slice_in(Region::EMPTY), &[] as &[usize]);
    }

    #[test]
    fn interleaved_churn_matches_ground_truth() {
        for wide in [false, true] {
            let size = 64;
            let mut idx = UnvisitedIndex::new(size);
            if wide {
                idx.force_wide();
            }
            idx.rebuild(size, |_| true);
            if wide {
                idx.force_wide();
            }
            let mut truth: Vec<bool> = vec![true; size];
            // Deterministic churn: walk a fixed stride, toggling membership.
            let mut a = 17usize;
            for step in 0..500 {
                a = (a * 31 + 7) % size;
                if truth[a] {
                    idx.remove(a);
                    truth[a] = false;
                } else {
                    idx.insert(a);
                    truth[a] = true;
                }
                if step % 7 == 0 {
                    idx.ensure_clean();
                }
                assert_eq!(idx.len(), truth.iter().filter(|&&t| t).count());
            }
            idx.ensure_clean();
            assert!(idx.matches(size, |addr| truth[addr]));
        }
    }

    #[test]
    #[should_panic(expected = "outside indexed space")]
    fn insert_out_of_space_panics() {
        let mut idx = UnvisitedIndex::new(2);
        idx.insert(2);
    }

    /// The wide (usize) representation answers every accessor identically
    /// to the narrow one.
    #[test]
    fn wide_representation_matches_narrow() {
        let narrow = fresh(&[1, 3, 5, 9], 12);
        let mut wide = fresh(&[1, 3, 5, 9], 12);
        wide.force_wide();
        assert_eq!(narrow.len(), wide.len());
        assert_eq!(narrow.as_slice().to_vec(), wide.as_slice().to_vec());
        for k in 0..narrow.len() {
            assert_eq!(narrow.select(k), wide.select(k));
        }
        for addr in 0..12 {
            assert_eq!(narrow.rank_of(addr), wide.rank_of(addr));
            assert_eq!(narrow.contains(addr), wide.contains(addr));
        }
        let mut layout = LayoutBuilder::new();
        let r = layout.alloc(6);
        assert_eq!(narrow.slice_in(r).to_vec(), wide.slice_in(r).to_vec());
        assert!(wide.matches(12, |a| [1, 3, 5, 9].contains(&a)));
    }

    /// `select(k)` edge cases: the last element, one past the end (panics),
    /// and an index drained to empty.
    #[test]
    fn select_last_element_is_in_bounds() {
        let idx = fresh(&[2, 4, 6], 8);
        assert_eq!(idx.select(idx.len() - 1), 6);
    }

    #[test]
    #[should_panic]
    fn select_at_len_panics() {
        let idx = fresh(&[2, 4, 6], 8);
        let _ = idx.select(idx.len());
    }

    #[test]
    #[should_panic]
    fn select_on_empty_index_panics() {
        let mut idx = fresh(&[0, 1], 2);
        idx.remove(0);
        idx.remove(1);
        idx.ensure_clean();
        assert!(idx.is_empty());
        let _ = idx.select(0);
    }

    /// `rank_of` edge cases: address beyond the indexed space, address
    /// inside the space but absent, and a fully drained index.
    #[test]
    fn rank_of_out_of_range_and_drained() {
        let mut idx = fresh(&[0, 1], 2);
        assert_eq!(idx.rank_of(99), None, "address outside the space is absent, not a panic");
        idx.remove(0);
        idx.remove(1);
        idx.ensure_clean();
        assert!(idx.is_empty());
        assert_eq!(idx.rank_of(0), None);
        assert_eq!(idx.rank_of(1), None);
        assert_eq!(idx.as_slice(), &[] as &[usize]);
        assert_eq!(idx.count_in(Region::EMPTY), 0);
        // A drained index accepts re-inserts and comes back clean.
        assert!(idx.insert(1));
        idx.ensure_clean();
        assert_eq!(idx.rank_of(1), Some(0));
    }

    /// `rebuild_from_chunks` with chunk boundaries that do not divide the
    /// region size, plus empty trailing chunks, matches the plain rebuild.
    #[test]
    fn rebuild_from_ragged_chunks_matches_plain_rebuild() {
        let size = 11;
        let values: Vec<Word> = (0..size as Word).map(|v| v % 3).collect();
        // Ragged chunking: 4 + 5 + 2 cells, then two empty trailing chunks.
        let chunks: Vec<(usize, &[Word])> = vec![
            (0, &values[0..4]),
            (4, &values[4..9]),
            (9, &values[9..11]),
            (11, &values[11..]),
            (11, &[]),
        ];
        let mut chunked = UnvisitedIndex::new(size);
        chunked.rebuild_from_chunks(size, chunks.iter().copied(), |_, v| v == 0);
        let mut plain = UnvisitedIndex::new(size);
        plain.rebuild(size, |a| values[a] == 0);
        assert_eq!(chunked.as_slice().to_vec(), plain.as_slice().to_vec());
        assert!(chunked.matches(size, |a| values[a] == 0));

        // The batched lane-mask rebuild agrees cell-for-cell too.
        let mut batched = UnvisitedIndex::new(size);
        batched.rebuild_from_chunks_batched(size, chunks.iter().copied(), |base, lane| {
            let mut mask = 0u64;
            for (j, &v) in lane.iter().enumerate() {
                mask |= u64::from(v == 0) << j;
                let _ = base;
            }
            mask
        });
        assert_eq!(batched.as_slice().to_vec(), plain.as_slice().to_vec());
    }

    /// A sharded rebuild (partition counts → prefix-sum offsets → raw
    /// fill → finish) produces exactly the dense form of a plain rebuild,
    /// in both storage widths and for ragged partition boundaries.
    #[test]
    fn sharded_rebuild_stitch_matches_plain_rebuild() {
        for size in [0usize, 1, 7, 64, 65, 130] {
            let outstanding = |a: usize| a.is_multiple_of(3) || a % 7 == 1;
            let mut plain = UnvisitedIndex::new(size);
            plain.rebuild(size, outstanding);

            let mut sharded = UnvisitedIndex::new(size);
            // Three ragged partitions of the address space.
            let cuts = [0, size / 3, size / 3 + size / 2, size];
            let counts: Vec<usize> =
                cuts.windows(2).map(|w| (w[0]..w[1]).filter(|&a| outstanding(a)).count()).collect();
            let total: usize = counts.iter().sum();
            let raw = sharded.begin_sharded_rebuild(size, total);
            let mut offset = 0;
            for (w, pair) in cuts.windows(2).enumerate() {
                let (lo, hi) = (pair[0], pair[1]);
                // SAFETY: partitions are disjoint and in bounds.
                unsafe {
                    raw.clear_pos(lo, hi);
                    let mut slot = offset;
                    for addr in lo..hi {
                        if outstanding(addr) {
                            raw.set(slot, addr);
                            slot += 1;
                        }
                    }
                    assert_eq!(slot - offset, counts[w]);
                }
                offset += counts[w];
            }
            // SAFETY: every pos cell and items slot was written above.
            unsafe { sharded.finish_sharded_rebuild(size, total) };
            assert!(sharded.is_clean());
            assert_eq!(sharded.as_slice().to_vec(), plain.as_slice().to_vec());
            assert!(sharded.matches(size, outstanding), "size {size}");
        }
    }

    /// The wide (`usize`) fill arms, unreachable through the public API
    /// below a 2^32 address space, agree with a plain wide rebuild.
    #[test]
    fn sharded_fill_wide_arms_match_plain_rebuild() {
        let size = 37;
        let outstanding = |a: usize| a % 4 != 1;
        let total = (0..size).filter(|&a| outstanding(a)).count();
        let mut packed = Packed::<usize>::new(size);
        let (items, pos) = packed.begin_fill(size, total);
        let raw = RawFill::Wide { items: SendPtr::new(items), pos: SendPtr::new(pos) };
        // SAFETY: single-threaded, in-bounds, every cell written.
        unsafe {
            raw.clear_pos(0, size);
            let mut slot = 0;
            for addr in 0..size {
                if outstanding(addr) {
                    raw.set(slot, addr);
                    slot += 1;
                }
            }
            assert_eq!(slot, total);
            packed.finish_fill(size, total);
        }
        let mut plain = Packed::<usize>::new(size);
        plain.rebuild(size, outstanding);
        assert_eq!(packed.items, plain.items);
        assert_eq!(packed.pos, plain.pos);
        assert!(packed.matches(size, outstanding));
    }

    /// The batched rebuild splits chunks into [`LANE_WIDTH`]-cell lanes
    /// with correct bases, including a final partial lane.
    #[test]
    fn batched_rebuild_lane_bases_and_partial_lane() {
        let size = LANE_WIDTH * 2 + 7;
        let values: Vec<Word> = (0..size).map(|a| u64::from(a % 5 == 0)).collect();
        let chunk: Vec<(usize, &[Word])> = vec![(0, &values[..])];
        let mut seen_bases = Vec::new();
        let mut idx = UnvisitedIndex::new(size);
        idx.rebuild_from_chunks_batched(size, chunk.into_iter(), |base, lane| {
            seen_bases.push((base, lane.len()));
            let mut mask = 0u64;
            for (j, &v) in lane.iter().enumerate() {
                mask |= u64::from(v == 0) << j;
            }
            mask
        });
        assert_eq!(
            seen_bases,
            vec![(0, LANE_WIDTH), (LANE_WIDTH, LANE_WIDTH), (2 * LANE_WIDTH, 7)]
        );
        assert!(idx.matches(size, |a| a % 5 != 0));
    }
}
