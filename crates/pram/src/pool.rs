//! The persistent tick pool behind the threaded engine.
//!
//! [`Machine::run_threaded`](crate::Machine::run_threaded) used to spawn a
//! fresh set of scoped OS threads **every tick**; at millions of ticks per
//! run the spawn/join cost dominated. [`TickPool`] replaces that with
//! long-lived workers created once per run:
//!
//! * workers park on a condvar between ticks;
//! * each tick the coordinator publishes one *job* (a borrowed closure
//!   processing a half-open index range), bumps an epoch and wakes
//!   everyone;
//! * workers claim chunks of the index space from a shared atomic cursor
//!   (`fetch_add`), so a straggler chunk cannot serialize the tick;
//! * the coordinator blocks until every worker has drained the cursor and
//!   gone back to sleep, then reclaims exclusive access to the machine.
//!
//! A steady-state tick therefore performs **no thread spawns and no heap
//! allocations** — the only per-tick synchronization is one mutex/condvar
//! round-trip per worker plus the cursor traffic.
//!
//! # Safety protocol
//!
//! The job closure is published to the workers as a lifetime-erased raw
//! pointer. This is sound because [`TickPool::run_tick`] does not return
//! until every worker has finished the epoch (`active == 0`) and the job
//! pointer is cleared under the same lock before the borrow it was created
//! from ends. Workers never hold the pointer across epochs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::error::PramError;

/// Render a caught panic payload as a message for
/// [`PramError::WorkerPanic`].
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-tick work item: process indices `[start, end)`.
type Job<'a> = dyn Fn(usize, usize) -> Result<(), PramError> + Sync + 'a;

/// Lifetime-erased pointer to the current tick's [`Job`].
#[derive(Clone, Copy)]
struct JobPtr(*const Job<'static>);

// SAFETY: the pointee is `Sync` (workers only get `&Job`) and the pool's
// epoch protocol guarantees it outlives every dereference (see module docs).
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Incremented once per published job; workers run at most one claim
    /// loop per epoch.
    epoch: u64,
    /// The current job, present exactly while an epoch is in flight.
    job: Option<JobPtr>,
    /// Workers that have not yet finished the current epoch.
    active: usize,
    /// Set once at the end of the run; parked workers exit.
    shutdown: bool,
    /// First error any worker hit this epoch.
    err: Option<PramError>,
}

/// Shared coordination state for one run's worker pool. Lives on the
/// coordinator's stack; workers borrow it through the thread scope.
pub(crate) struct TickPool {
    state: Mutex<PoolState>,
    /// Wakes parked workers when a new epoch (or shutdown) is published.
    work: Condvar,
    /// Wakes the coordinator when the last worker finishes an epoch.
    done: Condvar,
    /// Next unclaimed index of the current epoch.
    cursor: AtomicUsize,
    /// Cooperative abort: set by the first worker that errors.
    stop: AtomicBool,
    /// Index-space length of the current epoch.
    len: AtomicUsize,
    /// Chunk size workers claim per `fetch_add`.
    chunk: AtomicUsize,
    threads: usize,
}

impl TickPool {
    /// A pool coordinating `threads` workers (callers spawn the workers and
    /// point them at [`TickPool::worker`]).
    pub(crate) fn new(threads: usize) -> Self {
        debug_assert!(threads >= 2, "one thread should use the sequential engine");
        TickPool {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
                err: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            len: AtomicUsize::new(0),
            chunk: AtomicUsize::new(1),
            threads,
        }
    }

    /// Lock the pool state, recovering from poisoning. The state is a set
    /// of plain counters and flags with no invariants that a panic can
    /// break mid-update (every mutation is a single field store), so a
    /// poisoned mutex is safe to re-enter — panics in job closures are
    /// additionally caught before they can unwind through a lock (see
    /// [`TickPool::worker`]), making poisoning doubly unlikely.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Execute `job` over the index space `[0, len)` on the pool's workers
    /// and block until every index has been processed (or a worker
    /// errored). Callers regain exclusive access to everything the job
    /// borrows once this returns.
    ///
    /// Every chunk boundary falls on a multiple of `align` (the final chunk
    /// may be shorter): the batched kernels pass their batch width — times
    /// the bank interleave on banked layouts — so one worker's chunk is
    /// whole lanes and never splits a lane across banks. `align` is also
    /// the minimum chunk size, which keeps tiny index spaces with many
    /// threads from degenerating into per-index claims.
    pub(crate) fn run_tick(
        &self,
        len: usize,
        align: usize,
        job: &Job<'_>,
    ) -> Result<(), PramError> {
        if len == 0 {
            return Ok(());
        }
        // Chunks are sized to give each worker several claims per tick —
        // dynamic enough to absorb uneven cycles, coarse enough to keep
        // cursor traffic negligible — then rounded up to the alignment.
        // The cursor starts at 0 and advances in whole chunks, so an
        // aligned chunk size makes every boundary aligned.
        let align = align.max(1);
        let chunk = len.div_ceil(self.threads * 4).max(1).next_multiple_of(align);
        self.cursor.store(0, Ordering::Relaxed);
        self.stop.store(false, Ordering::Relaxed);
        self.len.store(len, Ordering::Relaxed);
        self.chunk.store(chunk, Ordering::Relaxed);
        {
            let mut st = self.lock();
            // SAFETY (lifetime erasure): cleared below before `job`'s
            // borrow ends; workers only dereference between the epoch bump
            // and their `active` decrement.
            let erased: *const Job<'static> = unsafe { std::mem::transmute(job as *const Job<'_>) };
            st.job = Some(JobPtr(erased));
            st.epoch += 1;
            st.active = self.threads;
            self.work.notify_all();
        }
        let mut st = self.lock();
        while st.active != 0 {
            st = self.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        match st.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Tell parked workers to exit. Idempotent; called by the run guard
    /// (including on unwind) so the surrounding thread scope can join.
    pub(crate) fn shutdown(&self) {
        let mut st = self.lock();
        st.shutdown = true;
        self.work.notify_all();
    }

    /// Body of one pool worker: park until an epoch (or shutdown) is
    /// published, claim chunks from the cursor, report back.
    pub(crate) fn worker(&self) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut st = self.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch != seen {
                        seen = st.epoch;
                        break st.job.expect("epoch published without a job");
                    }
                    st = self.work.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let len = self.len.load(Ordering::Relaxed);
            let chunk = self.chunk.load(Ordering::Relaxed);
            // SAFETY: see module docs — the coordinator keeps the pointee
            // alive until `active` reaches zero.
            let f = unsafe { &*job.0 };
            while !self.stop.load(Ordering::Relaxed) {
                let start = self.cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                // Catch panics escaping the job so a buggy closure degrades
                // to an error instead of killing the worker (a dead worker
                // would leave `active` forever nonzero and hang the
                // coordinator). The job borrows are safe to assert unwind
                // safety for: on panic the whole tick is abandoned and the
                // engine either surfaces the error or restores the touched
                // slots from a backup before reusing them.
                let end = (start + chunk).min(len);
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| f(start, end))).unwrap_or_else(|payload| {
                        Err(PramError::WorkerPanic {
                            pid: None,
                            detail: panic_detail(payload.as_ref()),
                        })
                    });
                if let Err(e) = outcome {
                    self.stop.store(true, Ordering::Relaxed);
                    let mut st = self.lock();
                    if st.err.is_none() {
                        st.err = Some(e);
                    }
                    break;
                }
            }
            let mut st = self.lock();
            st.active -= 1;
            if st.active == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// Shuts the pool down when dropped, so worker threads exit and the
/// enclosing `thread::scope` can join even if the run loop unwinds.
pub(crate) struct PoolShutdown<'a>(pub(crate) &'a TickPool);

impl Drop for PoolShutdown<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_processes_every_index_exactly_once() {
        let pool = TickPool::new(3);
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            let _guard = PoolShutdown(&pool);
            for _ in 0..3 {
                scope.spawn(|| pool.worker());
            }
            for _ in 0..50 {
                let job = |start: usize, end: usize| {
                    for h in &hits[start..end] {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                };
                pool.run_tick(hits.len(), 1, &job).unwrap();
            }
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn pool_reports_the_first_error() {
        let pool = TickPool::new(2);
        let err = std::thread::scope(|scope| {
            let _guard = PoolShutdown(&pool);
            for _ in 0..2 {
                scope.spawn(|| pool.worker());
            }
            let job = |start: usize, _end: usize| {
                if start >= 8 {
                    Err(PramError::AddressOutOfBounds { addr: start, size: 8 })
                } else {
                    Ok(())
                }
            };
            pool.run_tick(64, 1, &job).unwrap_err()
        });
        assert!(matches!(err, PramError::AddressOutOfBounds { .. }));
    }

    /// A panicking job closure must surface as [`PramError::WorkerPanic`]
    /// — not poison the pool, not abort the process — and the pool must
    /// keep serving ticks afterwards. The `PoolShutdown` drop guard still
    /// joins every worker at scope exit.
    #[test]
    fn panicking_job_reports_worker_panic_and_pool_survives() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output quiet
        let pool = TickPool::new(2);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            let _guard = PoolShutdown(&pool);
            for _ in 0..2 {
                scope.spawn(|| pool.worker());
            }
            let bomb = |start: usize, _end: usize| -> Result<(), PramError> {
                if start == 0 {
                    panic!("injected worker fault");
                }
                Ok(())
            };
            let err = pool.run_tick(64, 1, &bomb).unwrap_err();
            assert!(
                matches!(&err, PramError::WorkerPanic { pid: None, detail }
                    if detail.contains("injected worker fault")),
                "unexpected error: {err:?}"
            );
            // The pool is still operational for subsequent ticks.
            let job = |start: usize, end: usize| {
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            };
            pool.run_tick(hits.len(), 1, &job).unwrap();
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
        std::panic::set_hook(prev);
    }

    /// Chunk boundaries fall on multiples of `align`, the minimum chunk is
    /// one align unit, and a tiny index space with many threads no longer
    /// degenerates into 1-index claims (`len.div_ceil(threads * 4)` alone
    /// yields chunk = 1 for len = 7, threads = 3).
    #[test]
    fn chunks_are_aligned_and_clamped() {
        let pool = TickPool::new(3);
        let claims = Mutex::new(Vec::new());
        let hits: Vec<AtomicU64> = (0..7).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            let _guard = PoolShutdown(&pool);
            for _ in 0..3 {
                scope.spawn(|| pool.worker());
            }
            let job = |start: usize, end: usize| {
                claims.lock().unwrap().push((start, end));
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            };
            pool.run_tick(hits.len(), 4, &job).unwrap();
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1, "every index exactly once");
        }
        let claims = claims.into_inner().unwrap();
        for &(start, end) in &claims {
            assert_eq!(start % 4, 0, "chunk start {start} not aligned");
            // Non-final chunks span exactly whole align units.
            assert!(end == hits.len() || (end - start) % 4 == 0, "ragged interior chunk");
            assert!(end - start >= 4 || end == hits.len(), "chunk below one align unit");
        }
    }

    #[test]
    fn empty_tick_is_a_noop() {
        let pool = TickPool::new(2);
        std::thread::scope(|scope| {
            let _guard = PoolShutdown(&pool);
            for _ in 0..2 {
                scope.spawn(|| pool.worker());
            }
            pool.run_tick(0, 64, &|_, _| Ok(())).unwrap();
        });
    }
}
